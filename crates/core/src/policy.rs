//! The unified controller policy: every hand-picked constant of the
//! graceful-degradation stack behind one serializable struct.
//!
//! The paper's §VI guidelines fix the *shape* of the controllers — degrade
//! instead of retransmit, delay as the congestion signal, FEC for the
//! recovery class, cost-aware multipath — but every constant in the
//! implementation (the degradation staleness horizon and backlog ladder in
//! [`crate::degradation`], the congestion thresholds in
//! [`crate::congestion`], the FEC group size in [`crate::fec`], the path
//! policy in [`crate::multipath`]) was hand-picked. [`PolicyParams`]
//! gathers exactly those knobs into one flat, serializable struct so they
//! can be stored, compared and — by `marnet-trainer` — searched over.
//!
//! Invariants:
//!
//! * [`PolicyParams::default`] reproduces the paper-default
//!   [`ArConfig::default`] bit-for-bit (asserted in tests), so pre-existing
//!   artifacts are unaffected by this layer.
//! * [`PolicyParams::to_config`] / [`PolicyParams::from_config`] round-trip:
//!   the struct is a faithful projection of the tunable subset of
//!   [`ArConfig`].

use crate::config::ArConfig;
use crate::multipath::MultipathPolicy;
use crate::recovery::RecoveryPolicy;
use marnet_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The retransmission stance, collapsing [`RecoveryPolicy`]'s two booleans
/// into the three ablation arms the experiments use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArqMode {
    /// Never retransmit (pure degrade-and-drop).
    Off,
    /// Retransmit only when the repair can still arrive within the deadline
    /// (the paper's 37.5 ms rule).
    DeadlineGated,
    /// Retransmit everything recoverable, deadline or not.
    Always,
}

impl ArqMode {
    /// All three, in ablation order.
    pub const ALL: [ArqMode; 3] = [ArqMode::Off, ArqMode::DeadlineGated, ArqMode::Always];

    /// The stable label used in tables and artifacts.
    pub fn label(self) -> &'static str {
        match self {
            ArqMode::Off => "off",
            ArqMode::DeadlineGated => "gated",
            ArqMode::Always => "always",
        }
    }
}

/// The tunable subset of [`ArConfig`]: one field per hand-picked controller
/// constant, durations in milliseconds so the struct is plain numbers plus
/// two small enums (trivially serializable and searchable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyParams {
    /// Degradation: age beyond which droppable data is shed even without a
    /// deadline ([`ArConfig::stale_after`]), ms.
    pub stale_after_ms: f64,
    /// Degradation: backlog horizon in pacing ticks before congestion
    /// shedding ([`ArConfig::backlog_ticks`]).
    pub backlog_ticks: f64,
    /// Congestion: queueing-delay budget above the base RTT before the
    /// controller calls congestion, ms.
    pub latency_threshold_ms: f64,
    /// Congestion: jitter budget before the controller calls congestion, ms.
    pub jitter_threshold_ms: f64,
    /// Congestion: multiplicative decrease factor.
    pub beta: f64,
    /// Congestion: additive increase in bytes per RTT when clear.
    pub increase_per_rtt: f64,
    /// FEC: XOR parity group size for the recovery class; `None` disables
    /// FEC (overhead is `1/k`).
    pub fec_group: Option<usize>,
    /// Multipath: the §VI-D path-usage policy.
    pub multipath: MultipathPolicy,
    /// Multipath: duplicate recovery-class packets on a second path.
    pub duplicate_recovery: bool,
    /// Loss recovery: the retransmission stance.
    pub arq: ArqMode,
}

impl Default for PolicyParams {
    /// The paper defaults: exactly the values [`ArConfig::default`] has
    /// always used, projected through [`PolicyParams::from_config`] so
    /// there is a single source of truth.
    fn default() -> Self {
        PolicyParams::from_config(&ArConfig::default())
    }
}

impl PolicyParams {
    /// Projects the tunable subset out of a full config.
    pub fn from_config(cfg: &ArConfig) -> Self {
        let arq = match (cfg.recovery.enabled, cfg.recovery.deadline_gated) {
            (false, _) => ArqMode::Off,
            (true, true) => ArqMode::DeadlineGated,
            (true, false) => ArqMode::Always,
        };
        PolicyParams {
            stale_after_ms: cfg.stale_after.as_millis_f64(),
            backlog_ticks: cfg.backlog_ticks,
            latency_threshold_ms: cfg.congestion.latency_threshold.as_millis_f64(),
            jitter_threshold_ms: cfg.congestion.jitter_threshold.as_millis_f64(),
            beta: cfg.congestion.beta,
            increase_per_rtt: cfg.congestion.increase_per_rtt,
            fec_group: cfg.fec_group,
            multipath: cfg.policy,
            duplicate_recovery: cfg.duplicate_recovery,
            arq,
        }
    }

    /// Writes the tunable subset onto `cfg`, leaving everything else (MTU,
    /// tick, rate bounds, outage handling, pooling, ...) untouched.
    pub fn apply(&self, cfg: &mut ArConfig) {
        cfg.stale_after = SimDuration::from_millis_f64(self.stale_after_ms);
        cfg.backlog_ticks = self.backlog_ticks;
        cfg.congestion.latency_threshold = SimDuration::from_millis_f64(self.latency_threshold_ms);
        cfg.congestion.jitter_threshold = SimDuration::from_millis_f64(self.jitter_threshold_ms);
        cfg.congestion.beta = self.beta;
        cfg.congestion.increase_per_rtt = self.increase_per_rtt;
        cfg.fec_group = self.fec_group;
        cfg.policy = self.multipath;
        cfg.duplicate_recovery = self.duplicate_recovery;
        cfg.recovery = RecoveryPolicy {
            enabled: self.arq != ArqMode::Off,
            deadline_gated: self.arq != ArqMode::Always,
            ..cfg.recovery
        };
    }

    /// Compiles the policy into a full [`ArConfig`] (defaults for the
    /// non-tunable fields).
    pub fn to_config(&self) -> ArConfig {
        let mut cfg = ArConfig::default();
        self.apply(&mut cfg);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_the_paper_config() {
        // The whole point of the layer: compiling the default policy gives
        // exactly the config every pre-existing experiment ran with, so
        // artifacts stay byte-identical.
        assert_eq!(PolicyParams::default().to_config(), ArConfig::default());
    }

    #[test]
    fn round_trip_is_lossless() {
        let p = PolicyParams {
            stale_after_ms: 90.0,
            backlog_ticks: 3.5,
            latency_threshold_ms: 22.0,
            jitter_threshold_ms: 44.0,
            beta: 0.65,
            increase_per_rtt: 30_000.0,
            fec_group: Some(4),
            multipath: MultipathPolicy::Aggregate,
            duplicate_recovery: true,
            arq: ArqMode::Always,
        };
        assert_eq!(PolicyParams::from_config(&p.to_config()), p);
        for arq in ArqMode::ALL {
            let q = PolicyParams { arq, ..p.clone() };
            assert_eq!(PolicyParams::from_config(&q.to_config()).arq, arq);
        }
    }

    #[test]
    fn apply_leaves_non_tunable_fields_alone() {
        let mut cfg = ArConfig { mtu: 900, pooling: false, ..ArConfig::default() };
        let p = PolicyParams { beta: 0.6, ..PolicyParams::default() };
        p.apply(&mut cfg);
        assert_eq!(cfg.mtu, 900);
        assert!(!cfg.pooling);
        assert_eq!(cfg.congestion.beta, 0.6);
        // Rate bounds are application properties, not searched policy.
        assert_eq!(cfg.congestion.min_rate, 10_000.0);
    }

    #[test]
    fn serde_round_trip() {
        let p = PolicyParams { fec_group: None, ..PolicyParams::default() };
        let json = serde_json::to_string(&p).unwrap();
        let back: PolicyParams = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
