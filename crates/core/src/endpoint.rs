//! The AR protocol endpoints: [`ArSender`] and [`ArReceiver`].
//!
//! The sender is rate-paced (no congestion window): every tick it asks each
//! path's delay-based congestion controller for the allowed rate, releases
//! that much budget to the [`DegradationScheduler`], fragments the messages
//! that fit, and spreads the fragments over paths through the
//! [`MultipathScheduler`]. Losses reported by receiver feedback go through
//! the deadline-gated [`RecoveryPolicy`](crate::recovery::RecoveryPolicy);
//! recovery-class packets are
//! FEC-protected; QoS signals flow back to the application.

use crate::class::{KindMap, StreamKind, TrafficClass, ALL_STREAM_KINDS, STREAM_KIND_LABELS};
use crate::config::ArConfig;
use crate::congestion::{CongestionVerdict, DelayCongestionController};
use crate::degradation::{DegradationScheduler, QosSignal, TickOutcome};
use crate::fec::{FecGroupTracker, FecOutcome};
use crate::message::ArMessage;
use crate::multipath::{MultipathScheduler, PathRole, PathSnapshot, Picks};
use crate::recovery::{FragmentRecord, RetransmitBuffer};
use crate::wire::{feedback_size, ArFeedback, ArPacket, FecInfo, FragmentId, AR_HEADER_BYTES};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx};
use marnet_sim::hash::{FxHashMap, FxHashSet};
use marnet_sim::link::LinkId;
use marnet_sim::packet::{Packet, PayloadPool};
use marnet_sim::stats::{Histogram, RateMeter, TimeSeries};
use marnet_sim::time::{SimDuration, SimTime};
use marnet_telemetry::{component, ClassUsage, DropReason, MetricsRegistry, TraceEvent};
use marnet_transport::nic::{unwrap_packet, TxPath};
use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;

const TAG_TICK: u64 = 1;
const TAG_FEEDBACK: u64 = 2;
const TAG_PACE: u64 = 3;
const TAG_PROBE: u64 = 4;

/// Message wrapper applications use to hand data to an [`ArSender`]
/// (`ctx.send_message(sender, Payload::new(Submit(msg)))`).
#[derive(Debug, Clone)]
pub struct Submit(pub ArMessage);

/// Notification an [`ArReceiver`] sends to its delivery target when a
/// message completes reassembly.
#[derive(Debug, Clone, Copy)]
pub struct Delivered {
    /// Application message id.
    pub msg_id: u64,
    /// Sub-stream of the message.
    pub kind: StreamKind,
    /// When the sending application created it.
    pub created: SimTime,
    /// Message payload size in bytes.
    pub size: u32,
    /// Whether it completed within its deadline (`true` when no deadline).
    pub within_deadline: bool,
    /// The end-to-end reference instant, if the sender attached one.
    pub origin: Option<SimTime>,
}

/// One transmission path of a sender.
#[derive(Debug, Clone)]
pub struct SenderPathConfig {
    /// Network kind (drives policy and LTE-byte accounting).
    pub role: PathRole,
    /// Where packets go.
    pub tx: TxPath,
    /// The underlying access link, if the sender can observe its up/down
    /// state (used for handover detection).
    pub link: Option<LinkId>,
}

struct PacedMessage {
    msg: ArMessage,
    next_frag: u32,
    remaining: u32,
    /// Paths chosen for this message; selection is sticky per message so
    /// that in multi-server deployments (§VI-E) all fragments of one
    /// message reach the same server.
    picks: Option<Picks>,
}

struct SenderPath {
    cfg: SenderPathConfig,
    ctrl: DelayCongestionController,
    next_seq: u64,
    fec_group: u64,
    fec_accum: Vec<(FragmentId, u32)>,
}

/// Sender-side statistics shared with experiment code.
#[derive(Debug, Default)]
pub struct ArSenderStats {
    /// Allowed aggregate rate over time (bytes/s).
    pub rate_series: TimeSeries,
    /// Smoothed RTT samples over time (ms), across all paths.
    pub srtt_series: TimeSeries,
    /// Base (minimum) RTT over time (ms), across all paths.
    pub base_rtt_series: TimeSeries,
    /// Per-sub-stream sent/shed packet and byte accounting, indexed by
    /// `StreamKind as usize`. This is the shared telemetry usage table
    /// (also used by the NIC per priority band) that replaced the ad-hoc
    /// `*_by_kind` / `dropped_bytes` bookkeeping; see the accessor methods
    /// for the per-kind views experiment code reads.
    pub usage: ClassUsage<{ ALL_STREAM_KINDS.len() }>,
    /// Send-rate meters per sub-stream (100 ms buckets) — the Fig. 4 series.
    pub send_meters: KindMap<RateMeter>,
    /// Retransmissions performed.
    pub retransmits: u64,
    /// NACKs whose retransmission the deadline gate suppressed.
    pub suppressed_retransmits: u64,
    /// FEC parity packets emitted.
    pub parity_sent: u64,
    /// Delay-congestion events observed.
    pub delay_congestion_events: u64,
    /// Loss-congestion events observed.
    pub loss_congestion_events: u64,
    /// Bytes sent over cellular paths (the §VI-D LTE-budget metric).
    pub cellular_bytes: u64,
    /// QoS degrade signals emitted to the application.
    pub degrade_signals: u64,
    /// Outages declared by the watchdog.
    pub outages_detected: u64,
    /// Recovery probes sent while the peer was unreachable.
    pub recovery_probes: u64,
    /// Sessions re-established after a peer epoch change (edge restart).
    pub session_resyncs: u64,
    /// Loss reports absorbed by the post-outage attribution grace window
    /// instead of being charged to the congestion controller.
    pub congestion_events_masked: u64,
}

impl ArSenderStats {
    fn meter(&mut self, kind: StreamKind) -> &mut RateMeter {
        self.send_meters.get_or_insert_with(kind, || RateMeter::new(SimDuration::from_millis(100)))
    }

    /// Bytes handed to the network for `kind`.
    pub fn sent_bytes(&self, kind: StreamKind) -> u64 {
        self.usage.sent_bytes_for(kind as usize)
    }

    /// Total bytes handed to the network across all sub-streams.
    pub fn total_sent_bytes(&self) -> u64 {
        self.usage.total_sent_bytes()
    }

    /// Messages shed by the degradation scheduler for `kind`.
    pub fn dropped_msgs(&self, kind: StreamKind) -> u64 {
        self.usage.dropped_packets_for(kind as usize)
    }

    /// Total bytes shed by the degradation scheduler.
    pub fn dropped_bytes(&self) -> u64 {
        self.usage.total_dropped_bytes()
    }

    /// Publishes the per-kind accounting into `registry` as counters named
    /// `{prefix}.{kind}.{sent,dropped}_{packets,bytes}`.
    pub fn publish_usage(&self, registry: &MetricsRegistry, prefix: &str) {
        self.usage.publish(registry, prefix, &STREAM_KIND_LABELS);
    }
}

/// Resolves a path index to the sender-side path state.
///
/// Free functions over the `paths` field (rather than `&mut self`
/// methods) so call sites keep disjoint borrows of the other
/// [`ArSender`] fields, and so the indexing invariant lives in exactly
/// one place.
#[inline]
fn sender_path(paths: &[SenderPath], idx: usize) -> &SenderPath {
    // marnet-lint: allow(panic-path): path indices come from the multipath scheduler, whose snapshots are sized by `paths`
    &paths[idx]
}

/// Mutable counterpart of [`sender_path`].
#[inline]
fn sender_path_mut(paths: &mut [SenderPath], idx: usize) -> &mut SenderPath {
    // marnet-lint: allow(panic-path): path indices come from the multipath scheduler, whose snapshots are sized by `paths`
    &mut paths[idx]
}

/// The sending endpoint of the AR protocol.
pub struct ArSender {
    conn: u64,
    cfg: ArConfig,
    paths: Vec<SenderPath>,
    sched: DegradationScheduler,
    mp: MultipathScheduler,
    rtx: RetransmitBuffer,
    pacer: VecDeque<PacedMessage>,
    pacing: bool,
    /// Wire bytes sent beyond scheduler-budgeted payload (headers, FEC
    /// parity, duplicates, retransmissions); charged against the next
    /// ticks' budget so the controller rate bounds *total* wire load.
    wire_debt: f64,
    qos_target: Option<ActorId>,
    stats: Rc<RefCell<ArSenderStats>>,
    dropped_since_signal: u64,
    severity_since_signal: u8,
    ticks_since_signal: u32,
    /// Last receiver session epoch seen in feedback; a change means the
    /// peer restarted and lost its receive state.
    peer_epoch: u32,
    /// When the watchdog declared the current outage, if one is active.
    outage_since: Option<SimTime>,
    /// Probes sent during the current outage.
    probes_sent: u64,
    /// Backoff attempt counter for the next probe.
    probe_attempt: u32,
    /// When feedback was last heard.
    last_feedback_at: Option<SimTime>,
    /// When data was last handed to the network.
    last_send_at: Option<SimTime>,
    /// End of the congestion-attribution grace window opened when an
    /// outage resolved; losses reported before this instant are blamed on
    /// the fault, not on congestion.
    grace_until: Option<SimTime>,
    /// Slab pool for data-fragment [`ArPacket`]s. Data slots only ever
    /// hold an empty FEC coverage list, so reuse never drops a `Vec`.
    data_pool: PayloadPool<ArPacket>,
    /// Separate pool for parity [`ArPacket`]s, whose slots keep their
    /// coverage `Vec` capacity across groups.
    parity_pool: PayloadPool<ArPacket>,
    /// Pool for [`QosSignal`]s sent to the application.
    qos_pool: PayloadPool<QosSignal>,
    /// Reused tick outcome so pacing ticks stop allocating `sent`/`dropped`.
    tick_out: TickOutcome,
    /// Reused path-snapshot buffer for multipath selection.
    snap_scratch: Vec<PathSnapshot>,
}

impl std::fmt::Debug for ArSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArSender")
            .field("conn", &self.conn)
            .field("paths", &self.paths.len())
            .field("queued", &self.sched.queued_bytes())
            .finish()
    }
}

impl ArSender {
    /// Creates a sender for connection `conn` over the given paths.
    ///
    /// # Panics
    ///
    /// Panics if `paths` is empty.
    pub fn new(conn: u64, cfg: ArConfig, paths: Vec<SenderPathConfig>) -> Self {
        assert!(!paths.is_empty(), "need at least one path");
        let pooling = cfg.pooling;
        let sched = DegradationScheduler::new(cfg.stale_after, cfg.backlog_ticks);
        let mp = MultipathScheduler::new(cfg.policy, cfg.duplicate_recovery);
        let paths = paths
            .into_iter()
            .map(|p| SenderPath {
                cfg: p,
                ctrl: DelayCongestionController::new(cfg.congestion),
                next_seq: 0,
                fec_group: 0,
                fec_accum: Vec::new(), // marnet-lint: allow(hot-path-alloc): per-path constructor, once per sender
            })
            .collect();
        ArSender {
            conn,
            cfg,
            paths,
            sched,
            mp,
            rtx: RetransmitBuffer::new(),
            pacer: VecDeque::new(),
            pacing: false,
            wire_debt: 0.0,
            qos_target: None,
            stats: Rc::new(RefCell::new(ArSenderStats::default())),
            dropped_since_signal: 0,
            severity_since_signal: 0,
            ticks_since_signal: 0,
            peer_epoch: 0,
            outage_since: None,
            probes_sent: 0,
            probe_attempt: 0,
            last_feedback_at: None,
            last_send_at: None,
            grace_until: None,
            data_pool: PayloadPool::new().with_enabled(pooling),
            parity_pool: PayloadPool::new().with_enabled(pooling),
            qos_pool: PayloadPool::new().with_enabled(pooling),
            tick_out: TickOutcome::default(),
            snap_scratch: Vec::new(), // marnet-lint: allow(hot-path-alloc): constructor; the scratch is reused every tick
        }
    }

    /// Enables or disables payload pooling (see [`ArConfig::pooling`]).
    pub fn set_pooling(&mut self, enabled: bool) {
        self.data_pool.set_enabled(enabled);
        self.parity_pool.set_enabled(enabled);
        self.qos_pool.set_enabled(enabled);
    }

    /// Registers the application actor that should receive [`QosSignal`]s,
    /// builder style.
    #[must_use]
    pub fn with_qos_target(mut self, target: ActorId) -> Self {
        self.qos_target = Some(target);
        self
    }

    /// Shared handle to the sender's statistics.
    pub fn stats(&self) -> Rc<RefCell<ArSenderStats>> {
        Rc::clone(&self.stats)
    }

    /// The congestion controller of path `idx` (for inspection).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn path_controller(&self, idx: usize) -> &DelayCongestionController {
        &sender_path(&self.paths, idx).ctrl
    }

    fn path_up(&self, ctx: &SimCtx, idx: usize) -> bool {
        match sender_path(&self.paths, idx).cfg.link {
            Some(l) => ctx.link_is_up(l),
            None => true,
        }
    }

    /// Refreshes `snap_scratch` in place; snapshots are only needed on the
    /// cold picks-invalidated and NACK paths, and reusing one buffer keeps
    /// them allocation-free.
    fn fill_snapshots(&mut self, ctx: &SimCtx) {
        let paths = &self.paths;
        self.snap_scratch.clear();
        self.snap_scratch.extend(paths.iter().map(|p| PathSnapshot {
            role: p.cfg.role,
            up: match p.cfg.link {
                Some(l) => ctx.link_is_up(l),
                None => true,
            },
            srtt: p.ctrl.srtt(),
            rate: p.ctrl.rate_bytes_per_sec(),
        }));
    }

    #[allow(clippy::too_many_arguments)]
    fn send_fragment(
        &mut self,
        ctx: &mut SimCtx,
        path_idx: usize,
        msg: &ArMessage,
        frag_index: u32,
        frag_count: u32,
        frag_size: u32,
        is_retransmit: bool,
        budget_exempt: bool,
        attempts: u32,
    ) {
        let p = sender_path_mut(&mut self.paths, path_idx);
        let seq = p.next_seq;
        p.next_seq += 1;
        // Headers always ride outside the payload budget; exempt sends
        // (retransmissions, multipath duplicates) charge their full size.
        self.wire_debt += if budget_exempt {
            f64::from(frag_size + AR_HEADER_BYTES)
        } else {
            f64::from(AR_HEADER_BYTES)
        };

        // FEC participation: recovery-class first transmissions only.
        let fec_group = if !is_retransmit
            && msg.class == TrafficClass::BestEffortWithRecovery
            && self.cfg.fec_group.is_some()
        {
            let p = sender_path_mut(&mut self.paths, path_idx);
            let group = p.fec_group;
            let fid = FragmentId { seq, msg_id: msg.id, frag_index };
            p.fec_accum.push((fid, frag_size));
            Some(group)
        } else {
            None
        };

        // Every header field is `Copy`, so one closure can both build a
        // fresh packet and overwrite a recycled slot. Data packets carry
        // only the FEC group id — the coverage list rides on the parity
        // packet alone — so `Vec::new` never allocates and overwriting a
        // retired slot's `fec` never drops a non-empty one.
        let (conn, epoch, ts) = (self.conn, self.peer_epoch, ctx.now());
        let (msg_id, msg_size, kind, class) = (msg.id, msg.size, msg.kind, msg.class);
        let (created, origin, deadline) = (msg.created, msg.origin, msg.deadline);
        let make = move || ArPacket {
            conn,
            epoch,
            path: path_idx,
            seq,
            msg_id,
            frag_index,
            frag_count,
            msg_size,
            kind,
            class,
            created,
            origin,
            deadline,
            ts,
            // marnet-lint: allow(hot-path-alloc): an empty covered list never allocates; parity refills in place
            fec: fec_group.map(|group| FecInfo { group, covered: Vec::new(), is_parity: false }),
            is_retransmit,
        };
        let payload = self.data_pool.prepare(make, |ar| *ar = make());
        let size = frag_size + AR_HEADER_BYTES;
        let id = ctx.next_packet_id();
        let pkt = Packet::new(id, self.conn, size, ctx.now())
            .with_prio(msg.priority.band())
            .with_shared_payload(payload);
        {
            let t = ctx.now().as_nanos();
            let comp = component::actor(ctx.self_id().index());
            let (class, mid, bytes) = (msg.kind as u8, msg.id, u64::from(size));
            ctx.trace_with(|| TraceEvent::class_admit(t, comp, class, mid, bytes));
        }
        sender_path(&self.paths, path_idx).cfg.tx.send(ctx, pkt);
        self.last_send_at = Some(ctx.now());

        {
            let mut st = self.stats.borrow_mut();
            st.usage.record_sent(msg.kind as usize, u64::from(size));
            let now = ctx.now();
            st.meter(msg.kind).record(now, u64::from(size));
            if sender_path(&self.paths, path_idx).cfg.role == PathRole::Cellular {
                st.cellular_bytes += u64::from(size);
            }
            if is_retransmit {
                st.retransmits += 1;
            }
        }

        if msg.class.wants_recovery() {
            self.rtx.insert(
                path_idx,
                seq,
                FragmentRecord {
                    msg_id: msg.id,
                    frag_index,
                    frag_count,
                    size: frag_size,
                    kind: msg.kind,
                    class: msg.class,
                    created: msg.created,
                    prio_band: msg.priority.band(),
                    deadline: msg.deadline,
                    attempts,
                },
            );
        }

        // Emit parity when the group is full.
        if let Some(k) = self.cfg.fec_group {
            if sender_path(&self.paths, path_idx).fec_accum.len() >= k {
                self.emit_parity(ctx, path_idx);
            }
        }
    }

    fn emit_parity(&mut self, ctx: &mut SimCtx, path_idx: usize) {
        let p = sender_path_mut(&mut self.paths, path_idx);
        if p.fec_accum.is_empty() {
            return;
        }
        // marnet-lint: allow(panic-path): fec_accum was checked non-empty just above
        let max_size = p.fec_accum.iter().map(|(_, s)| *s).max().expect("non-empty");
        let group = p.fec_group;
        p.fec_group += 1;
        let seq = p.next_seq;
        p.next_seq += 1;

        let (conn, epoch, now) = (self.conn, self.peer_epoch, ctx.now());
        // Both closures borrow the accumulated coverage immutably; the
        // parity pool is a disjoint field, so the recycled slot's `Vec`
        // capacity is refilled straight from the accumulator.
        let accum = &sender_path(&self.paths, path_idx).fec_accum;
        let payload = self.parity_pool.prepare(
            || ArPacket {
                conn,
                epoch,
                path: path_idx,
                seq,
                msg_id: 0,
                frag_index: 0,
                frag_count: 0,
                msg_size: 0,
                kind: StreamKind::VideoReference,
                class: TrafficClass::BestEffortWithRecovery,
                created: now,
                origin: None,
                deadline: None,
                ts: now,
                fec: Some(FecInfo {
                    group,
                    covered: accum.iter().map(|(f, _)| *f).collect(),
                    is_parity: true,
                }),
                is_retransmit: false,
            },
            |ar| {
                ar.conn = conn;
                ar.epoch = epoch;
                ar.path = path_idx;
                ar.seq = seq;
                ar.msg_id = 0;
                ar.frag_index = 0;
                ar.frag_count = 0;
                ar.msg_size = 0;
                ar.kind = StreamKind::VideoReference;
                ar.class = TrafficClass::BestEffortWithRecovery;
                ar.created = now;
                ar.origin = None;
                ar.deadline = None;
                ar.ts = now;
                ar.is_retransmit = false;
                let fec = ar
                    .fec
                    // marnet-lint: allow(hot-path-alloc): first parity for this pool slot only; later groups reuse
                    .get_or_insert_with(|| FecInfo { group, covered: Vec::new(), is_parity: true });
                fec.group = group;
                fec.is_parity = true;
                fec.covered.clear();
                fec.covered.extend(accum.iter().map(|(f, _)| *f));
            },
        );
        sender_path_mut(&mut self.paths, path_idx).fec_accum.clear();
        let id = ctx.next_packet_id();
        let pkt = Packet::new(id, self.conn, max_size + AR_HEADER_BYTES, ctx.now())
            .with_prio(1)
            .with_shared_payload(payload);
        sender_path(&self.paths, path_idx).cfg.tx.send(ctx, pkt);
        self.wire_debt += f64::from(max_size + AR_HEADER_BYTES);
        self.stats.borrow_mut().parity_sent += 1;
    }

    /// Sends the next fragment from the pacer queue and arms the pacing
    /// timer so fragments leave spaced at the allowed rate — releasing a
    /// whole message at once would create a serialization burst whose
    /// self-queueing delay the controller would mistake for congestion.
    fn pace_next(&mut self, ctx: &mut SimCtx) {
        loop {
            let Some(front) = self.pacer.front() else {
                self.pacing = false;
                return;
            };
            // Shed droppable messages that went stale inside the pacer.
            if front.msg.is_late(ctx.now()) && front.msg.priority.can_drop() {
                if let Some(p) = self.pacer.pop_front() {
                    self.stats
                        .borrow_mut()
                        .usage
                        .record_dropped(p.msg.kind as usize, u64::from(p.msg.size));
                    self.dropped_since_signal += u64::from(p.msg.size);
                    let t = ctx.now().as_nanos();
                    let comp = component::actor(ctx.self_id().index());
                    let (mid, flow, msize) = (p.msg.id, self.conn, p.msg.size);
                    ctx.trace_with(|| {
                        TraceEvent::packet_drop(t, comp, DropReason::Shed, mid, flow, msize)
                    });
                }
                continue;
            }
            let frag_count = front.msg.fragment_count(self.cfg.mtu);
            let frag_size = front.remaining.min(self.cfg.mtu).max(1);
            // Copy the fields the selection below needs so the pacer-front
            // borrow ends before the snapshot scratch is refreshed.
            let (msg_class, msg_prio, msg_kind) =
                (front.msg.class, front.msg.priority, front.msg.kind);
            let sticky = front.picks;
            let picks = match sticky {
                // Re-validate a sticky choice against path availability —
                // the common steady-state case, which needs no snapshots.
                Some(p) if p.iter().all(|i| self.path_up(ctx, i)) => p,
                _ => {
                    self.fill_snapshots(ctx);
                    let new_picks =
                        self.mp.select(&self.snap_scratch, msg_class, msg_prio, frag_size);
                    // A sticky choice being replaced (a path went down) is a
                    // path switch worth tracing; the initial pick is not.
                    let old = sticky.and_then(|p| p.iter().next());
                    if let (Some(old), Some(new)) = (old, new_picks.iter().next()) {
                        if old != new {
                            let t = ctx.now().as_nanos();
                            let comp = component::actor(ctx.self_id().index());
                            let class = msg_kind as u8;
                            ctx.trace_with(|| {
                                TraceEvent::path_switch(t, comp, class, old as u64, new as u64)
                            });
                        }
                    }
                    new_picks
                }
            };
            if picks.is_empty() {
                // No policy-compatible path up: requeue with the scheduler
                // and try again when paths return. Fragments already sent
                // are deduplicated by the receiver's assembly state.
                if let Some(p) = self.pacer.pop_front() {
                    self.sched.submit(p.msg);
                }
                continue;
            }
            // Aggregate allowed rate, read *before* sending so the spacing
            // reflects the controller state this fragment was paced at.
            let total_rate: f64 = self
                .paths
                .iter()
                .enumerate()
                .filter(|(i, _)| self.path_up(ctx, *i))
                .map(|(_, p)| p.ctrl.rate_bytes_per_sec())
                .sum::<f64>()
                .max(1.0);
            let Some(front) = self.pacer.front_mut() else {
                self.pacing = false;
                return;
            };
            front.picks = Some(picks);
            let frag_index = front.next_frag;
            front.next_frag += 1;
            front.remaining = front.remaining.saturating_sub(frag_size);
            let done = front.next_frag >= frag_count;
            let msg = front.msg.clone();
            if done {
                self.pacer.pop_front();
            }
            for (n, path_idx) in picks.iter().enumerate() {
                self.send_fragment(
                    ctx,
                    path_idx,
                    &msg,
                    frag_index,
                    frag_count,
                    frag_size,
                    false,
                    n > 0,
                    1,
                );
            }
            // Space the next fragment at the aggregate allowed rate, on
            // wire bytes so header overhead does not inflate the pace.
            let spacing =
                SimDuration::from_secs_f64(f64::from(frag_size + AR_HEADER_BYTES) / total_rate);
            self.pacing = true;
            ctx.schedule_timer(spacing, TAG_PACE);
            return;
        }
    }

    fn enqueue_for_pacing(&mut self, ctx: &mut SimCtx, msg: ArMessage) {
        let remaining = msg.size.max(1);
        self.pacer.push_back(PacedMessage { msg, next_frag: 0, remaining, picks: None });
        if !self.pacing {
            self.pace_next(ctx);
        }
    }

    /// Watchdog-driven failure detection (only when `cfg.outage.enabled`):
    /// declares an outage when every path's link is down, or when data was
    /// sent but no feedback has been heard for `watchdog_silence`. Runs
    /// every tick, so an all-paths-down outage is detected within one tick
    /// (5 ms default) — well inside one RTT.
    fn check_watchdog(&mut self, ctx: &mut SimCtx) {
        if !self.cfg.outage.enabled || self.outage_since.is_some() {
            return;
        }
        let now = ctx.now();
        let paths_up = (0..self.paths.len()).filter(|&i| self.path_up(ctx, i)).count();
        let heard = self.last_feedback_at.unwrap_or(SimTime::ZERO);
        let silent = self.last_send_at.is_some_and(|sent| {
            sent > heard && now.saturating_since(heard) > self.cfg.outage.watchdog_silence
        });
        if paths_up > 0 && !silent {
            return;
        }
        self.outage_since = Some(now);
        self.probes_sent = 0;
        self.probe_attempt = 0;
        // Outage-aware degradation: shed droppables instead of queueing
        // them behind a dead link; delayable and critical data wait.
        self.sched.set_outage(true);
        self.stats.borrow_mut().outages_detected += 1;
        let t = now.as_nanos();
        let comp = component::actor(ctx.self_id().index());
        let silence = now.saturating_since(heard).as_nanos();
        ctx.trace_with(|| TraceEvent::outage_detect(t, comp, silence, paths_up as u64));
        let delay = self.cfg.outage.probe_backoff.delay(self.probe_attempt, self.conn);
        ctx.schedule_timer(delay, TAG_PROBE);
    }

    /// Sends one recovery probe and re-arms the probe timer with capped
    /// exponential backoff. Probes are header-only packets whose sole job
    /// is to elicit feedback from a peer that may just have restarted (its
    /// paths go inactive after a session reset, so without traffic it would
    /// never speak first). During a full link outage no probe can be sent,
    /// but the timer keeps running so feedback is elicited right after the
    /// link returns.
    fn on_probe_timer(&mut self, ctx: &mut SimCtx) {
        if self.outage_since.is_none() {
            return;
        }
        let pick = (0..self.paths.len())
            .filter(|&i| self.path_up(ctx, i))
            .min_by_key(|&i| sender_path(&self.paths, i).ctrl.srtt().unwrap_or(SimDuration::MAX));
        if let Some(path_idx) = pick {
            let p = sender_path_mut(&mut self.paths, path_idx);
            let seq = p.next_seq;
            p.next_seq += 1;
            let ar = ArPacket {
                conn: self.conn,
                epoch: self.peer_epoch,
                path: path_idx,
                seq,
                msg_id: u64::MAX,
                frag_index: 0,
                // Zero fragments marks the packet as a probe: the receiver
                // advances its sequence state (and thus answers with
                // feedback) but skips message assembly.
                frag_count: 0,
                msg_size: 0,
                kind: StreamKind::Metadata,
                class: TrafficClass::Critical,
                created: ctx.now(),
                origin: None,
                deadline: None,
                ts: ctx.now(),
                fec: None,
                is_retransmit: false,
            };
            let id = ctx.next_packet_id();
            let pkt = Packet::new(id, self.conn, AR_HEADER_BYTES, ctx.now())
                .with_prio(0)
                .with_payload(ar);
            sender_path(&self.paths, path_idx).cfg.tx.send(ctx, pkt);
            self.wire_debt += f64::from(AR_HEADER_BYTES);
            self.last_send_at = Some(ctx.now());
        }
        self.probes_sent += 1;
        self.stats.borrow_mut().recovery_probes += 1;
        let delay = self.cfg.outage.probe_backoff.delay(self.probe_attempt, self.conn);
        let t = ctx.now().as_nanos();
        let comp = component::actor(ctx.self_id().index());
        let (attempt, backoff) = (u64::from(self.probe_attempt), delay.as_nanos());
        ctx.trace_with(|| TraceEvent::recovery_probe(t, comp, attempt, backoff));
        self.probe_attempt += 1;
        ctx.schedule_timer(delay, TAG_PROBE);
    }

    /// Re-establishes the session after the peer reports a new epoch (it
    /// restarted and lost its receive state): retransmit state describes
    /// sequence spaces the peer no longer knows, so it is flushed, and the
    /// per-path sequence and FEC spaces restart from zero to match the
    /// peer's fresh expectations. Queued application messages survive.
    fn resync(&mut self, ctx: &mut SimCtx, old_epoch: u32, new_epoch: u32) {
        self.rtx.clear();
        for p in &mut self.paths {
            p.next_seq = 0;
            p.fec_group = 0;
            p.fec_accum.clear();
        }
        self.stats.borrow_mut().session_resyncs += 1;
        let t = ctx.now().as_nanos();
        let comp = component::actor(ctx.self_id().index());
        ctx.trace_with(|| {
            TraceEvent::session_resync(t, comp, u64::from(old_epoch), u64::from(new_epoch))
        });
    }

    fn tick(&mut self, ctx: &mut SimCtx) {
        self.check_watchdog(ctx);
        let total_rate: f64 = self
            .paths
            .iter()
            .enumerate()
            .filter(|(i, _)| self.path_up(ctx, *i))
            .map(|(_, p)| p.ctrl.rate_bytes_per_sec())
            .sum();
        let gross = self.cfg.budget_per_tick(total_rate);
        let budget = (gross - self.wire_debt).max(0.0);
        self.wire_debt = (self.wire_debt - gross).max(0.0);
        // Tick into the reused outcome buffers; taken out of `self` so the
        // pacing calls below can borrow the sender mutably.
        let mut out = std::mem::take(&mut self.tick_out);
        self.sched.tick_into(ctx.now(), budget, &mut out);

        // Account drops and drive QoS signalling.
        if !out.dropped.is_empty() {
            let severity = DegradationScheduler::shed_severity(&out.dropped);
            let mut shed_bytes = 0u64;
            let mut st = self.stats.borrow_mut();
            for d in &out.dropped {
                st.usage.record_dropped(d.message.kind as usize, u64::from(d.message.size));
                shed_bytes += u64::from(d.message.size);
                self.dropped_since_signal += u64::from(d.message.size);
            }
            drop(st);
            self.severity_since_signal = self.severity_since_signal.max(severity);
            let t = ctx.now().as_nanos();
            let comp = component::actor(ctx.self_id().index());
            let shed_msgs = out.dropped.len() as u64;
            ctx.trace_with(|| TraceEvent::class_degrade(t, comp, severity, shed_msgs, shed_bytes));
        }

        for msg in out.sent.drain(..) {
            self.enqueue_for_pacing(ctx, msg);
        }
        out.dropped.clear();
        self.tick_out = out;

        self.rtx.expire(ctx.now());
        self.stats.borrow_mut().rate_series.push(ctx.now(), total_rate);

        // QoS feedback to the application.
        self.ticks_since_signal += 1;
        if let Some(target) = self.qos_target {
            if self.dropped_since_signal > 0 {
                let sig = QosSignal::Degrade {
                    rate: total_rate,
                    severity: self.severity_since_signal.max(1),
                    dropped_bytes: self.dropped_since_signal,
                };
                let payload = self.qos_pool.prepare(|| sig, |s| *s = sig);
                ctx.send_message(target, payload);
                self.stats.borrow_mut().degrade_signals += 1;
                self.dropped_since_signal = 0;
                self.severity_since_signal = 0;
                self.ticks_since_signal = 0;
            } else if self.ticks_since_signal >= 20 {
                let sig = QosSignal::Headroom { rate: total_rate };
                let payload = self.qos_pool.prepare(|| sig, |s| *s = sig);
                ctx.send_message(target, payload);
                self.ticks_since_signal = 0;
            }
        }

        ctx.schedule_timer(self.cfg.tick, TAG_TICK);
    }

    fn on_feedback(&mut self, ctx: &mut SimCtx, fb: &ArFeedback) {
        let path_idx = fb.path;
        if path_idx >= self.paths.len() {
            return;
        }
        self.last_feedback_at = Some(ctx.now());
        if let Some(since) = self.outage_since.take() {
            // Feedback is proof the peer is reachable again: leave outage
            // mode and let queued delayable/critical traffic drain. Open
            // the attribution grace window — the losses this and the next
            // few feedbacks report are the fault's casualties, and the
            // receiver's delivery-rate window still spans the silence.
            self.sched.set_outage(false);
            self.grace_until = Some(ctx.now() + self.cfg.outage.congestion_grace);
            let t = ctx.now().as_nanos();
            let comp = component::actor(ctx.self_id().index());
            let (dur, probes) = (ctx.now().saturating_since(since).as_nanos(), self.probes_sent);
            ctx.trace_with(|| TraceEvent::outage_resolve(t, comp, dur, probes));
        }
        if let Some(ts) = fb.ts_echo {
            let rtt = ctx.now().saturating_since(ts).saturating_sub(fb.echo_delay);
            let attribute = self.grace_until.is_none_or(|g| ctx.now() > g);
            if !attribute && fb.new_losses > 0 {
                self.stats.borrow_mut().congestion_events_masked += 1;
            }
            let verdict = sender_path_mut(&mut self.paths, path_idx).ctrl.on_feedback_attributed(
                rtt,
                fb.new_losses,
                fb.recv_rate,
                ctx.now(),
                attribute,
            );
            {
                let ctrl = &sender_path(&self.paths, path_idx).ctrl;
                let mut st = self.stats.borrow_mut();
                if let Some(srtt) = ctrl.srtt() {
                    st.srtt_series.push(ctx.now(), srtt.as_millis_f64());
                }
                if let Some(base) = ctrl.base_rtt() {
                    st.base_rtt_series.push(ctx.now(), base.as_millis_f64());
                }
            }
            let mut st = self.stats.borrow_mut();
            match verdict {
                CongestionVerdict::DelayCongestion => st.delay_congestion_events += 1,
                CongestionVerdict::LossCongestion => st.loss_congestion_events += 1,
                CongestionVerdict::Clear => {}
            }
        }
        // On an unexpected feedback epoch the peer restarted with fresh
        // receive state: its acks and NACKs describe the dead session, so
        // the hardened stack resyncs instead of processing them. The
        // unhardened stack has no session re-establishment — the epoch
        // change goes unnoticed, acks and NACKs from the fresh incarnation
        // are applied to the dead session's state, and data keeps flowing
        // stamped with the old epoch, which the restarted peer discards as
        // stale. That is the failure mode the resync exists to fix.
        if fb.epoch != self.peer_epoch && self.cfg.outage.enabled {
            let old = self.peer_epoch;
            self.peer_epoch = fb.epoch;
            self.resync(ctx, old, fb.epoch);
            return;
        }
        if let Some(cum) = fb.cum_seq {
            self.rtx.ack_cumulative(path_idx, cum);
        }
        // Recovery decisions for NACKed fragments.
        let srtt = sender_path(&self.paths, path_idx).ctrl.srtt();
        // The lowest-RTT up path is invariant across this loop (sending a
        // retransmission changes neither link state nor controllers), so
        // compute it once on the first NACK that needs it.
        let mut best_cache: Option<usize> = None;
        for &seq in &fb.nacks {
            let Some(rec) = self.rtx.take(path_idx, seq) else {
                continue;
            };
            if self.cfg.recovery.should_retransmit(&rec, srtt, ctx.now()) {
                // Re-send on the currently best path for latency.
                let best = match best_cache {
                    Some(b) => b,
                    None => {
                        self.fill_snapshots(ctx);
                        let b = self
                            .snap_scratch
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.up)
                            .min_by_key(|(_, s)| s.srtt.unwrap_or(SimDuration::MAX))
                            .map(|(i, _)| i)
                            .unwrap_or(path_idx);
                        best_cache = Some(b);
                        b
                    }
                };
                let msg = ArMessage {
                    id: rec.msg_id,
                    kind: rec.kind,
                    class: rec.class,
                    priority: crate::class::Priority::Highest,
                    size: rec.size,
                    created: rec.created,
                    deadline: rec.deadline,
                    origin: None,
                };
                // Retransmit exactly this fragment.
                self.send_fragment(
                    ctx,
                    best,
                    &msg,
                    rec.frag_index,
                    rec.frag_count,
                    rec.size,
                    true,
                    true,
                    rec.attempts + 1,
                );
            } else {
                self.stats.borrow_mut().suppressed_retransmits += 1;
            }
        }
    }
}

impl Actor for ArSender {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                ctx.schedule_timer(self.cfg.tick, TAG_TICK);
            }
            Event::Timer { tag: TAG_TICK } => self.tick(ctx),
            Event::Timer { tag: TAG_PACE } => {
                self.pacing = false;
                self.pace_next(ctx);
            }
            Event::Timer { tag: TAG_PROBE } => self.on_probe_timer(ctx),
            Event::Message { msg, from } => {
                // Submissions may be pooled (shared with the app's slot), so
                // clone the message out by reference — `ArMessage` has no
                // heap fields, so the clone is a memcpy.
                if let Some(m) = msg.map_ref(|s: &Submit| s.0.clone()) {
                    self.sched.submit(m);
                } else if let Some(pkt) = unwrap_packet(Event::Message { msg, from }) {
                    if let Some(fb) = pkt.payload.downcast_ref::<ArFeedback>() {
                        if fb.conn == self.conn {
                            self.on_feedback(ctx, fb);
                        }
                    }
                }
            }
            other => {
                if let Some(pkt) = unwrap_packet(other) {
                    if let Some(fb) = pkt.payload.downcast_ref::<ArFeedback>() {
                        if fb.conn == self.conn {
                            self.on_feedback(ctx, fb);
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

/// Per-kind delivery statistics.
#[derive(Debug, Default, Clone)]
pub struct KindStats {
    /// Complete messages delivered.
    pub delivered: u64,
    /// End-to-end latency samples (message creation → completion), ms.
    pub latency_ms: Histogram,
    /// Messages that completed within their deadline.
    pub deadline_hits: u64,
    /// Messages that completed after their deadline.
    pub deadline_misses: u64,
}

/// Receiver-side statistics shared with experiment code.
#[derive(Debug)]
pub struct ArReceiverStats {
    /// Per-sub-stream delivery stats.
    pub by_kind: KindMap<KindStats>,
    /// Total bytes received (all packets).
    pub received_bytes: u64,
    /// Delivery-rate meter (100 ms buckets).
    pub meter: RateMeter,
    /// Duplicate packets discarded (multipath duplication, spurious rtx).
    pub duplicates: u64,
    /// Fragments recovered by FEC parity.
    pub fec_recovered: u64,
    /// Sequence holes abandoned after repeated NACKs.
    pub abandoned_holes: u64,
    /// Feedback packets sent.
    pub feedback_sent: u64,
    /// Packets discarded because they were sent in a dead session epoch
    /// (in flight across an edge restart).
    pub stale_epoch_packets: u64,
}

impl Default for ArReceiverStats {
    fn default() -> Self {
        ArReceiverStats {
            by_kind: KindMap::new(),
            received_bytes: 0,
            meter: RateMeter::new(SimDuration::from_millis(100)),
            duplicates: 0,
            fec_recovered: 0,
            abandoned_holes: 0,
            feedback_sent: 0,
            stale_epoch_packets: 0,
        }
    }
}

impl ArReceiverStats {
    /// Overall deadline hit ratio across all kinds with deadlines.
    pub fn deadline_hit_ratio(&self) -> f64 {
        let hits: u64 = self.by_kind.values().map(|k| k.deadline_hits).sum();
        let misses: u64 = self.by_kind.values().map(|k| k.deadline_misses).sum();
        if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

struct PathRx {
    /// Next expected sequence number.
    cum_next: u64,
    /// Received (or abandoned) sequences above the cumulative point.
    above: BTreeSet<u64>,
    /// NACK rounds each missing seq has survived.
    nack_rounds: FxHashMap<u64, u32>,
    /// Missing seqs already counted in `new_losses`.
    reported: BTreeSet<u64>,
    last_ts: Option<SimTime>,
    /// Local arrival time of the packet behind `last_ts`.
    last_rx_at: Option<SimTime>,
    /// Bytes received since the previous feedback was emitted.
    bytes_since_feedback: u64,
    /// When the previous feedback was emitted.
    last_feedback_at: Option<SimTime>,
    /// Recent (time, bytes) feedback intervals for rate smoothing: a single
    /// 15 ms interval sees 0-2 packets, far too noisy to anchor the
    /// congestion controller on.
    rate_history: VecDeque<(SimTime, u64)>,
    active: bool,
    fec: FecGroupTracker,
    /// Parity coverage lists seen, for mapping recovered seqs to fragments.
    parity_frags: VecDeque<(u64, Vec<FragmentId>)>,
}

impl PathRx {
    fn new() -> Self {
        PathRx {
            cum_next: 0,
            above: BTreeSet::new(),
            nack_rounds: FxHashMap::default(),
            reported: BTreeSet::new(),
            last_ts: None,
            last_rx_at: None,
            bytes_since_feedback: 0,
            last_feedback_at: None,
            rate_history: VecDeque::new(),
            active: false,
            fec: FecGroupTracker::new(),
            parity_frags: VecDeque::new(),
        }
    }

    /// Marks a sequence received; returns `false` for duplicates.
    fn mark(&mut self, seq: u64) -> bool {
        // In-order fast path: with no holes in flight there is nothing in
        // any tracking set, so advancing the cumulative edge is a bare
        // increment instead of four ordered-set operations per packet.
        if seq == self.cum_next
            && self.above.is_empty()
            && self.nack_rounds.is_empty()
            && self.reported.is_empty()
        {
            self.cum_next += 1;
            return true;
        }
        if seq < self.cum_next || self.above.contains(&seq) {
            return false;
        }
        self.above.insert(seq);
        while self.above.remove(&self.cum_next) {
            self.cum_next += 1;
        }
        self.nack_rounds.remove(&seq);
        self.reported.remove(&seq);
        true
    }

    fn max_seq(&self) -> Option<u64> {
        self.above.iter().next_back().copied().or(if self.cum_next > 0 {
            Some(self.cum_next - 1)
        } else {
            None
        })
    }

    /// Fills `out` with up to 64 missing sequences (cleared first); the
    /// feedback loop reuses one buffer across paths and rounds.
    fn missing_into(&self, out: &mut Vec<u64>) {
        out.clear();
        let Some(max) = self.max_seq() else {
            return;
        };
        for seq in self.cum_next..max {
            if !self.above.contains(&seq) {
                out.push(seq);
                if out.len() >= 64 {
                    break;
                }
            }
        }
    }
}

/// `Copy` header view of an [`ArPacket`], extracted by reference in
/// [`ArReceiver::on_packet`] so pooled (shared) payloads are never
/// deep-cloned on receive.
#[derive(Debug, Clone, Copy)]
struct ArView {
    epoch: u32,
    path: usize,
    seq: u64,
    msg_id: u64,
    frag_index: u32,
    frag_count: u32,
    msg_size: u32,
    kind: StreamKind,
    created: SimTime,
    origin: Option<SimTime>,
    deadline: Option<SimTime>,
    ts: SimTime,
    /// FEC membership as `(group, is_parity)`.
    fec: Option<(u64, bool)>,
}

impl ArView {
    fn of(ar: &ArPacket) -> Self {
        ArView {
            epoch: ar.epoch,
            path: ar.path,
            seq: ar.seq,
            msg_id: ar.msg_id,
            frag_index: ar.frag_index,
            frag_count: ar.frag_count,
            msg_size: ar.msg_size,
            kind: ar.kind,
            created: ar.created,
            origin: ar.origin,
            deadline: ar.deadline,
            ts: ar.ts,
            fec: ar.fec.as_ref().map(|f| (f.group, f.is_parity)),
        }
    }
}

/// Assembly state for one in-flight message.
struct MsgAsm {
    frag_count: u32,
    received: Vec<bool>,
    got: u32,
    created: SimTime,
    deadline: Option<SimTime>,
    kind: StreamKind,
}

/// The receiving endpoint of the AR protocol.
pub struct ArReceiver {
    conn: u64,
    /// Session epoch, advertised in every feedback packet. Bumped by
    /// [`ArReceiver::reset_session`] after a crash that lost receive state.
    epoch: u32,
    feedback_interval: SimDuration,
    /// Reverse path per forward path, for feedback.
    reverse: Vec<TxPath>,
    rx: Vec<PathRx>,
    asm: FxHashMap<u64, MsgAsm>,
    /// Hashed, not ordered: only membership is ever queried, and the check
    /// runs once per received fragment.
    completed: FxHashSet<u64>,
    completed_order: VecDeque<u64>,
    /// Missing-seq NACK rounds before a hole is abandoned.
    abandon_after: u32,
    /// Application actor notified of completed messages, if any.
    delivery_target: Option<ActorId>,
    stats: Rc<RefCell<ArReceiverStats>>,
    /// Slab pool for outgoing [`ArFeedback`] payloads; recycled slots keep
    /// their NACK-list capacity.
    fb_pool: PayloadPool<ArFeedback>,
    /// Pool for [`Delivered`] notifications to the application.
    delivered_pool: PayloadPool<Delivered>,
    /// Reused missing-sequence buffer for feedback rounds.
    nack_scratch: Vec<u64>,
    /// Reused abandoned-hole buffer for feedback rounds.
    abandon_scratch: Vec<u64>,
    /// Retired reassembly bitmaps, recycled into new [`MsgAsm`] entries.
    asm_free: Vec<Vec<bool>>,
}

impl std::fmt::Debug for ArReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArReceiver")
            .field("conn", &self.conn)
            .field("paths", &self.rx.len())
            .field("assembling", &self.asm.len())
            .finish()
    }
}

impl ArReceiver {
    /// Creates a receiver with one reverse (feedback) path per forward path.
    ///
    /// # Panics
    ///
    /// Panics if `reverse` is empty.
    pub fn new(conn: u64, feedback_interval: SimDuration, reverse: Vec<TxPath>) -> Self {
        assert!(!reverse.is_empty(), "need at least one path");
        let rx = (0..reverse.len()).map(|_| PathRx::new()).collect();
        ArReceiver {
            conn,
            epoch: 0,
            feedback_interval,
            reverse,
            rx,
            asm: FxHashMap::default(),
            completed: FxHashSet::default(),
            completed_order: VecDeque::new(),
            abandon_after: 8,
            delivery_target: None,
            stats: Rc::new(RefCell::new(ArReceiverStats::default())),
            fb_pool: PayloadPool::new(),
            delivered_pool: PayloadPool::new(),
            nack_scratch: Vec::new(), // marnet-lint: allow(hot-path-alloc): receiver constructor, once per trial
            abandon_scratch: Vec::new(), // marnet-lint: allow(hot-path-alloc): receiver constructor, once per trial
            asm_free: Vec::new(), // marnet-lint: allow(hot-path-alloc): receiver constructor, once per trial
        }
    }

    /// Enables or disables payload pooling (see
    /// [`ArConfig::pooling`](crate::config::ArConfig::pooling)); on by
    /// default.
    pub fn set_pooling(&mut self, enabled: bool) {
        self.fb_pool.set_enabled(enabled);
        self.delivered_pool.set_enabled(enabled);
    }

    /// Registers an application actor to receive [`Delivered`]
    /// notifications, builder style.
    #[must_use]
    pub fn with_delivery_target(mut self, target: ActorId) -> Self {
        self.delivery_target = Some(target);
        self
    }

    /// Shared handle to the receiver's statistics.
    pub fn stats(&self) -> Rc<RefCell<ArReceiverStats>> {
        Rc::clone(&self.stats)
    }

    /// The current session epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Re-establishes the session after a crash that lost receive state:
    /// bumps the session epoch (advertised in every feedback packet, so the
    /// sender notices and re-syncs) and resets per-path sequence tracking,
    /// FEC groups, reassembly and delivery-dedup state. Statistics survive —
    /// experiments keep reading the same handles across restarts. Returns
    /// the new epoch.
    pub fn reset_session(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        self.rx = (0..self.reverse.len()).map(|_| PathRx::new()).collect();
        self.asm.clear();
        self.completed.clear();
        self.completed_order.clear();
        self.epoch
    }

    /// Emits feedback immediately and re-arms the feedback timer. Crash
    /// wrappers call this after a downtime window in which the feedback
    /// timer fired while the actor was dark (the swallowed event broke the
    /// self-rescheduling chain).
    pub fn resume_feedback(&mut self, ctx: &mut SimCtx) {
        self.send_feedback(ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver_fragment(
        &mut self,
        now: SimTime,
        msg_id: u64,
        frag_index: u32,
        frag_count: u32,
        msg_size: u32,
        kind: StreamKind,
        created: SimTime,
        origin: Option<SimTime>,
        deadline: Option<SimTime>,
    ) -> Option<Delivered> {
        if self.completed.contains(&msg_id) {
            self.stats.borrow_mut().duplicates += 1;
            return None;
        }
        let entry = self.asm.entry(msg_id).or_insert_with(|| {
            // Recycle a retired bitmap when one is available; `resize`
            // only allocates when the fragment count outgrows it.
            let mut received = self.asm_free.pop().unwrap_or_default();
            received.clear();
            received.resize(frag_count as usize, false);
            MsgAsm { frag_count, received, got: 0, created, deadline, kind }
        });
        let idx = frag_index as usize;
        let seen = entry.received.get_mut(idx)?;
        if *seen {
            self.stats.borrow_mut().duplicates += 1;
            return None;
        }
        *seen = true;
        entry.got += 1;
        if entry.got == entry.frag_count {
            let latency = now.saturating_since(entry.created);
            let deadline = entry.deadline;
            let kind = entry.kind;
            if let Some(mut done) = self.asm.remove(&msg_id) {
                if self.asm_free.len() < 32 {
                    done.received.clear();
                    self.asm_free.push(done.received);
                }
            }
            self.completed.insert(msg_id);
            self.completed_order.push_back(msg_id);
            if self.completed_order.len() > 8192 {
                if let Some(old) = self.completed_order.pop_front() {
                    self.completed.remove(&old);
                }
            }
            let within = deadline.is_none_or(|d| now <= d);
            let mut st = self.stats.borrow_mut();
            let ks = st.by_kind.or_default(kind);
            ks.delivered += 1;
            ks.latency_ms.record(latency.as_millis_f64());
            if deadline.is_some() {
                if within {
                    ks.deadline_hits += 1;
                } else {
                    ks.deadline_misses += 1;
                }
            }
            return Some(Delivered {
                msg_id,
                kind,
                created,
                size: msg_size,
                within_deadline: within,
                origin,
            });
        }
        None
    }

    fn on_packet(&mut self, ctx: &mut SimCtx, pkt: Packet) {
        // Route and read the header entirely by reference: pooled payloads
        // stay shared with the sender's slot, so moving them out would
        // deep-clone. Everything the receive path needs is `Copy` except
        // the parity coverage list, copied out below into a recycled
        // buffer.
        let conn = self.conn;
        let npaths = self.rx.len();
        let view = pkt
            .payload
            .map_ref(|ar: &ArPacket| (ar.conn == conn && ar.path < npaths).then(|| ArView::of(ar)));
        let Some(Some(view)) = view else {
            return;
        };
        let now = ctx.now();
        {
            let mut st = self.stats.borrow_mut();
            st.received_bytes += u64::from(pkt.size);
            st.meter.record(now, u64::from(pkt.size));
        }
        let Some(path) = self.rx.get_mut(view.path) else {
            return;
        };
        path.active = true;
        path.last_ts = Some(view.ts);
        path.last_rx_at = Some(now);
        path.bytes_since_feedback += u64::from(pkt.size);
        if view.epoch != self.epoch {
            // A packet from a dead session incarnation, in flight across a
            // restart. The path is alive — the timestamps above keep RTT
            // echoes and feedback flowing, which advertises the current
            // epoch and triggers the sender's resync — but its sequence
            // number belongs to a space this incarnation never saw and
            // would poison loss detection.
            self.stats.borrow_mut().stale_epoch_packets += 1;
            return;
        }
        if !path.mark(view.seq) {
            self.stats.borrow_mut().duplicates += 1;
            return;
        }

        let mut recovered: Option<FragmentId> = None;
        if let Some((group, is_parity)) = view.fec {
            if is_parity {
                // Copy the coverage list out of the (possibly shared)
                // payload. Once the parity window is full, the evicted
                // entry's buffer is recycled as the copy target, so
                // steady-state parity handling allocates nothing.
                let mut covered = if path.parity_frags.len() >= 64 {
                    match path.parity_frags.pop_front() {
                        Some((_, mut v)) => {
                            v.clear();
                            v
                        }
                        None => Vec::new(), // marnet-lint: allow(hot-path-alloc): recycle deque empty only during warmup
                    }
                } else {
                    Vec::new() // marnet-lint: allow(hot-path-alloc): warmup only, until 64 parity groups accumulate
                };
                pkt.payload.map_ref(|ar: &ArPacket| {
                    if let Some(fec) = &ar.fec {
                        covered.extend_from_slice(&fec.covered);
                    }
                });
                if let FecOutcome::Recovered(seq) =
                    path.fec.on_parity(group, covered.iter().map(|f| f.seq))
                {
                    recovered = covered.iter().find(|f| f.seq == seq).copied();
                }
                path.parity_frags.push_back((group, covered));
            } else if let FecOutcome::Recovered(seq) = path.fec.on_data(group, view.seq) {
                // Map the recovered seq through a stored parity coverage.
                recovered = path
                    .parity_frags
                    .iter()
                    .find(|(g, _)| *g == group)
                    .and_then(|(_, frags)| frags.iter().find(|f| f.seq == seq).copied());
            }
        }

        if let Some(fid) = recovered {
            if let Some(p) = self.rx.get_mut(view.path) {
                p.mark(fid.seq);
            }
            self.stats.borrow_mut().fec_recovered += 1;
            let t = now.as_nanos();
            let comp = component::actor(ctx.self_id().index());
            let (mid, frag) = (fid.msg_id, u64::from(fid.frag_index));
            ctx.trace_with(|| TraceEvent::fec_repair(t, comp, mid, frag));
            // Recovered fragments share the parity's stream parameters; we
            // use the carrier packet's kind/class metadata as the closest
            // available description (same stream by construction).
            let done = self.deliver_fragment(
                now,
                fid.msg_id,
                fid.frag_index,
                // Fragment counts travel with every data packet of the
                // message; if this is the first fragment we see, assume the
                // recovered fragment's message matches the carrier's count.
                view.frag_count.max(1),
                view.msg_size,
                view.kind,
                view.created,
                view.origin,
                view.deadline,
            );
            self.notify(ctx, done);
        }

        // Zero-fragment packets without FEC are recovery probes: they
        // advance sequence state (so feedback answers them) but carry no
        // message to assemble.
        if view.frag_count > 0 && view.fec.is_none_or(|(_, is_parity)| !is_parity) {
            let done = self.deliver_fragment(
                now,
                view.msg_id,
                view.frag_index,
                view.frag_count,
                view.msg_size,
                view.kind,
                view.created,
                view.origin,
                view.deadline,
            );
            self.notify(ctx, done);
        }
    }

    fn notify(&mut self, ctx: &mut SimCtx, delivered: Option<Delivered>) {
        if let (Some(target), Some(d)) = (self.delivery_target, delivered) {
            let payload = self.delivered_pool.prepare(|| d, |slot| *slot = d);
            ctx.send_message(target, payload);
        }
    }

    fn send_feedback(&mut self, ctx: &mut SimCtx) {
        // `reverse` and `rx` are parallel vectors built together in `new`,
        // so zipping pairs each forward path with its feedback path.
        for (i, (path, reverse)) in self.rx.iter_mut().zip(&self.reverse).enumerate() {
            if !path.active {
                continue;
            }
            path.missing_into(&mut self.nack_scratch);
            let mut new_losses = 0;
            for &seq in &self.nack_scratch {
                if path.reported.insert(seq) {
                    new_losses += 1;
                }
                let rounds = path.nack_rounds.entry(seq).or_insert(0);
                *rounds += 1;
            }
            // Abandon holes that survived too many NACK rounds.
            let abandon_after = self.abandon_after;
            self.abandon_scratch.clear();
            self.abandon_scratch.extend(
                path.nack_rounds.iter().filter(|(_, &r)| r > abandon_after).map(|(&s, _)| s),
            );
            for &seq in &self.abandon_scratch {
                path.mark(seq);
                self.stats.borrow_mut().abandoned_holes += 1;
            }

            let echo_delay =
                path.last_rx_at.map_or(SimDuration::ZERO, |t| ctx.now().saturating_since(t));
            // Delivery rate over a ~200 ms sliding window of feedback
            // intervals (single intervals are packet-granularity noise).
            let now = ctx.now();
            if path.last_feedback_at.is_some() {
                path.rate_history.push_back((now, path.bytes_since_feedback));
            }
            while path
                .rate_history
                .front()
                .is_some_and(|&(t, _)| now.saturating_since(t) > SimDuration::from_millis(200))
            {
                path.rate_history.pop_front();
            }
            let recv_rate = match (path.rate_history.front(), path.last_feedback_at) {
                (Some(&(oldest, _)), Some(prev)) if path.rate_history.len() >= 3 => {
                    let span = now.saturating_since(oldest.min(prev)).as_secs_f64();
                    let bytes: u64 = path.rate_history.iter().map(|&(_, b)| b).sum();
                    if span > 0.02 && bytes > 0 {
                        Some(bytes as f64 / span)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            path.bytes_since_feedback = 0;
            path.last_feedback_at = Some(now);
            let cum_seq = if path.cum_next > 0 { Some(path.cum_next - 1) } else { None };
            let ts_echo = path.last_ts;
            let (conn, epoch) = (self.conn, self.epoch);
            // Both closures borrow the NACK scratch immutably; the recycled
            // slot's `nacks` capacity is refilled from it in place.
            let nacks = &self.nack_scratch;
            let payload = self.fb_pool.prepare(
                || ArFeedback {
                    conn,
                    epoch,
                    path: i,
                    cum_seq,
                    nacks: nacks.clone(),
                    new_losses,
                    ts_echo,
                    echo_delay,
                    recv_rate,
                },
                |fb| {
                    fb.conn = conn;
                    fb.epoch = epoch;
                    fb.path = i;
                    fb.cum_seq = cum_seq;
                    fb.nacks.clear();
                    fb.nacks.extend_from_slice(nacks);
                    fb.new_losses = new_losses;
                    fb.ts_echo = ts_echo;
                    fb.echo_delay = echo_delay;
                    fb.recv_rate = recv_rate;
                },
            );
            let size = feedback_size(self.nack_scratch.len());
            let id = ctx.next_packet_id();
            let pkt = Packet::new(id, self.conn, size, ctx.now())
                .with_prio(0)
                .with_shared_payload(payload);
            reverse.send(ctx, pkt);
            self.stats.borrow_mut().feedback_sent += 1;
        }
        ctx.schedule_timer(self.feedback_interval, TAG_FEEDBACK);
    }
}

impl Actor for ArReceiver {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                ctx.schedule_timer(self.feedback_interval, TAG_FEEDBACK);
            }
            Event::Timer { tag: TAG_FEEDBACK } => self.send_feedback(ctx),
            other => {
                if let Some(pkt) = unwrap_packet(other) {
                    self.on_packet(ctx, pkt);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Priority;
    use crate::config::OutageConfig;
    use marnet_sim::engine::Simulator;
    use marnet_sim::link::{Bandwidth, LinkParams, LossModel};
    use marnet_sim::packet::Payload;
    use marnet_sim::queue::QueueConfig;

    /// Application driving a 30 FPS MAR uplink into an ArSender.
    struct MarApp {
        sender: ActorId,
        next_id: u64,
        frame: u64,
        /// Shrinks when Degrade signals arrive.
        inter_size: u32,
        degrades_seen: Rc<RefCell<u32>>,
    }

    impl MarApp {
        fn new(sender: ActorId) -> Self {
            MarApp {
                sender,
                next_id: 0,
                frame: 0,
                inter_size: 8_000,
                degrades_seen: Rc::new(RefCell::new(0)),
            }
        }
    }

    impl Actor for MarApp {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            match ev {
                Event::Start | Event::Timer { .. } => {
                    let now = ctx.now();
                    let deadline = now + SimDuration::from_millis(75);
                    // Reference frame every 10 frames, interframes otherwise.
                    let kind = if self.frame.is_multiple_of(10) {
                        StreamKind::VideoReference
                    } else {
                        StreamKind::VideoInter
                    };
                    let size =
                        if kind == StreamKind::VideoReference { 20_000 } else { self.inter_size };
                    self.frame += 1;
                    let mut submit = |id: u64, kind, size| {
                        let m = ArMessage::new(id, kind, size, now).with_deadline(deadline);
                        ctx.send_message(self.sender, Payload::new(Submit(m)));
                    };
                    let id = self.next_id;
                    self.next_id += 3;
                    submit(id, kind, size);
                    submit(id + 1, StreamKind::Sensor, 200);
                    submit(id + 2, StreamKind::Metadata, 100);
                    ctx.schedule_timer(SimDuration::from_millis(33), 0);
                }
                Event::Message { mut msg, .. } => {
                    if let Some(QosSignal::Degrade { .. }) = msg.take::<QosSignal>() {
                        *self.degrades_seen.borrow_mut() += 1;
                        self.inter_size = (self.inter_size / 2).max(500);
                    }
                }
                _ => {}
            }
        }
    }

    type BuiltPipeline =
        (Rc<RefCell<ArSenderStats>>, Rc<RefCell<ArReceiverStats>>, Rc<RefCell<u32>>, Simulator);

    fn build(loss: f64, rate_mbps: f64, cfg: ArConfig) -> BuiltPipeline {
        let mut sim = Simulator::new(77);
        let snd = sim.reserve_actor();
        let rcv = sim.reserve_actor();
        let app = sim.reserve_actor();
        let up = sim.add_link(
            snd,
            rcv,
            LinkParams::new(Bandwidth::from_mbps(rate_mbps), SimDuration::from_millis(10))
                .with_loss(LossModel::Bernoulli { p: loss })
                .with_queue(QueueConfig::DropTail { cap_packets: 200 }),
        );
        let down = sim.add_link(
            rcv,
            snd,
            LinkParams::new(Bandwidth::from_mbps(rate_mbps), SimDuration::from_millis(10)),
        );
        let sender = ArSender::new(
            1,
            cfg.clone(),
            vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
        )
        .with_qos_target(app);
        let sstats = sender.stats();
        sim.install_actor(snd, sender);
        let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
        let rstats = receiver.stats();
        sim.install_actor(rcv, receiver);
        let app_actor = MarApp::new(snd);
        let degrades = Rc::clone(&app_actor.degrades_seen);
        sim.install_actor(app, app_actor);
        (sstats, rstats, degrades, sim)
    }

    #[test]
    fn clean_link_delivers_everything_on_time() {
        let (sstats, rstats, _, mut sim) = build(0.0, 20.0, ArConfig::default());
        sim.run_until(SimTime::from_secs(10));
        let r = rstats.borrow();
        let hit = r.deadline_hit_ratio();
        assert!(hit > 0.99, "deadline hit ratio {hit}");
        let meta = &r.by_kind[&StreamKind::Metadata];
        assert!(meta.delivered > 250, "metadata delivered {}", meta.delivered);
        assert_eq!(sstats.borrow().loss_congestion_events, 0);
        assert!(r.duplicates == 0);
    }

    #[test]
    fn lossy_link_recovers_reference_frames_via_fec_or_rtx() {
        let (sstats, rstats, _, mut sim) = build(0.03, 20.0, ArConfig::default());
        sim.run_until(SimTime::from_secs(20));
        let r = rstats.borrow();
        let s = sstats.borrow();
        let refs = &r.by_kind[&StreamKind::VideoReference];
        // ~60 reference frames offered over 20 s; the vast majority must
        // complete despite 3% loss.
        assert!(refs.delivered > 45, "reference frames delivered {}", refs.delivered);
        assert!(
            r.fec_recovered > 0 || s.retransmits > 0,
            "recovery machinery must have engaged: fec={} rtx={}",
            r.fec_recovered,
            s.retransmits
        );
        // Metadata (critical) keeps flowing.
        assert!(r.by_kind[&StreamKind::Metadata].delivered > 500);
    }

    #[test]
    fn tight_link_degrades_instead_of_collapsing() {
        // Offered video ≈ 2.3 Mb/s into a 1.2 Mb/s link: the scheduler must
        // shed interframes, signal the app, and protect metadata.
        let (sstats, rstats, degrades, mut sim) = build(0.0, 1.2, ArConfig::default());
        sim.run_until(SimTime::from_secs(20));
        let s = sstats.borrow();
        let r = rstats.borrow();
        assert!(s.dropped_bytes() > 0, "shedding must happen");
        assert!(*degrades.borrow() > 0, "app must be told to degrade");
        // Interframes are shed, not metadata.
        assert!(s.dropped_msgs(StreamKind::Metadata) == 0);
        assert!(s.dropped_msgs(StreamKind::VideoInter) > 0);
        // Critical metadata still delivered at full cadence (~30/s).
        let meta = &r.by_kind[&StreamKind::Metadata];
        assert!(meta.delivered > 500, "metadata delivered {}", meta.delivered);
    }

    #[test]
    fn sender_reacts_to_congestion_with_rate_cut() {
        let (sstats, _, _, mut sim) = build(0.0, 1.2, ArConfig::default());
        sim.run_until(SimTime::from_secs(20));
        let s = sstats.borrow();
        assert!(
            s.delay_congestion_events > 0,
            "queue buildup on a 1.2 Mb/s link must trip the delay signal"
        );
    }

    #[test]
    fn priority_override_controls_shedding_order() {
        // Submit bulk at Lowest(1) and video at Lowest(0) under pressure:
        // the bulk must be shed at least as much as the video.
        let mut sim = Simulator::new(3);
        let snd = sim.reserve_actor();
        let rcv = sim.reserve_actor();
        let up = sim.add_link(
            snd,
            rcv,
            LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::from_millis(5)),
        );
        let down = sim.add_link(
            rcv,
            snd,
            LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::from_millis(5)),
        );
        let cfg = ArConfig::default();
        let sender = ArSender::new(
            1,
            cfg.clone(),
            vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: None }],
        );
        let sstats = sender.stats();
        sim.install_actor(snd, sender);
        let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
        sim.install_actor(rcv, receiver);

        struct TwoStreams {
            sender: ActorId,
            next_id: u64,
        }
        impl Actor for TwoStreams {
            fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
                if matches!(ev, Event::Start | Event::Timer { .. }) {
                    let now = ctx.now();
                    let v = ArMessage::new(self.next_id, StreamKind::VideoInter, 4000, now)
                        .with_priority(Priority::Lowest(0));
                    let b = ArMessage::new(self.next_id + 1, StreamKind::Bulk, 4000, now)
                        .with_priority(Priority::Lowest(1));
                    self.next_id += 2;
                    ctx.send_message(self.sender, Payload::new(Submit(v)));
                    ctx.send_message(self.sender, Payload::new(Submit(b)));
                    ctx.schedule_timer(SimDuration::from_millis(20), 0);
                }
            }
        }
        sim.add_actor(TwoStreams { sender: snd, next_id: 0 });
        sim.run_until(SimTime::from_secs(10));
        let s = sstats.borrow();
        let bulk_drops = s.dropped_msgs(StreamKind::Bulk);
        let video_drops = s.dropped_msgs(StreamKind::VideoInter);
        assert!(bulk_drops > 0, "pressure must shed bulk");
        assert!(bulk_drops >= video_drops, "bulk {bulk_drops} vs video {video_drops}");
    }

    /// Drops both directions of the pipeline's link at 2 s and restores
    /// them 500 ms later.
    struct Flipper {
        up: marnet_sim::link::LinkId,
        down: marnet_sim::link::LinkId,
    }

    impl Actor for Flipper {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            match ev {
                Event::Start => {
                    ctx.schedule_timer(SimDuration::from_secs(2), 1);
                }
                Event::Timer { tag: 1 } => {
                    ctx.set_link_up(self.up, false);
                    ctx.set_link_up(self.down, false);
                    ctx.schedule_timer(SimDuration::from_millis(500), 2);
                }
                Event::Timer { tag: 2 } => {
                    ctx.set_link_up(self.up, true);
                    ctx.set_link_up(self.down, true);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn watchdog_detects_outage_probes_and_resolves() {
        use marnet_telemetry::event::TraceKind;

        let cfg = ArConfig { outage: OutageConfig::hardened(), ..ArConfig::default() };
        let mut sim = Simulator::new(77);
        sim.enable_flight_recorder(1 << 14);
        let snd = sim.reserve_actor();
        let rcv = sim.reserve_actor();
        let app = sim.reserve_actor();
        let up = sim.add_link(
            snd,
            rcv,
            LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(10)),
        );
        let down = sim.add_link(
            rcv,
            snd,
            LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(10)),
        );
        let sender = ArSender::new(
            1,
            cfg.clone(),
            vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
        )
        .with_qos_target(app);
        let sstats = sender.stats();
        sim.install_actor(snd, sender);
        let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
        let rstats = receiver.stats();
        sim.install_actor(rcv, receiver);
        sim.install_actor(app, MarApp::new(snd));
        sim.add_actor(Flipper { up, down });
        sim.run_until(SimTime::from_secs(5));

        let s = sstats.borrow();
        assert!(s.outages_detected >= 1, "watchdog must fire: {}", s.outages_detected);
        assert!(s.recovery_probes >= 1, "probes must be sent: {}", s.recovery_probes);

        let trace = sim.take_trace();
        let detect =
            trace.iter().find(|e| e.kind == TraceKind::OutageDetect).expect("OutageDetect traced");
        // Feedback still in flight when the link drops can resolve the
        // first detection, after which the watchdog re-detects on the next
        // tick; the final resolve is the one that ends the outage.
        let resolve = trace
            .iter()
            .rfind(|e| e.kind == TraceKind::OutageResolve)
            .expect("OutageResolve traced");
        // Outage starts at 2 s; all paths are link-backed, so detection is
        // tick-granular: within 5 ms of the link going down.
        assert!(detect.t >= 2_000_000_000 && detect.t <= 2_005_000_001, "detect at {}", detect.t);
        // Resolution requires the link back (2.5 s) plus a probe and its
        // feedback round trip; well under 100 ms after restoration.
        assert!(resolve.t >= 2_500_000_000 && resolve.t < 2_600_000_000, "res at {}", resolve.t);
        assert!(trace.iter().any(|e| e.kind == TraceKind::RecoveryProbe), "probe traced");

        // The session survives: traffic flows again after the outage.
        let r = rstats.borrow();
        let meta = &r.by_kind[&StreamKind::Metadata];
        assert!(meta.delivered > 120, "metadata delivered across outage: {}", meta.delivered);
    }

    #[test]
    fn receiver_epoch_bump_forces_sender_resync() {
        let cfg = ArConfig { outage: OutageConfig::hardened(), ..ArConfig::default() };
        let mut sim = Simulator::new(9);
        let nic = sim.reserve_actor();
        struct Nop;
        impl Actor for Nop {
            fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
        }
        sim.install_actor(nic, Nop);
        let mut sender = ArSender::new(
            1,
            cfg,
            vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Nic(nic), link: None }],
        );
        let sstats = sender.stats();
        sim.run_until(SimTime::from_millis(1));
        let ctx = sim.ctx_mut();
        let fb = |epoch| ArFeedback {
            conn: 1,
            epoch,
            path: 0,
            cum_seq: None,
            nacks: Vec::new(),
            new_losses: 0,
            ts_echo: None,
            echo_delay: SimDuration::ZERO,
            recv_rate: None,
        };
        sender.on_feedback(ctx, &fb(0));
        assert_eq!(sstats.borrow().session_resyncs, 0);
        sender.on_feedback(ctx, &fb(1));
        assert_eq!(sstats.borrow().session_resyncs, 1);
        // Same epoch again: no further resync.
        sender.on_feedback(ctx, &fb(1));
        assert_eq!(sstats.borrow().session_resyncs, 1);
    }

    #[test]
    fn unhardened_sender_never_resyncs_on_epoch_bump() {
        // Without the hardened profile there is no session
        // re-establishment: the epoch change in feedback goes unnoticed,
        // which is the cold-restart failure mode sweep_faults demonstrates.
        let cfg = ArConfig::default();
        assert!(!cfg.outage.enabled);
        let mut sim = Simulator::new(9);
        let nic = sim.reserve_actor();
        struct Nop;
        impl Actor for Nop {
            fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
        }
        sim.install_actor(nic, Nop);
        let mut sender = ArSender::new(
            1,
            cfg,
            vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Nic(nic), link: None }],
        );
        let sstats = sender.stats();
        sim.run_until(SimTime::from_millis(1));
        let ctx = sim.ctx_mut();
        let fb = ArFeedback {
            conn: 1,
            epoch: 7,
            path: 0,
            cum_seq: None,
            nacks: Vec::new(),
            new_losses: 0,
            ts_echo: None,
            echo_delay: SimDuration::ZERO,
            recv_rate: None,
        };
        sender.on_feedback(ctx, &fb);
        sender.on_feedback(ctx, &fb);
        assert_eq!(sstats.borrow().session_resyncs, 0);
    }
}
