//! Property-based tests for the edge layer: placement solver soundness and
//! optimality ordering on random instances.

use marnet_edge::placement::synthetic_metro;
use marnet_edge::selection::{select_per_path, InterServerMatrix, ServerOption};
use marnet_sim::rng::derive_rng;
use marnet_sim::time::SimDuration;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Greedy solutions always cover every feasible user, and the exact
    /// solver is never worse than greedy nor better than the lower bound.
    #[test]
    fn placement_solvers_are_sound_and_ordered(
        seed in 0u64..500,
        users in 10usize..80,
        sites in 2usize..14,
        budget_ms in 8u64..60,
    ) {
        let mut rng = derive_rng(seed, "props.placement");
        let p = synthetic_metro(users, sites, 20.0, SimDuration::from_millis(budget_ms), &mut rng);
        let greedy = p.solve_greedy();
        let exact = p.solve_exact();
        prop_assert!(p.validate(&greedy), "greedy cover invalid");
        prop_assert!(p.validate(&exact), "exact cover invalid");
        prop_assert!(exact.cost() <= greedy.cost(), "exact worse than greedy");
        prop_assert!(p.lower_bound() <= exact.cost(), "lower bound above optimum");
        // Infeasible sets agree (they depend only on the instance).
        prop_assert_eq!(&greedy.uncovered, &exact.uncovered);
    }

    /// Per-path selection always picks each path's minimum-RTT option.
    #[test]
    fn per_path_selection_minimizes_each_path(
        rtts in prop::collection::vec((1u64..200, 1u64..200), 1..5),
    ) {
        let options: Vec<Vec<ServerOption>> = rtts
            .iter()
            .map(|&(a, b)| {
                vec![
                    ServerOption {
                        name: "a".into(),
                        rtt: SimDuration::from_millis(a),
                        compute_gflops: 1.0,
                    },
                    ServerOption {
                        name: "b".into(),
                        rtt: SimDuration::from_millis(b),
                        compute_gflops: 1.0,
                    },
                ]
            })
            .collect();
        let matrix = InterServerMatrix::new(
            vec!["a".into(), "b".into()],
            vec![
                vec![SimDuration::ZERO, SimDuration::from_millis(30)],
                vec![SimDuration::from_millis(30), SimDuration::ZERO],
            ],
        );
        let plan = select_per_path(&options, &matrix);
        for (i, &(a, b)) in rtts.iter().enumerate() {
            prop_assert_eq!(plan.path_rtt[i], SimDuration::from_millis(a.min(b)));
        }
        // Sync is charged iff at least two distinct servers were chosen.
        let distinct = plan.per_path.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert_eq!(plan.sync > SimDuration::ZERO, distinct > 1);
    }
}
