//! # marnet-edge — edge datacenters, multi-server offloading and D2D
//!
//! §VI-E and §VI-F of the paper push offloading beyond a single cloud
//! server: use different servers per path, offload latency-critical work to
//! nearby devices, and place edge datacenters so every user's
//! `P_offloading` fits the deadline. This crate implements:
//!
//! * [`placement`] — the §VI-F optimisation: minimise the number of edge
//!   datacenters subject to every user's offload deadline, with a greedy
//!   set-cover solver, an exact branch-and-bound for small instances, and
//!   lower bounds;
//! * [`selection`] — per-path server selection and the n-way inter-server
//!   synchronisation cost model of §VI-E;
//! * [`d2d`] — device-to-device offload: LTE-Direct / WiFi-Direct helper
//!   selection with the energy trade-offs of §IV-A-5;
//! * [`scenarios`] — builders for the four distribution architectures of
//!   Fig. 5, returning ready-to-run simulations;
//! * [`session`] — crash/restart wrappers for edge servers: downtime
//!   windows, state loss and session re-establishment under the
//!   `marnet-faults` injection subsystem.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod d2d;
pub mod placement;
pub mod scenarios;
pub mod selection;
pub mod session;

pub use placement::{PlacementProblem, PlacementSolution};
pub use scenarios::DistributionScenario;
pub use session::RestartableServer;
