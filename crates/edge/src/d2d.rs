//! Device-to-device offloading (§VI-E, Figs. 5b-5d).
//!
//! "Other nearby smartphones could assist by sharing their available
//! processing power" — useful for smart glasses where "even simple feature
//! extraction can considerably slow down the process". The radio trade-off
//! follows the paper's §IV-A-5 comparison (citing Condoluci et al.):
//! LTE-Direct detects neighbours better and is more energy efficient with
//! many users; WiFi-Direct is more efficient for small data volumes, is
//! free, and is available on today's devices.

use marnet_app::device::DeviceSpec;
use marnet_radio::profiles::{LinkDirection, RadioTechnology};
use marnet_sim::link::LinkParams;
use marnet_sim::time::SimDuration;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A nearby device offering compute.
#[derive(Debug, Clone, PartialEq)]
pub struct Helper {
    /// Label ("my-phone", "livingroom-pc", ...).
    pub name: String,
    /// The helper's hardware.
    pub spec: DeviceSpec,
    /// Distance from the requesting device, meters.
    pub distance_m: f64,
    /// D2D technology used to reach it.
    pub radio: RadioTechnology,
}

impl Helper {
    /// Whether the helper is within the radio's range at all.
    pub fn in_range(&self) -> bool {
        self.radio.profile().range_m.is_none_or(|r| self.distance_m <= r)
    }

    /// Link parameters for the D2D hop, derated linearly with distance
    /// (§IV-A-5: "the bandwidth depends strongly on the mobility of the
    /// users"; we model the distance part).
    pub fn link_params(&self, rng: &mut ChaCha12Rng) -> LinkParams {
        let profile = self.radio.profile();
        let mut params = profile.sample_link_params(LinkDirection::Uplink, rng);
        if let Some(range) = profile.range_m {
            let frac = (1.0 - self.distance_m / range).clamp(0.05, 1.0);
            params.rate =
                marnet_sim::link::Bandwidth::from_bps((params.rate.as_bps() as f64 * frac) as u64);
        }
        params
    }
}

/// Energy model per byte and per discovery round (relative units,
/// calibrated to the §IV-A-5 qualitative comparison).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per transmitted megabyte on LTE-Direct.
    pub lte_direct_per_mb: f64,
    /// Energy per transmitted megabyte on WiFi-Direct.
    pub wifi_direct_per_mb: f64,
    /// Discovery energy per neighbour scan on LTE-Direct (cheap: the
    /// network coordinates discovery).
    pub lte_direct_discovery: f64,
    /// Discovery energy per neighbour scan on WiFi-Direct (expensive:
    /// active probing).
    pub wifi_direct_discovery: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            lte_direct_per_mb: 1.2,
            wifi_direct_per_mb: 0.5,
            lte_direct_discovery: 2.0,
            wifi_direct_discovery: 1.0,
        }
    }
}

impl EnergyModel {
    /// Energy of a D2D session: one discovery (amortised over `peers`
    /// scanned neighbours for LTE-Direct, per-peer probing for
    /// WiFi-Direct) plus the payload.
    pub fn session_energy(&self, radio: RadioTechnology, megabytes: f64, peers: usize) -> f64 {
        match radio {
            RadioTechnology::LteDirect => {
                self.lte_direct_discovery + self.lte_direct_per_mb * megabytes
            }
            RadioTechnology::WifiDirect => {
                self.wifi_direct_discovery * peers as f64 + self.wifi_direct_per_mb * megabytes
            }
            _ => f64::INFINITY,
        }
    }

    /// Which D2D radio is more energy efficient for this session — the
    /// §IV-A-5 crossover: LTE-Direct wins with many users, WiFi-Direct
    /// wins for small data (and small neighbourhoods).
    pub fn cheaper_radio(&self, megabytes: f64, peers: usize) -> RadioTechnology {
        let lte = self.session_energy(RadioTechnology::LteDirect, megabytes, peers);
        let wifi = self.session_energy(RadioTechnology::WifiDirect, megabytes, peers);
        if lte <= wifi {
            RadioTechnology::LteDirect
        } else {
            RadioTechnology::WifiDirect
        }
    }
}

/// Where a unit of work should run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Executor {
    /// On the requesting device itself.
    Local,
    /// On a nearby helper (by name).
    Helper(String),
    /// On the cloud/edge server.
    Cloud,
}

/// Picks the executor minimising estimated completion time for a job of
/// `gflop` compute and `payload_bytes` transfer.
///
/// The device is used if it meets the deadline; otherwise the fastest of
/// helpers and cloud wins.
#[allow(clippy::too_many_arguments)]
pub fn choose_executor(
    device: &DeviceSpec,
    helpers: &[Helper],
    cloud_rtt: SimDuration,
    cloud_gflops: f64,
    cloud_uplink_bps: u64,
    gflop: f64,
    payload_bytes: u64,
    deadline: SimDuration,
) -> (Executor, SimDuration) {
    let local = SimDuration::from_secs_f64(gflop / device.compute_gflops.max(1e-9));
    if local < deadline {
        return (Executor::Local, local);
    }
    let mut best = (
        Executor::Cloud,
        cloud_rtt
            + SimDuration::from_secs_f64(
                payload_bytes as f64 * 8.0 / cloud_uplink_bps.max(1) as f64,
            )
            + SimDuration::from_secs_f64(gflop / cloud_gflops.max(1e-9)),
    );
    for h in helpers {
        if !h.in_range() {
            continue;
        }
        let profile = h.radio.profile();
        let rate_bps = profile.measured_up_mbps.mid() * 1e6;
        let rtt = SimDuration::from_millis_f64(profile.latency_ms.mid());
        let t = rtt
            + SimDuration::from_secs_f64(payload_bytes as f64 * 8.0 / rate_bps)
            + SimDuration::from_secs_f64(gflop / h.spec.compute_gflops.max(1e-9));
        if t < best.1 {
            best = (Executor::Helper(h.name.clone()), t);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_app::device::DeviceClass;
    use marnet_sim::rng::derive_rng;

    fn helper(name: &str, class: DeviceClass, dist: f64, radio: RadioTechnology) -> Helper {
        Helper { name: name.into(), spec: class.spec(), distance_m: dist, radio }
    }

    #[test]
    fn range_checks() {
        assert!(helper("a", DeviceClass::Smartphone, 150.0, RadioTechnology::WifiDirect).in_range());
        assert!(
            !helper("a", DeviceClass::Smartphone, 250.0, RadioTechnology::WifiDirect).in_range()
        );
        assert!(helper("a", DeviceClass::Smartphone, 900.0, RadioTechnology::LteDirect).in_range());
    }

    #[test]
    fn link_rate_derates_with_distance() {
        let mut rng = derive_rng(7, "d2d");
        let near = helper("n", DeviceClass::Smartphone, 10.0, RadioTechnology::WifiDirect)
            .link_params(&mut rng);
        let mut rng = derive_rng(7, "d2d");
        let far = helper("f", DeviceClass::Smartphone, 190.0, RadioTechnology::WifiDirect)
            .link_params(&mut rng);
        assert!(near.rate.as_bps() > far.rate.as_bps() * 5);
    }

    #[test]
    fn energy_crossover_matches_the_paper() {
        let e = EnergyModel::default();
        // Small data, few neighbours: WiFi-Direct is cheaper.
        assert_eq!(e.cheaper_radio(1.0, 1), RadioTechnology::WifiDirect);
        // Many neighbours to probe: LTE-Direct's coordinated discovery wins.
        assert_eq!(e.cheaper_radio(1.0, 20), RadioTechnology::LteDirect);
        // Huge transfer with one peer: WiFi-Direct's lower per-byte cost wins.
        assert_eq!(e.cheaper_radio(500.0, 1), RadioTechnology::WifiDirect);
    }

    #[test]
    fn glasses_offload_feature_extraction_to_phone() {
        // Fig. 5b-d: the glasses can't extract features in time; a nearby
        // phone over WiFi-Direct can.
        let glasses = DeviceClass::SmartGlasses.spec();
        let helpers =
            vec![helper("phone", DeviceClass::Smartphone, 1.0, RadioTechnology::WifiDirect)];
        let (exec, t) = choose_executor(
            &glasses,
            &helpers,
            SimDuration::from_millis(36),
            20_000.0,
            8_000_000,
            0.4,    // extraction GFLOP
            16_000, // descriptor payload
            SimDuration::from_millis(75),
        );
        assert_eq!(exec, Executor::Helper("phone".into()));
        assert!(t < SimDuration::from_millis(75), "helper time {t}");
    }

    #[test]
    fn cloud_wins_for_heavy_compute() {
        // Matching against a big DB needs server GFLOPS; the phone helper
        // would take too long.
        let glasses = DeviceClass::SmartGlasses.spec();
        let helpers =
            vec![helper("phone", DeviceClass::Smartphone, 1.0, RadioTechnology::WifiDirect)];
        let (exec, _) = choose_executor(
            &glasses,
            &helpers,
            SimDuration::from_millis(36),
            20_000.0,
            8_000_000,
            5.0, // heavy matching workload
            16_000,
            SimDuration::from_millis(75),
        );
        assert_eq!(exec, Executor::Cloud);
    }

    #[test]
    fn trivial_work_stays_local() {
        let phone = DeviceClass::Smartphone.spec();
        let (exec, _) = choose_executor(
            &phone,
            &[],
            SimDuration::from_millis(36),
            20_000.0,
            8_000_000,
            0.1,
            1_000,
            SimDuration::from_millis(75),
        );
        assert_eq!(exec, Executor::Local);
    }

    #[test]
    fn out_of_range_helpers_are_skipped() {
        let glasses = DeviceClass::SmartGlasses.spec();
        let helpers = vec![helper("far", DeviceClass::Desktop, 500.0, RadioTechnology::WifiDirect)];
        let (exec, _) = choose_executor(
            &glasses,
            &helpers,
            SimDuration::from_millis(36),
            20_000.0,
            8_000_000,
            0.4,
            16_000,
            SimDuration::from_millis(10),
        );
        assert_eq!(exec, Executor::Cloud);
    }
}
