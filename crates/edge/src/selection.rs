//! Per-path server selection and inter-server synchronisation (§VI-E).
//!
//! "When connecting to a university's WiFi network, it may be preferable to
//! offload to the university server, while the connection using 4G […] may
//! contact a different server. […] However, servers should be interconnected
//! in order to process data efficiently. The question of inter-server
//! synchronisation remains with the need for n-way synchronisation."

use marnet_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A reachable server as seen from one network path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerOption {
    /// Human-readable label ("university", "cloud-tw", ...).
    pub name: String,
    /// RTT from the device over this path to this server.
    pub rtt: SimDuration,
    /// Server compute capacity in GFLOPS.
    pub compute_gflops: f64,
}

/// Pairwise inter-server latency matrix (symmetric, zero diagonal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterServerMatrix {
    names: Vec<String>,
    /// Row-major RTTs.
    rtt: Vec<Vec<SimDuration>>,
}

impl InterServerMatrix {
    /// Builds a matrix from names and a full RTT table.
    ///
    /// # Panics
    ///
    /// Panics if the table is not square or diagonal entries are non-zero.
    pub fn new(names: Vec<String>, rtt: Vec<Vec<SimDuration>>) -> Self {
        assert_eq!(names.len(), rtt.len(), "matrix must be square");
        for (i, row) in rtt.iter().enumerate() {
            assert_eq!(row.len(), names.len(), "matrix must be square");
            assert_eq!(row[i], SimDuration::ZERO, "diagonal must be zero");
        }
        InterServerMatrix { names, rtt }
    }

    fn index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// RTT between two servers (`None` if either is unknown).
    pub fn between(&self, a: &str, b: &str) -> Option<SimDuration> {
        Some(self.rtt[self.index(a)?][self.index(b)?])
    }

    /// The n-way synchronisation latency across the given servers: one
    /// round of all-to-all state exchange is bounded by the slowest pair.
    pub fn sync_latency(&self, servers: &[&str]) -> SimDuration {
        let mut worst = SimDuration::ZERO;
        for (i, a) in servers.iter().enumerate() {
            for b in &servers[i + 1..] {
                if let Some(r) = self.between(a, b) {
                    worst = worst.max(r);
                }
            }
        }
        worst
    }
}

/// An assignment of servers to paths, with its synchronisation cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiServerPlan {
    /// Chosen server name per path (same order as the input).
    pub per_path: Vec<String>,
    /// Sync latency if the per-path servers differ (zero for one server).
    pub sync: SimDuration,
    /// Per-path device→server RTT of the chosen servers.
    pub path_rtt: Vec<SimDuration>,
}

impl MultiServerPlan {
    /// Effective latency of an offload that needs fan-in across servers:
    /// the worst chosen path RTT plus the sync round.
    pub fn fan_in_latency(&self) -> SimDuration {
        self.path_rtt.iter().copied().max().unwrap_or(SimDuration::ZERO) + self.sync
    }
}

/// Chooses, per path, the lowest-RTT server — Fig. 5a's "the nearest
/// server would be selected for a given path" — and prices the resulting
/// synchronisation.
///
/// # Panics
///
/// Panics if any path has no server options.
pub fn select_per_path(
    options_per_path: &[Vec<ServerOption>],
    matrix: &InterServerMatrix,
) -> MultiServerPlan {
    let mut per_path = Vec::new();
    let mut path_rtt = Vec::new();
    for opts in options_per_path {
        let best =
            opts.iter().min_by_key(|o| o.rtt).expect("every path needs at least one server option");
        per_path.push(best.name.clone());
        path_rtt.push(best.rtt);
    }
    let mut distinct: Vec<&str> = per_path.iter().map(String::as_str).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let sync = if distinct.len() > 1 { matrix.sync_latency(&distinct) } else { SimDuration::ZERO };
    MultiServerPlan { per_path, sync, path_rtt }
}

/// Chooses a single shared server minimising the worst path RTT — the
/// alternative to per-path selection when synchronisation is too costly.
///
/// # Panics
///
/// Panics if no server is reachable from every path.
pub fn select_single(options_per_path: &[Vec<ServerOption>]) -> MultiServerPlan {
    // Candidate servers reachable from all paths.
    let first: Vec<&ServerOption> =
        options_per_path.first().map_or(Vec::new(), |v| v.iter().collect());
    let mut best: Option<(SimDuration, &ServerOption, Vec<SimDuration>)> = None;
    for cand in first {
        let mut rtts = Vec::new();
        let mut ok = true;
        for opts in options_per_path {
            match opts.iter().find(|o| o.name == cand.name) {
                Some(o) => rtts.push(o.rtt),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let worst = rtts.iter().copied().max().unwrap_or(SimDuration::ZERO);
        if best.as_ref().is_none_or(|(w, _, _)| worst < *w) {
            best = Some((worst, cand, rtts));
        }
    }
    let (_, server, path_rtt) = best.expect("no server reachable from every path");
    MultiServerPlan {
        per_path: vec![server.name.clone(); options_per_path.len()],
        sync: SimDuration::ZERO,
        path_rtt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn matrix() -> InterServerMatrix {
        InterServerMatrix::new(
            vec!["uni".into(), "cloud".into()],
            vec![vec![ms(0), ms(25)], vec![ms(25), ms(0)]],
        )
    }

    fn options() -> Vec<Vec<ServerOption>> {
        vec![
            // Path 0 (campus WiFi): university server is close.
            vec![
                ServerOption { name: "uni".into(), rtt: ms(9), compute_gflops: 2_000.0 },
                ServerOption { name: "cloud".into(), rtt: ms(36), compute_gflops: 20_000.0 },
            ],
            // Path 1 (LTE): cloud is closer than the campus detour.
            vec![
                ServerOption { name: "uni".into(), rtt: ms(90), compute_gflops: 2_000.0 },
                ServerOption { name: "cloud".into(), rtt: ms(60), compute_gflops: 20_000.0 },
            ],
        ]
    }

    #[test]
    fn per_path_picks_nearest_and_prices_sync() {
        let plan = select_per_path(&options(), &matrix());
        assert_eq!(plan.per_path, vec!["uni", "cloud"]);
        assert_eq!(plan.path_rtt, vec![ms(9), ms(60)]);
        assert_eq!(plan.sync, ms(25));
        assert_eq!(plan.fan_in_latency(), ms(85));
    }

    #[test]
    fn single_server_avoids_sync_at_higher_path_cost() {
        let plan = select_single(&options());
        assert_eq!(plan.per_path, vec!["cloud", "cloud"]);
        assert_eq!(plan.sync, SimDuration::ZERO);
        assert_eq!(plan.fan_in_latency(), ms(60));
        // The §VI-E trade-off, concretely: here the single server wins on
        // fan-in latency (60 < 85) but loses on path-0 latency (36 > 9).
        let per_path = select_per_path(&options(), &matrix());
        assert!(plan.fan_in_latency() < per_path.fan_in_latency());
        assert!(plan.path_rtt[0] > per_path.path_rtt[0]);
    }

    #[test]
    fn same_server_on_all_paths_needs_no_sync() {
        let opts = vec![
            vec![ServerOption { name: "cloud".into(), rtt: ms(30), compute_gflops: 1.0 }],
            vec![ServerOption { name: "cloud".into(), rtt: ms(50), compute_gflops: 1.0 }],
        ];
        let plan = select_per_path(&opts, &matrix());
        assert_eq!(plan.sync, SimDuration::ZERO);
    }

    #[test]
    fn sync_latency_is_worst_pair() {
        let m = InterServerMatrix::new(
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![ms(0), ms(10), ms(40)],
                vec![ms(10), ms(0), ms(20)],
                vec![ms(40), ms(20), ms(0)],
            ],
        );
        assert_eq!(m.sync_latency(&["a", "b", "c"]), ms(40));
        assert_eq!(m.sync_latency(&["a", "b"]), ms(10));
        assert_eq!(m.sync_latency(&["a"]), ms(0));
        assert_eq!(m.between("b", "c"), Some(ms(20)));
        assert_eq!(m.between("b", "zzz"), None);
    }

    #[test]
    #[should_panic]
    fn nonzero_diagonal_panics() {
        let _ = InterServerMatrix::new(vec!["a".into()], vec![vec![ms(1)]]);
    }
}
