//! Crash/restart session management for edge servers.
//!
//! An edge server is not a datacenter: it can lose power, reboot for an
//! upgrade, or get migrated. This module wraps a protocol receiver (and the
//! object-DB cache colocated with it) in a [`RestartableServer`] that
//! understands the [`EdgeFault`] message injected by `marnet-faults`:
//!
//! * while **down**, every packet and timer addressed to the server
//!   vanishes, exactly as if the process were dead;
//! * at **restart**, a crash that lost state re-establishes the session —
//!   the receiver bumps its epoch (advertised in feedback, so the sender
//!   re-syncs its sequence spaces) and the LRU cache is cleared, modelling
//!   a cold object DB that must re-warm;
//! * the receiver's self-rescheduling feedback chain, broken when its timer
//!   fired into the void, is re-armed so feedback resumes.
//!
//! Every transition emits a flight-recorder event ([`TraceEvent::edge_crash`]
//! / [`TraceEvent::edge_restart`]) so `marnet-trace` can reconstruct the
//! outage timeline.

use std::cell::RefCell;
use std::rc::Rc;

use marnet_app::db::LruCache;
use marnet_core::endpoint::ArReceiver;
use marnet_faults::inject::EdgeFault;
use marnet_sim::engine::{Actor, Event, SimCtx};
use marnet_sim::time::SimTime;
use marnet_telemetry::event::{component, TraceEvent};

/// Wrapper timer tag for the restart alarm; far above the protocol tags so
/// inner timers are never confused with it.
const TAG_RESTART: u64 = 1000;

/// An edge server (protocol receiver + optional object cache) that can
/// crash and restart under fault injection.
pub struct RestartableServer {
    inner: ArReceiver,
    /// Object-DB cache colocated with the server; cleared on a state-losing
    /// restart.
    cache: Option<Rc<RefCell<LruCache>>>,
    /// `Some(crash instant)` while the server is dark.
    down_since: Option<SimTime>,
    /// Whether the pending restart loses receiver/cache state.
    lose_state: bool,
    /// The feedback timer fired while dark, breaking the receiver's
    /// self-rescheduling chain; restart must re-arm it.
    feedback_swallowed: bool,
    crashes: u64,
}

impl std::fmt::Debug for RestartableServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RestartableServer")
            .field("inner", &self.inner)
            .field("down", &self.down_since.is_some())
            .field("crashes", &self.crashes)
            .finish()
    }
}

impl RestartableServer {
    /// Wraps a receiver so it can crash and restart.
    pub fn new(inner: ArReceiver) -> Self {
        RestartableServer {
            inner,
            cache: None,
            down_since: None,
            lose_state: false,
            feedback_swallowed: false,
            crashes: 0,
        }
    }

    /// Attaches the object cache living on this server, builder style.
    #[must_use]
    pub fn with_cache(mut self, cache: Rc<RefCell<LruCache>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Whether the server is currently dark.
    pub fn is_down(&self) -> bool {
        self.down_since.is_some()
    }

    /// Crashes survived so far.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// The wrapped receiver (for stats handles and epoch inspection).
    pub fn receiver(&self) -> &ArReceiver {
        &self.inner
    }

    fn crash(&mut self, ctx: &mut SimCtx, fault: &EdgeFault) {
        if self.down_since.is_some() {
            // Already dark: a dead process cannot crash harder. The restart
            // alarm of the first crash stands.
            return;
        }
        self.down_since = Some(ctx.now());
        self.lose_state = fault.lose_state;
        self.crashes += 1;
        ctx.schedule_timer(fault.down_for, TAG_RESTART);
        let t = ctx.now().as_nanos();
        let comp = component::actor(ctx.self_id().index());
        let (epoch, lost) = (u64::from(self.inner.epoch()), fault.lose_state);
        ctx.trace_with(|| TraceEvent::edge_crash(t, comp, epoch, lost));
    }

    fn restart(&mut self, ctx: &mut SimCtx) {
        let Some(since) = self.down_since.take() else {
            return;
        };
        if self.lose_state {
            let _ = self.inner.reset_session();
            if let Some(c) = &self.cache {
                c.borrow_mut().clear();
            }
        }
        let t = ctx.now().as_nanos();
        let comp = component::actor(ctx.self_id().index());
        let epoch = u64::from(self.inner.epoch());
        let downtime = ctx.now().saturating_since(since).as_nanos();
        ctx.trace_with(|| TraceEvent::edge_restart(t, comp, epoch, downtime));
        if self.feedback_swallowed {
            self.feedback_swallowed = false;
            self.inner.resume_feedback(ctx);
        }
    }
}

impl Actor for RestartableServer {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Timer { tag: TAG_RESTART } => self.restart(ctx),
            Event::Message { mut msg, from } => {
                if let Some(fault) = msg.take::<EdgeFault>() {
                    self.crash(ctx, &fault);
                } else if self.down_since.is_none() {
                    self.inner.on_event(ctx, Event::Message { msg, from });
                }
                // Messages to a dead server vanish.
            }
            Event::Timer { .. } if self.down_since.is_some() => {
                // An inner timer fired into the void. The receiver's only
                // timer is the feedback chain, which is self-rescheduling
                // and therefore now broken; remember to re-arm it.
                self.feedback_swallowed = true;
            }
            ev if self.down_since.is_some() => {
                // Packets to a dead server vanish (the sender's watchdog
                // notices the silence).
                drop(ev);
            }
            ev => self.inner.on_event(ctx, ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_core::class::StreamKind;
    use marnet_core::endpoint::{ArSender, SenderPathConfig, Submit};
    use marnet_core::message::ArMessage;
    use marnet_core::multipath::PathRole;
    use marnet_core::{ArConfig, OutageConfig};
    use marnet_faults::inject::FaultInjector;
    use marnet_faults::schedule::FaultSpec;
    use marnet_sim::engine::{ActorId, Simulator};
    use marnet_sim::link::{Bandwidth, LinkParams};
    use marnet_sim::packet::Payload;
    use marnet_sim::time::{SimDuration, SimTime};
    use marnet_telemetry::event::TraceKind;
    use marnet_transport::nic::TxPath;

    /// 30 FPS app: a reference frame plus critical metadata every 33 ms.
    struct App {
        sender: ActorId,
        next_id: u64,
    }

    impl Actor for App {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            if matches!(ev, Event::Start | Event::Timer { .. }) {
                let now = ctx.now();
                let deadline = now + SimDuration::from_millis(75);
                let v = ArMessage::new(self.next_id, StreamKind::VideoReference, 8000, now)
                    .with_deadline(deadline);
                let m = ArMessage::new(self.next_id + 1, StreamKind::Metadata, 100, now)
                    .with_deadline(deadline);
                self.next_id += 2;
                ctx.send_message(self.sender, Payload::new(Submit(v)));
                ctx.send_message(self.sender, Payload::new(Submit(m)));
                ctx.schedule_timer(SimDuration::from_millis(33), 0);
            }
        }
    }

    #[test]
    fn crash_restart_resyncs_session_and_clears_cache() {
        let cfg = ArConfig { outage: OutageConfig::hardened(), ..ArConfig::default() };
        let mut sim = Simulator::new(41);
        sim.enable_flight_recorder(1 << 14);
        let snd = sim.reserve_actor();
        let srv = sim.reserve_actor();
        let app = sim.reserve_actor();
        let up = sim.add_link(
            snd,
            srv,
            LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(10)),
        );
        let down = sim.add_link(
            srv,
            snd,
            LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(10)),
        );
        let sender = ArSender::new(
            1,
            cfg.clone(),
            vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
        );
        let sstats = sender.stats();
        sim.install_actor(snd, sender);

        let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
        let rstats = receiver.stats();
        let cache = Rc::new(RefCell::new(LruCache::new(10_000)));
        cache.borrow_mut().insert(7, 500);
        let server = RestartableServer::new(receiver).with_cache(Rc::clone(&cache));
        sim.install_actor(srv, server);
        sim.install_actor(app, App { sender: snd, next_id: 0 });

        // Scripted state-losing crash at 2 s, 300 ms dark.
        let spec = FaultSpec::new().edge_crash(
            srv,
            SimTime::from_secs(2),
            SimDuration::from_millis(300),
            true,
        );
        let schedule = spec.compile(41, SimTime::from_secs(5));
        sim.add_actor(FaultInjector::new(schedule));
        sim.run_until(SimTime::from_secs(5));

        // The cache lost its contents across the restart.
        assert!(cache.borrow().is_empty(), "crash must clear the object DB");
        // The sender noticed the new epoch and re-synced.
        let s = sstats.borrow();
        assert!(s.session_resyncs >= 1, "resyncs {}", s.session_resyncs);
        assert!(s.outages_detected >= 1, "watchdog must notice the dark server");
        // Traffic flows again after the restart: metadata keeps its ~30/s
        // cadence outside the 300 ms hole.
        let r = rstats.borrow();
        let meta = &r.by_kind[&StreamKind::Metadata];
        assert!(meta.delivered > 120, "metadata delivered {}", meta.delivered);

        let trace = sim.take_trace();
        for kind in [TraceKind::EdgeCrash, TraceKind::EdgeRestart, TraceKind::SessionResync] {
            assert!(trace.iter().any(|e| e.kind == kind), "missing {kind:?} in trace");
        }
        let crash = trace.iter().find(|e| e.kind == TraceKind::EdgeCrash).expect("crash");
        let restart = trace.iter().find(|e| e.kind == TraceKind::EdgeRestart).expect("restart");
        assert_eq!(restart.t - crash.t, 300_000_000, "downtime is the scripted 300 ms");
    }

    #[test]
    fn crash_without_state_loss_keeps_the_session() {
        let cfg = ArConfig { outage: OutageConfig::hardened(), ..ArConfig::default() };
        let mut sim = Simulator::new(42);
        let snd = sim.reserve_actor();
        let srv = sim.reserve_actor();
        let app = sim.reserve_actor();
        let up = sim.add_link(
            snd,
            srv,
            LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(10)),
        );
        let down = sim.add_link(
            srv,
            snd,
            LinkParams::new(Bandwidth::from_mbps(20.0), SimDuration::from_millis(10)),
        );
        let sender = ArSender::new(
            1,
            cfg.clone(),
            vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
        );
        let sstats = sender.stats();
        sim.install_actor(snd, sender);
        let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down)]);
        sim.install_actor(srv, RestartableServer::new(receiver));
        sim.install_actor(app, App { sender: snd, next_id: 0 });

        let spec = FaultSpec::new().edge_crash(
            srv,
            SimTime::from_secs(2),
            SimDuration::from_millis(100),
            false,
        );
        sim.add_actor(FaultInjector::new(spec.compile(42, SimTime::from_secs(4))));
        sim.run_until(SimTime::from_secs(4));

        // State survived: same epoch, so no resync — the gap is handled by
        // ordinary loss recovery.
        assert_eq!(sstats.borrow().session_resyncs, 0);
    }
}
