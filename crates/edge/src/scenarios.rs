//! The four distribution architectures of Fig. 5, as runnable simulations.
//!
//! Each scenario builds a MAR client streaming the Fig. 4 sub-streams over
//! the AR protocol with two paths ending at two different executors, per
//! the figure:
//!
//! * **5a** — multipath to *servers*: WiFi → university server, LTE →
//!   distant cloud;
//! * **5b** — home WiFi: D2D to the user's PC for latency-critical data,
//!   cloud for the rest;
//! * **5c** — LTE-Direct to a nearby smartphone helper + LTE to the cloud;
//! * **5d** — WiFi-Direct to a nearby smartphone helper + LTE to the cloud.
//!
//! The AR protocol's Aggregate policy steers latency-bound classes
//! (metadata, reference frames) to the lowest-RTT path — the nearby
//! executor — and spreads droppable video across both, reproducing the
//! figure's "offload latency-sensitive information to other devices" idea.

use crate::selection::ServerOption;
use marnet_app::compute::{ComputeModel, FrameWork};
use marnet_app::device::DeviceClass;
use marnet_app::pipeline::MarClient;
use marnet_app::strategy::OffloadStrategy;
use marnet_app::video::{FrameSource, VideoConfig};
use marnet_core::class::StreamKind;
use marnet_core::config::ArConfig;
use marnet_core::endpoint::{
    ArReceiver, ArReceiverStats, ArSender, ArSenderStats, Delivered, SenderPathConfig,
};
use marnet_core::multipath::{MultipathPolicy, PathRole};
use marnet_sim::engine::{Actor, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkParams};
use marnet_sim::rng::derive_rng;
use marnet_sim::stats::Histogram;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_telemetry::MetricsRegistry;
use marnet_transport::nic::TxPath;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The Fig. 5 architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistributionScenario {
    /// 5a: multipath, one server per path (university + cloud).
    MultipathMultiServer,
    /// 5b: home WiFi D2D to a PC + cloud.
    HomeWifiD2d,
    /// 5c: LTE-Direct D2D to a phone + LTE cloud.
    LteDirectD2d,
    /// 5d: WiFi-Direct D2D to a phone + LTE cloud.
    WifiDirectD2d,
}

impl DistributionScenario {
    /// All scenarios in figure order.
    pub const ALL: [DistributionScenario; 4] = [
        DistributionScenario::MultipathMultiServer,
        DistributionScenario::HomeWifiD2d,
        DistributionScenario::LteDirectD2d,
        DistributionScenario::WifiDirectD2d,
    ];
}

impl fmt::Display for DistributionScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DistributionScenario::MultipathMultiServer => "5a multipath multi-server",
            DistributionScenario::HomeWifiD2d => "5b home WiFi D2D + cloud",
            DistributionScenario::LteDirectD2d => "5c LTE-Direct D2D + cloud",
            DistributionScenario::WifiDirectD2d => "5d WiFi-Direct D2D + cloud",
        };
        f.write_str(s)
    }
}

/// Description of one path's far end.
#[derive(Debug, Clone)]
struct Endpoint {
    name: &'static str,
    role: PathRole,
    /// One-way latency of the access path.
    one_way: SimDuration,
    /// Path bandwidth (both directions, for simplicity).
    rate: Bandwidth,
    /// Executor compute for the latency-critical stage, GFLOPS.
    gflops: f64,
}

fn endpoints(scenario: DistributionScenario) -> [Endpoint; 2] {
    // RTTs anchored on Table II: local WiFi 8 ms, cloud-over-WiFi 36 ms,
    // university 72 ms, cloud-over-LTE 120 ms; D2D from the §IV-A profiles.
    match scenario {
        DistributionScenario::MultipathMultiServer => [
            Endpoint {
                name: "university",
                role: PathRole::Wifi,
                one_way: SimDuration::from_millis(5),
                rate: Bandwidth::from_mbps(25.0),
                gflops: 2_000.0,
            },
            Endpoint {
                name: "cloud",
                role: PathRole::Cellular,
                one_way: SimDuration::from_millis(60),
                rate: Bandwidth::from_mbps(8.0),
                gflops: 20_000.0,
            },
        ],
        DistributionScenario::HomeWifiD2d => [
            Endpoint {
                name: "home-pc",
                role: PathRole::DeviceToDevice,
                one_way: SimDuration::from_millis(2),
                rate: Bandwidth::from_mbps(80.0),
                gflops: 500.0,
            },
            Endpoint {
                name: "cloud",
                role: PathRole::Wifi,
                one_way: SimDuration::from_millis(18),
                rate: Bandwidth::from_mbps(20.0),
                gflops: 20_000.0,
            },
        ],
        DistributionScenario::LteDirectD2d => [
            Endpoint {
                name: "phone-helper",
                role: PathRole::DeviceToDevice,
                one_way: SimDuration::from_millis(6),
                rate: Bandwidth::from_mbps(100.0),
                gflops: 15.0,
            },
            Endpoint {
                name: "cloud",
                role: PathRole::Cellular,
                one_way: SimDuration::from_millis(60),
                rate: Bandwidth::from_mbps(8.0),
                gflops: 20_000.0,
            },
        ],
        DistributionScenario::WifiDirectD2d => [
            Endpoint {
                name: "phone-helper",
                role: PathRole::DeviceToDevice,
                one_way: SimDuration::from_millis(4),
                rate: Bandwidth::from_mbps(60.0),
                gflops: 15.0,
            },
            Endpoint {
                name: "cloud",
                role: PathRole::Cellular,
                one_way: SimDuration::from_millis(60),
                rate: Bandwidth::from_mbps(8.0),
                gflops: 20_000.0,
            },
        ],
    }
}

/// Observes deliveries at one executor and records the estimated full-loop
/// latency: transport latency + compute there + the return one-way.
struct ExecutorProbe {
    service: SimDuration,
    return_one_way: SimDuration,
    loop_latency_ms: Rc<RefCell<Histogram>>,
    critical_latency_ms: Rc<RefCell<Histogram>>,
}

impl Actor for ExecutorProbe {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if let Event::Message { msg, .. } = ev {
            if let Some(d) = msg.map_ref(|d: &Delivered| *d) {
                let transport = ctx.now().saturating_since(d.created);
                match d.kind {
                    StreamKind::VideoReference | StreamKind::VideoInter => {
                        let total = transport + self.service + self.return_one_way;
                        self.loop_latency_ms.borrow_mut().record(total.as_millis_f64());
                    }
                    StreamKind::Metadata => {
                        self.critical_latency_ms.borrow_mut().record(transport.as_millis_f64());
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Everything a Fig. 5 scenario run produces.
pub struct ScenarioOutcome {
    /// The scenario.
    pub scenario: DistributionScenario,
    /// Full-loop latency samples of vision frames (ms), both executors.
    pub loop_latency_ms: Histogram,
    /// Transport latency samples of critical metadata (ms).
    pub critical_latency_ms: Histogram,
    /// Sender statistics (cellular bytes, drops, ...).
    pub sender: Rc<RefCell<ArSenderStats>>,
    /// Per-executor receiver statistics, figure order.
    pub receivers: Vec<Rc<RefCell<ArReceiverStats>>>,
    /// Server options per path, for the §VI-E selection analysis.
    pub options: Vec<Vec<ServerOption>>,
}

impl fmt::Debug for ScenarioOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioOutcome").field("scenario", &self.scenario).finish()
    }
}

impl ScenarioOutcome {
    /// Share of vision-frame loops within the 75 ms budget.
    pub fn within_budget(&self) -> f64 {
        self.loop_latency_ms.fraction_at_most(75.0)
    }
}

/// Builds and runs one Fig. 5 scenario for `secs` simulated seconds.
pub fn run_scenario(scenario: DistributionScenario, seed: u64, secs: u64) -> ScenarioOutcome {
    run_scenario_inner(scenario, seed, secs, None)
}

/// Like [`run_scenario`], but additionally publishes per-executor load and
/// D2D offload metrics into `registry`:
///
/// * `edge.server.{name}.delivered_bytes` / `.fec_recovered` /
///   `.feedback_sent` — receiver-side counters per executor;
/// * `edge.server.{name}.load_bytes_per_sec` — mean offered load gauge;
/// * `edge.d2d.{name}.delivered_bytes` — bytes served by device-to-device
///   helpers (one-hop direct links);
/// * `edge.class.{kind}.*` — the sender's per-class usage counters;
/// * `edge.sender.cellular_bytes` — bytes steered onto cellular paths.
pub fn run_scenario_metrics(
    scenario: DistributionScenario,
    seed: u64,
    secs: u64,
    registry: &MetricsRegistry,
) -> ScenarioOutcome {
    run_scenario_inner(scenario, seed, secs, Some(registry))
}

fn run_scenario_inner(
    scenario: DistributionScenario,
    seed: u64,
    secs: u64,
    registry: Option<&MetricsRegistry>,
) -> ScenarioOutcome {
    let eps = endpoints(scenario);
    let mut sim = Simulator::new(seed);
    let snd = sim.reserve_actor();
    let client = sim.reserve_actor();

    let mut paths = Vec::new();
    let mut receivers = Vec::new();
    let mut rx_stats = Vec::new();
    let mut options: Vec<Vec<ServerOption>> = vec![Vec::new(), Vec::new()];
    let loop_hist = Rc::new(RefCell::new(Histogram::new()));
    let crit_hist = Rc::new(RefCell::new(Histogram::new()));
    let work = FrameWork::vision_pipeline();

    for (i, ep) in eps.iter().enumerate() {
        let rcv = sim.reserve_actor();
        let probe = sim.reserve_actor();
        let up = sim.add_link(snd, rcv, LinkParams::new(ep.rate, ep.one_way));
        let back = sim.add_link(rcv, snd, LinkParams::new(ep.rate, ep.one_way));
        paths.push(SenderPathConfig { role: ep.role, tx: TxPath::Link(up), link: Some(up) });

        // Latency-critical stage (extraction) runs at this executor.
        let service = SimDuration::from_secs_f64(work.extraction_gflop / ep.gflops);
        // Reverse paths vector must be indexable by path id; unused slots
        // point at this endpoint's own back link (never selected).
        let mut reverse = vec![TxPath::Link(back); eps.len()];
        reverse[i] = TxPath::Link(back);
        let receiver = ArReceiver::new(1, ArConfig::default().feedback_interval, reverse)
            .with_delivery_target(probe);
        rx_stats.push(receiver.stats());
        sim.install_actor(rcv, receiver);
        sim.install_actor(
            probe,
            ExecutorProbe {
                service,
                return_one_way: ep.one_way,
                loop_latency_ms: Rc::clone(&loop_hist),
                critical_latency_ms: Rc::clone(&crit_hist),
            },
        );
        receivers.push(rcv);

        options[i].push(ServerOption {
            name: ep.name.to_string(),
            rtt: ep.one_way * 2,
            compute_gflops: ep.gflops,
        });
    }

    let cfg = ArConfig { policy: MultipathPolicy::Aggregate, ..ArConfig::default() };
    let sender = ArSender::new(1, cfg, paths).with_qos_target(client);
    let sender_stats = sender.stats();
    sim.install_actor(snd, sender);

    let model = ComputeModel::new(30.0, work).with_deadline(SimDuration::from_millis(75));
    let video = FrameSource::new(VideoConfig::ar_minimal(), 0.05, derive_rng(seed, "fig5.video"));
    // The client is a smartphone in every scenario: in 5b-5d it stands in
    // for the glasses+companion pair (the glasses' own contribution is the
    // display; the measured loop is capture → executor → display).
    let device = DeviceClass::Smartphone;
    let mar = MarClient::new(
        snd,
        device.spec(),
        model,
        OffloadStrategy::FullOffload { frame_bytes: 0 },
        video,
    );
    sim.install_actor(client, mar);

    sim.run_until(SimTime::from_secs(secs));

    if let Some(reg) = registry {
        for (ep, st) in eps.iter().zip(&rx_stats) {
            let st = st.borrow();
            reg.counter(&format!("edge.server.{}.delivered_bytes", ep.name)).add(st.received_bytes);
            reg.counter(&format!("edge.server.{}.fec_recovered", ep.name)).add(st.fec_recovered);
            reg.counter(&format!("edge.server.{}.feedback_sent", ep.name)).add(st.feedback_sent);
            reg.gauge(&format!("edge.server.{}.load_bytes_per_sec", ep.name))
                .set(st.received_bytes as f64 / secs.max(1) as f64);
            if ep.role == PathRole::DeviceToDevice {
                reg.counter(&format!("edge.d2d.{}.delivered_bytes", ep.name))
                    .add(st.received_bytes);
            }
        }
        let s = sender_stats.borrow();
        s.publish_usage(reg, "edge.class");
        reg.counter("edge.sender.cellular_bytes").add(s.cellular_bytes);
    }

    let loop_latency_ms = loop_hist.borrow().clone();
    let critical_latency_ms = crit_hist.borrow().clone();
    ScenarioOutcome {
        scenario,
        loop_latency_ms,
        critical_latency_ms,
        sender: sender_stats,
        receivers: rx_stats,
        options,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_deliver_frames() {
        for scenario in DistributionScenario::ALL {
            let out = run_scenario(scenario, 5, 6);
            assert!(
                out.loop_latency_ms.count() > 50,
                "{scenario}: only {} loops",
                out.loop_latency_ms.count()
            );
            assert!(out.critical_latency_ms.count() > 50, "{scenario}");
        }
    }

    #[test]
    fn nearby_executors_cut_critical_latency() {
        // 5b (2 ms home PC) must beat 5a (5 ms university) on metadata
        // latency, and both must beat any cloud-only alternative (~60 ms).
        let mut a = run_scenario(DistributionScenario::MultipathMultiServer, 7, 6);
        let mut b = run_scenario(DistributionScenario::HomeWifiD2d, 7, 6);
        let ma = a.critical_latency_ms.median().unwrap();
        let mb = b.critical_latency_ms.median().unwrap();
        assert!(mb < ma, "home D2D {mb} ms vs university {ma} ms");
        assert!(ma < 30.0, "critical data stays on the fast path: {ma} ms");
    }

    #[test]
    fn multipath_keeps_latency_data_off_lte() {
        let out = run_scenario(DistributionScenario::MultipathMultiServer, 9, 6);
        let s = out.sender.borrow();
        let total: u64 = s.total_sent_bytes();
        assert!(total > 0);
        // Critical metadata goes to the WiFi/university path; cellular
        // carries only a share of the droppable bulk.
        assert!(
            (s.cellular_bytes as f64) < total as f64 * 0.6,
            "cellular {} of {total}",
            s.cellular_bytes
        );
    }

    #[test]
    fn weak_helper_still_serves_critical_data_fast() {
        // 5c/5d: the phone helper has little compute, but the latency-
        // critical class still sees single-digit transport latency.
        let mut out = run_scenario(DistributionScenario::WifiDirectD2d, 11, 6);
        let crit = out.critical_latency_ms.median().unwrap();
        assert!(crit < 20.0, "critical median {crit} ms");
    }

    #[test]
    fn metrics_variant_publishes_server_load() {
        let reg = MetricsRegistry::new();
        let out = run_scenario_metrics(DistributionScenario::HomeWifiD2d, 5, 6, &reg);
        let snap = reg.snapshot();
        let pc = snap.counters.get("edge.server.home-pc.delivered_bytes").copied().unwrap_or(0);
        assert!(pc > 0, "home PC saw no traffic");
        assert!(snap.counters.contains_key("edge.d2d.home-pc.delivered_bytes"));
        assert!(snap.gauges.contains_key("edge.server.cloud.load_bytes_per_sec"));
        // The registry mirrors what the plain outcome reports.
        assert_eq!(pc, out.receivers[0].borrow().received_bytes);
    }

    #[test]
    fn display_and_order() {
        assert_eq!(DistributionScenario::ALL.len(), 4);
        assert!(DistributionScenario::MultipathMultiServer.to_string().starts_with("5a"));
    }
}
