//! Edge-datacenter placement (§VI-F).
//!
//! The paper's abstract formulation: `min |C|` subject to
//! `P_offloading(R_m, R_c, f, p, d, o, b_mc, l_mc, x, y) < δ_a` for every
//! mobile user and application. Here a user is *covered* by a candidate
//! site when the end-to-end offload estimate — access latency plus
//! distance-proportional backhaul plus processing — fits the user's
//! deadline; the problem is then minimum set cover, solved greedily (the
//! classic `ln n` approximation), exactly for small instances, and bounded
//! from below for quality reporting.

use marnet_sim::time::SimDuration;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A point in the metro plane, kilometers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate, km.
    pub x: f64,
    /// North-south coordinate, km.
    pub y: f64,
}

impl Point {
    /// Euclidean distance in km.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A mobile user with an offload deadline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct User {
    /// Location.
    pub loc: Point,
    /// Fixed access latency (RTT to the metro network) of the user's
    /// current radio, e.g. ~8 ms on good WiFi, ~60 ms on LTE.
    pub access_rtt: SimDuration,
    /// The application's per-frame latency budget `δ_a`, minus compute.
    pub budget: SimDuration,
}

/// A candidate edge-datacenter site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Location.
    pub loc: Point,
    /// Processing latency added per offload request at this site.
    pub processing: SimDuration,
}

/// The latency model linking users to sites.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Backhaul RTT per km of user-site distance (fiber + routing detours;
    /// metro networks are far from geodesic light speed).
    pub rtt_per_km: SimDuration,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // ~0.3 ms RTT per km: metro aggregation with a few router hops.
        LatencyModel { rtt_per_km: SimDuration::from_micros(300) }
    }
}

/// A placement instance.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// The users to cover.
    pub users: Vec<User>,
    /// Candidate sites.
    pub sites: Vec<Site>,
    /// The latency model.
    pub model: LatencyModel,
}

/// A placement outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementSolution {
    /// Indices of the opened sites.
    pub open_sites: Vec<usize>,
    /// Users left uncoverable by *any* site (infeasible users).
    pub uncovered: Vec<usize>,
}

impl PlacementSolution {
    /// Number of datacenters opened.
    pub fn cost(&self) -> usize {
        self.open_sites.len()
    }
}

impl PlacementProblem {
    /// End-to-end offload latency estimate between a user and a site.
    pub fn latency(&self, user: &User, site: &Site) -> SimDuration {
        let dist = user.loc.distance(site.loc);
        user.access_rtt + self.model.rtt_per_km.mul_f64(dist) + site.processing
    }

    /// Whether `site` covers `user` (the §VI-F constraint).
    pub fn covers(&self, user: &User, site: &Site) -> bool {
        self.latency(user, site) < user.budget
    }

    /// Coverage bitmap: for each site, which users it can serve.
    fn coverage(&self) -> Vec<Vec<bool>> {
        self.sites.iter().map(|s| self.users.iter().map(|u| self.covers(u, s)).collect()).collect()
    }

    /// Users no site can serve (their deadline is infeasible anywhere).
    pub fn infeasible_users(&self) -> Vec<usize> {
        let cov = self.coverage();
        (0..self.users.len()).filter(|&u| !cov.iter().any(|c| c[u])).collect()
    }

    /// Greedy set cover: repeatedly open the site covering the most
    /// still-uncovered users. `ln n`-approximate, fast, the practical
    /// choice for real deployments.
    pub fn solve_greedy(&self) -> PlacementSolution {
        let cov = self.coverage();
        let infeasible = self.infeasible_users();
        let mut covered = vec![false; self.users.len()];
        for &u in &infeasible {
            covered[u] = true; // exclude from the objective
        }
        let mut open = Vec::new();
        while covered.iter().any(|&c| !c) {
            let (best, gain) = cov
                .iter()
                .enumerate()
                .filter(|(i, _)| !open.contains(i))
                .map(|(i, c)| {
                    let gain = c.iter().zip(&covered).filter(|(s, d)| **s && !**d).count();
                    (i, gain)
                })
                .max_by_key(|&(_, gain)| gain)
                .unwrap_or((usize::MAX, 0));
            if gain == 0 {
                break;
            }
            open.push(best);
            for (u, &c) in cov[best].iter().enumerate() {
                if c {
                    covered[u] = true;
                }
            }
        }
        open.sort_unstable();
        PlacementSolution { open_sites: open, uncovered: infeasible }
    }

    /// Exact branch-and-bound set cover. Exponential; intended for
    /// instances with at most ~25 sites (the E10 quality check).
    ///
    /// # Panics
    ///
    /// Panics if there are more than 30 candidate sites.
    pub fn solve_exact(&self) -> PlacementSolution {
        assert!(self.sites.len() <= 30, "exact solver limited to 30 sites");
        let cov = self.coverage();
        let infeasible = self.infeasible_users();
        let feasible_users: Vec<usize> =
            (0..self.users.len()).filter(|u| !infeasible.contains(u)).collect();

        // Represent coverage as bitmasks over feasible users (≤ usize
        // chunks; users may exceed 64, so use Vec<u64> masks).
        let words = feasible_users.len().div_ceil(64);
        let mask_of = |site: usize| -> Vec<u64> {
            let mut m = vec![0u64; words];
            for (bit, &u) in feasible_users.iter().enumerate() {
                if cov[site][u] {
                    m[bit / 64] |= 1 << (bit % 64);
                }
            }
            m
        };
        let site_masks: Vec<Vec<u64>> = (0..self.sites.len()).map(mask_of).collect();
        let full: Vec<u64> = {
            let mut m = vec![0u64; words];
            for bit in 0..feasible_users.len() {
                m[bit / 64] |= 1 << (bit % 64);
            }
            m
        };

        let greedy = self.solve_greedy();
        let mut best = greedy.open_sites.clone();
        let mut best_cost = best.len();

        // Order sites by descending coverage for better pruning.
        let mut order: Vec<usize> = (0..self.sites.len()).collect();
        order.sort_by_key(|&i| {
            std::cmp::Reverse(site_masks[i].iter().map(|w| w.count_ones()).sum::<u32>())
        });

        fn is_full(m: &[u64], full: &[u64]) -> bool {
            m.iter().zip(full).all(|(a, b)| a == b)
        }

        #[allow(clippy::too_many_arguments)]
        fn recurse(
            order: &[usize],
            pos: usize,
            chosen: &mut Vec<usize>,
            covered: Vec<u64>,
            site_masks: &[Vec<u64>],
            full: &[u64],
            best: &mut Vec<usize>,
            best_cost: &mut usize,
        ) {
            if is_full(&covered, full) {
                if chosen.len() < *best_cost {
                    *best_cost = chosen.len();
                    *best = chosen.clone();
                }
                return;
            }
            if chosen.len() + 1 >= *best_cost || pos >= order.len() {
                return;
            }
            // Bound: remaining uncovered / best remaining site coverage.
            let uncovered: u32 = covered.iter().zip(full).map(|(c, f)| (f & !c).count_ones()).sum();
            let best_gain = order[pos..]
                .iter()
                .map(|&s| {
                    site_masks[s]
                        .iter()
                        .zip(&covered)
                        .zip(full)
                        .map(|((m, c), f)| (m & f & !c).count_ones())
                        .sum::<u32>()
                })
                .max()
                .unwrap_or(0);
            if best_gain == 0 {
                return;
            }
            let need = uncovered.div_ceil(best_gain) as usize;
            if chosen.len() + need >= *best_cost {
                return;
            }

            let site = order[pos];
            // Branch 1: take the site.
            let mut with: Vec<u64> =
                covered.iter().zip(&site_masks[site]).map(|(c, m)| c | m).collect();
            for (w, f) in with.iter_mut().zip(full) {
                *w &= f;
            }
            chosen.push(site);
            recurse(order, pos + 1, chosen, with, site_masks, full, best, best_cost);
            chosen.pop();
            // Branch 2: skip it.
            recurse(order, pos + 1, chosen, covered, site_masks, full, best, best_cost);
        }

        recurse(
            &order,
            0,
            &mut Vec::new(),
            vec![0u64; words],
            &site_masks,
            &full,
            &mut best,
            &mut best_cost,
        );
        best.sort_unstable();
        PlacementSolution { open_sites: best, uncovered: infeasible }
    }

    /// A simple lower bound on the optimum: `ceil(feasible users / largest
    /// single-site coverage)`.
    pub fn lower_bound(&self) -> usize {
        let cov = self.coverage();
        let infeasible = self.infeasible_users().len();
        let feasible = self.users.len() - infeasible;
        if feasible == 0 {
            return 0;
        }
        let best_site = cov.iter().map(|c| c.iter().filter(|&&b| b).count()).max().unwrap_or(0);
        if best_site == 0 {
            return 0;
        }
        feasible.div_ceil(best_site)
    }

    /// Verifies that a solution covers every feasible user.
    pub fn validate(&self, sol: &PlacementSolution) -> bool {
        let cov = self.coverage();
        (0..self.users.len())
            .all(|u| sol.uncovered.contains(&u) || sol.open_sites.iter().any(|&s| cov[s][u]))
    }
}

/// Generates a synthetic metro instance: `n_users` clustered around
/// `hotspots` (plus a uniform background), `n_sites` on a jittered grid
/// over a `size_km` square.
pub fn synthetic_metro(
    n_users: usize,
    n_sites: usize,
    size_km: f64,
    budget: SimDuration,
    rng: &mut ChaCha12Rng,
) -> PlacementProblem {
    assert!(n_sites > 0, "need at least one candidate site");
    let hotspots = 5.max(n_users / 200);
    let centers: Vec<Point> = (0..hotspots)
        .map(|_| Point { x: rng.gen_range(0.0..size_km), y: rng.gen_range(0.0..size_km) })
        .collect();
    let users = (0..n_users)
        .map(|i| {
            let loc = if i % 4 == 0 {
                // Uniform background user.
                Point { x: rng.gen_range(0.0..size_km), y: rng.gen_range(0.0..size_km) }
            } else {
                let c = centers[rng.gen_range(0..centers.len())];
                Point {
                    x: (c.x + rng.gen_range(-2.0..2.0)).clamp(0.0, size_km),
                    y: (c.y + rng.gen_range(-2.0..2.0)).clamp(0.0, size_km),
                }
            };
            // Mix of radios: mostly WiFi-class access, some LTE.
            let access_ms = if rng.gen_bool(0.7) {
                rng.gen_range(6.0..20.0)
            } else {
                rng.gen_range(30.0..70.0)
            };
            User { loc, access_rtt: SimDuration::from_millis_f64(access_ms), budget }
        })
        .collect();
    let grid = (n_sites as f64).sqrt().ceil() as usize;
    let step = size_km / grid as f64;
    let mut sites = Vec::with_capacity(n_sites);
    'outer: for gy in 0..grid {
        for gx in 0..grid {
            if sites.len() >= n_sites {
                break 'outer;
            }
            sites.push(Site {
                loc: Point {
                    x: (gx as f64 + 0.5) * step + rng.gen_range(-0.2..0.2) * step,
                    y: (gy as f64 + 0.5) * step + rng.gen_range(-0.2..0.2) * step,
                },
                processing: SimDuration::from_millis(2),
            });
        }
    }
    PlacementProblem { users, sites, model: LatencyModel::default() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::rng::derive_rng;

    fn tiny_problem() -> PlacementProblem {
        // Two clusters of users, two well-placed sites and one useless one.
        // Budget 12 ms − 8 ms access − 2 ms processing leaves 2 ms of
        // backhaul ⇒ a ~6.6 km coverage radius: each cluster needs its own
        // site.
        let mk_user = |x: f64, y: f64| User {
            loc: Point { x, y },
            access_rtt: SimDuration::from_millis(8),
            budget: SimDuration::from_millis(12),
        };
        PlacementProblem {
            users: vec![mk_user(1.0, 1.0), mk_user(1.5, 1.2), mk_user(9.0, 9.0), mk_user(9.5, 8.8)],
            sites: vec![
                Site { loc: Point { x: 1.2, y: 1.1 }, processing: SimDuration::from_millis(2) },
                Site { loc: Point { x: 9.2, y: 9.0 }, processing: SimDuration::from_millis(2) },
                Site { loc: Point { x: 50.0, y: 50.0 }, processing: SimDuration::from_millis(2) },
            ],
            model: LatencyModel::default(),
        }
    }

    #[test]
    fn distances() {
        let a = Point { x: 0.0, y: 0.0 };
        let b = Point { x: 3.0, y: 4.0 };
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn greedy_covers_the_tiny_instance_with_two_sites() {
        let p = tiny_problem();
        let sol = p.solve_greedy();
        assert_eq!(sol.cost(), 2);
        assert_eq!(sol.open_sites, vec![0, 1]);
        assert!(sol.uncovered.is_empty());
        assert!(p.validate(&sol));
    }

    #[test]
    fn exact_matches_greedy_on_tiny_instance() {
        let p = tiny_problem();
        assert_eq!(p.solve_exact().cost(), p.solve_greedy().cost());
    }

    #[test]
    fn exact_beats_greedy_on_adversarial_instance() {
        // Classic set-cover trap: greedy takes the big middle site first
        // and then needs the two side sites anyway; optimal is the two
        // side sites. Built with three user groups A, B, M:
        //  site0 covers A∪M-part, site1 covers B∪M-part, site2 covers M
        //  (biggest). Construct geometrically: users on a line.
        let u = |x: f64| User {
            loc: Point { x, y: 0.0 },
            access_rtt: SimDuration::from_millis(1),
            budget: SimDuration::from_millis(4),
        };
        // Coverage radius: budget 4ms - 1ms access - 1ms proc = 2 ms of
        // backhaul at 0.3ms/km ⇒ ~6.6 km.
        let s = |x: f64| Site { loc: Point { x, y: 0.0 }, processing: SimDuration::from_millis(1) };
        let p = PlacementProblem {
            users: vec![u(0.0), u(2.0), u(4.0), u(10.0), u(12.0), u(14.0)],
            sites: vec![
                s(2.0),  // covers users at 0,2,4 (left three)
                s(12.0), // covers users at 10,12,14 (right three)
                s(7.0),  // covers users at 2,4,10,12 (the greedy trap: 4 users)
            ],
            model: LatencyModel::default(),
        };
        let greedy = p.solve_greedy();
        let exact = p.solve_exact();
        assert_eq!(exact.cost(), 2, "optimum is the two side sites");
        assert_eq!(greedy.cost(), 3, "greedy falls for the middle site");
        assert!(p.validate(&greedy) && p.validate(&exact));
    }

    #[test]
    fn infeasible_users_are_reported_not_fatal() {
        let mut p = tiny_problem();
        // A user on LTE with a budget below its own access RTT.
        p.users.push(User {
            loc: Point { x: 5.0, y: 5.0 },
            access_rtt: SimDuration::from_millis(60),
            budget: SimDuration::from_millis(12),
        });
        let sol = p.solve_greedy();
        assert_eq!(sol.uncovered, vec![4]);
        assert_eq!(sol.cost(), 2);
        assert!(p.validate(&sol));
    }

    #[test]
    fn lower_bound_is_a_lower_bound() {
        let mut rng = derive_rng(17, "placement");
        let p = synthetic_metro(120, 16, 20.0, SimDuration::from_millis(25), &mut rng);
        let lb = p.lower_bound();
        let exact = p.solve_exact();
        let greedy = p.solve_greedy();
        assert!(lb <= exact.cost(), "lb {lb} vs exact {}", exact.cost());
        assert!(exact.cost() <= greedy.cost());
        assert!(p.validate(&exact) && p.validate(&greedy));
    }

    #[test]
    fn tighter_budget_needs_more_datacenters() {
        let mut rng = derive_rng(18, "placement2");
        let p_loose = synthetic_metro(200, 25, 30.0, SimDuration::from_millis(60), &mut rng);
        let mut rng = derive_rng(18, "placement2");
        let p_tight = synthetic_metro(200, 25, 30.0, SimDuration::from_millis(15), &mut rng);
        let loose = p_loose.solve_greedy();
        let tight = p_tight.solve_greedy();
        // With the same geography, tighter deadlines shrink coverage radii,
        // so more sites must open (or users become infeasible).
        assert!(
            tight.cost() + tight.uncovered.len() > loose.cost(),
            "tight {}+{} vs loose {}",
            tight.cost(),
            tight.uncovered.len(),
            loose.cost()
        );
    }

    #[test]
    fn synthetic_instance_shape() {
        let mut rng = derive_rng(19, "placement3");
        let p = synthetic_metro(100, 9, 10.0, SimDuration::from_millis(30), &mut rng);
        assert_eq!(p.users.len(), 100);
        assert_eq!(p.sites.len(), 9);
        for s in &p.sites {
            assert!((0.0..=12.0).contains(&s.loc.x));
        }
    }
}
