//! Video bitrate arithmetic and frame generation (§III-B).
//!
//! The paper's bandwidth estimates: the human eye delivers ~6-10 Mb/s to
//! the brain from the foveal region; scaled to a smartphone camera's 60-70°
//! field of view that is ~9-12 Gb/s of raw information; an uncompressed 4K
//! 60 FPS 12 bpp stream is multi-Gb/s on the wire; lossy compression brings
//! it to 20-30 Mb/s; and ~10 Mb/s is the floor for a feed that still
//! supports advanced AR operations.

use marnet_sim::link::Bandwidth;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// The paper's minimal uplink bandwidth for AR-usable video, ~10 Mb/s.
pub const MIN_AR_VIDEO: Bandwidth = Bandwidth::from_bps(10_000_000);

/// Foveal data rate of the human eye (midpoint of the quoted 6-10 Mb/s).
pub const EYE_FOVEAL_RATE: Bandwidth = Bandwidth::from_bps(10_000_000);

/// Diameter of the accurate foveal region in degrees of visual field.
pub const FOVEA_DEG: f64 = 2.0;

/// The §III-B retina-scaling estimate: raw information rate of a camera
/// with the given field of view, extrapolated from the foveal rate by
/// solid-angle ratio `(fov/fovea)²`.
///
/// ```
/// use marnet_app::video::eye_scaled_rate;
/// // 60-70° FOV ⇒ the paper's "9 to 12 Gb/s" estimate.
/// assert!((eye_scaled_rate(60.0).as_bps() as f64 / 1e9 - 9.0).abs() < 0.1);
/// assert!((eye_scaled_rate(70.0).as_bps() as f64 / 1e9 - 12.25).abs() < 0.1);
/// ```
pub fn eye_scaled_rate(fov_deg: f64) -> Bandwidth {
    assert!(fov_deg > 0.0, "field of view must be positive");
    let ratio = (fov_deg / FOVEA_DEG).powi(2);
    Bandwidth::from_bps((EYE_FOVEAL_RATE.as_bps() as f64 * ratio) as u64)
}

/// A video feed configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frames per second.
    pub fps: f64,
    /// Bits per pixel before compression.
    pub bits_per_pixel: f64,
    /// Compression factor (raw/compressed); 1.0 = uncompressed.
    pub compression: f64,
    /// Group-of-pictures length: one reference frame per `gop` frames.
    pub gop: u32,
    /// Size ratio of a reference frame to an interframe.
    pub ref_to_inter_ratio: f64,
}

impl VideoConfig {
    /// The paper's 4K example: 3840×2160, 60 FPS, 12 bpp.
    pub fn uhd_4k_60() -> Self {
        VideoConfig {
            width: 3840,
            height: 2160,
            fps: 60.0,
            bits_per_pixel: 12.0,
            compression: 1.0,
            gop: 30,
            ref_to_inter_ratio: 6.0,
        }
    }

    /// A 720p 30 FPS feed compressed to ~10 Mb/s — the minimal AR-usable
    /// stream of §III-B.
    pub fn ar_minimal() -> Self {
        VideoConfig {
            width: 1280,
            height: 720,
            fps: 30.0,
            bits_per_pixel: 12.0,
            compression: 33.0,
            gop: 10,
            ref_to_inter_ratio: 5.0,
        }
    }

    /// Sets the compression factor, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    #[must_use]
    pub fn with_compression(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "compression factor must be ≥ 1");
        self.compression = factor;
        self
    }

    /// Raw (uncompressed) bitrate.
    pub fn raw_bitrate(&self) -> Bandwidth {
        let bps = f64::from(self.width) * f64::from(self.height) * self.bits_per_pixel * self.fps;
        Bandwidth::from_bps(bps as u64)
    }

    /// Bitrate after compression.
    pub fn bitrate(&self) -> Bandwidth {
        Bandwidth::from_bps((self.raw_bitrate().as_bps() as f64 / self.compression) as u64)
    }

    /// Mean frame size in bytes after compression.
    pub fn mean_frame_bytes(&self) -> u32 {
        (self.bitrate().as_bps() as f64 / self.fps / 8.0) as u32
    }

    /// Whether this feed fits the paper's minimal AR bandwidth budget.
    pub fn needs_at_least_min_ar(&self) -> bool {
        self.bitrate().as_bps() >= MIN_AR_VIDEO.as_bps()
    }

    /// Sizes of the reference frame and interframes such that the GoP
    /// averages to the configured bitrate: `(ref_bytes, inter_bytes)`.
    pub fn gop_frame_sizes(&self) -> (u32, u32) {
        let mean = f64::from(self.mean_frame_bytes());
        let g = f64::from(self.gop);
        let r = self.ref_to_inter_ratio;
        // mean*g = r*s + (g-1)*s  ⇒  s = mean*g / (r + g - 1)
        let inter = mean * g / (r + g - 1.0);
        ((inter * r) as u32, inter as u32)
    }
}

/// One generated video frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Frame index.
    pub index: u64,
    /// Whether it is a reference (key) frame.
    pub is_reference: bool,
    /// Encoded size in bytes.
    pub bytes: u32,
}

/// Deterministic GoP frame generator with optional size jitter.
#[derive(Debug)]
pub struct FrameSource {
    cfg: VideoConfig,
    index: u64,
    /// Relative size jitter (0.1 = ±10%), sampled uniformly.
    jitter: f64,
    rng: ChaCha12Rng,
    /// Quality scale applied to interframes (graceful degradation hook).
    quality: f64,
}

impl FrameSource {
    /// A generator over `cfg` with the given relative size jitter.
    pub fn new(cfg: VideoConfig, jitter: f64, rng: ChaCha12Rng) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0,1)");
        FrameSource { cfg, index: 0, jitter, rng, quality: 1.0 }
    }

    /// Current quality scale (1.0 = full quality).
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// Adjusts interframe quality (clamped to `[0.05, 1]`); the graceful
    /// degradation QoS hook.
    pub fn set_quality(&mut self, quality: f64) {
        self.quality = quality.clamp(0.05, 1.0);
    }

    /// Produces the next frame.
    pub fn next_frame(&mut self) -> Frame {
        let (ref_bytes, inter_bytes) = self.cfg.gop_frame_sizes();
        let is_reference = self.index.is_multiple_of(u64::from(self.cfg.gop));
        let base =
            if is_reference { f64::from(ref_bytes) } else { f64::from(inter_bytes) * self.quality };
        let factor = if self.jitter > 0.0 {
            1.0 + self.rng.gen_range(-self.jitter..=self.jitter)
        } else {
            1.0
        };
        let frame =
            Frame { index: self.index, is_reference, bytes: (base * factor).max(64.0) as u32 };
        self.index += 1;
        frame
    }

    /// The interval between frames.
    pub fn frame_interval(&self) -> marnet_sim::time::SimDuration {
        marnet_sim::time::SimDuration::from_secs_f64(1.0 / self.cfg.fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::rng::derive_rng;

    #[test]
    fn raw_4k_is_multi_gbps() {
        let v = VideoConfig::uhd_4k_60();
        let gbps = v.raw_bitrate().as_bps() as f64 / 1e9;
        // 3840×2160×12×60 = 5.97 Gb/s. (The paper prints "711 Mb/s" for
        // this stream, which matches bytes rather than bits — the
        // discrepancy is recorded in EXPERIMENTS.md E15.)
        assert!((gbps - 5.97).abs() < 0.02, "raw 4k = {gbps} Gb/s");
    }

    #[test]
    fn compressed_4k_hits_the_quoted_20_30_mbps() {
        // Lossy compression around 200-300x brings 4K to 20-30 Mb/s (§III-B).
        let v = VideoConfig::uhd_4k_60().with_compression(240.0);
        let mbps = v.bitrate().as_mbps();
        assert!((20.0..31.0).contains(&mbps), "{mbps} Mb/s");
    }

    #[test]
    fn minimal_ar_feed_is_about_10_mbps() {
        let v = VideoConfig::ar_minimal();
        let mbps = v.bitrate().as_mbps();
        assert!((9.0..11.0).contains(&mbps), "{mbps} Mb/s");
        assert!(v.needs_at_least_min_ar());
    }

    #[test]
    fn retina_estimate_matches_paper_range() {
        let low = eye_scaled_rate(60.0).as_bps() as f64 / 1e9;
        let high = eye_scaled_rate(70.0).as_bps() as f64 / 1e9;
        assert!(low >= 8.9 && high <= 12.5, "{low}..{high} Gb/s");
    }

    #[test]
    fn gop_sizes_average_to_bitrate() {
        let v = VideoConfig::ar_minimal();
        let (r, i) = v.gop_frame_sizes();
        assert!(r > i);
        let gop_bytes = u64::from(r) + u64::from(i) * u64::from(v.gop - 1);
        let mean = gop_bytes as f64 / f64::from(v.gop);
        let expected = f64::from(v.mean_frame_bytes());
        assert!((mean - expected).abs() / expected < 0.01, "mean {mean} vs {expected}");
    }

    #[test]
    fn frame_source_produces_gop_pattern() {
        let v = VideoConfig::ar_minimal();
        let mut src = FrameSource::new(v, 0.0, derive_rng(1, "video"));
        let frames: Vec<Frame> = (0..20).map(|_| src.next_frame()).collect();
        assert!(frames[0].is_reference);
        assert!(frames[10].is_reference);
        assert!(!frames[1].is_reference && !frames[9].is_reference);
        assert!(frames[0].bytes > frames[1].bytes * 3);
        assert_eq!(src.frame_interval().as_millis_f64().round(), 33.0);
    }

    #[test]
    fn quality_scales_interframes_only() {
        let v = VideoConfig::ar_minimal();
        let mut src = FrameSource::new(v, 0.0, derive_rng(1, "video2"));
        let ref1 = src.next_frame();
        let inter_full = src.next_frame();
        src.set_quality(0.5);
        let inter_half = src.next_frame();
        assert!((f64::from(inter_half.bytes) / f64::from(inter_full.bytes) - 0.5).abs() < 0.02);
        // Next GoP's reference frame is unscaled.
        for _ in 0..7 {
            src.next_frame();
        }
        let ref2 = src.next_frame();
        assert!(ref2.is_reference);
        assert_eq!(ref1.bytes, ref2.bytes);
    }

    #[test]
    fn quality_clamps() {
        let v = VideoConfig::ar_minimal();
        let mut src = FrameSource::new(v, 0.0, derive_rng(1, "video3"));
        src.set_quality(3.0);
        assert_eq!(src.quality(), 1.0);
        src.set_quality(-1.0);
        assert_eq!(src.quality(), 0.05);
    }

    #[test]
    fn jitter_varies_sizes() {
        let v = VideoConfig::ar_minimal();
        let mut src = FrameSource::new(v, 0.2, derive_rng(1, "video4"));
        let sizes: Vec<u32> = (0..10)
            .map(|_| src.next_frame())
            .filter(|f| !f.is_reference)
            .map(|f| f.bytes)
            .collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max > min, "jitter must vary sizes: {sizes:?}");
    }
}
