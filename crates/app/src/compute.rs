//! The execution-time models of §III-B (Eqs. 1-3).
//!
//! The paper formalises when a MAR application `a` with frame rate `f(a)`
//! and per-frame processing requirement `p(a)` is viable:
//!
//! * `P_local(R_m, f, p) < δ_a` — pure local execution;
//! * `P_local+externalDB(R_m, f, p, d, o, b_mc, l_mc, x) < δ_a` — local
//!   compute, remote object database, with `x` the locally cached share;
//! * `P_offloading(R_m, R_c, f, p, d, o, b_mc, l_mc, x, y) < δ_a` —
//!   computation split between device and cloud, `x` the local share of
//!   the computation and `y` whether data and compute share a surrogate.
//!
//! `δ_a` defaults to one frame interval (`1/f`) — the paper's "minimum
//! frame generation rate" reading — optionally tightened to the 75 ms
//! interactive budget.

use crate::device::DeviceSpec;
use marnet_sim::link::Bandwidth;
use marnet_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-frame processing requirement `p(a)`, decomposed by pipeline stage.
///
/// The stage split is what offloading strategies cut at: CloudRidAR runs
/// extraction locally and matching remotely; Glimpse runs tracking locally.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameWork {
    /// Feature extraction cost in GFLOP per frame.
    pub extraction_gflop: f64,
    /// Feature matching / recognition cost in GFLOP per frame.
    pub matching_gflop: f64,
    /// Object tracking cost in GFLOP per frame (cheap, local in Glimpse).
    pub tracking_gflop: f64,
    /// Pose estimation + rendering preparation in GFLOP per frame.
    pub rendering_gflop: f64,
}

impl FrameWork {
    /// A vision-based MAR workload calibrated so a 2017 smartphone
    /// (~15 GFLOPS) cannot run it at 30 FPS but a server can — the paper's
    /// premise that "vision-based applications are almost impossible to run
    /// on wearables, and very challenging on smartphones".
    pub fn vision_pipeline() -> Self {
        FrameWork {
            extraction_gflop: 0.40,
            matching_gflop: 0.90,
            tracking_gflop: 0.05,
            rendering_gflop: 0.15,
        }
    }

    /// Total GFLOP per frame.
    pub fn total_gflop(&self) -> f64 {
        self.extraction_gflop + self.matching_gflop + self.tracking_gflop + self.rendering_gflop
    }
}

/// Database access pattern: `d(a)` requests per frame of `o(a)`-byte
/// virtual objects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DbAccess {
    /// Requests per frame, `d(a)`.
    pub requests_per_frame: f64,
    /// Virtual-object size in bytes, `o(a)`.
    pub object_bytes: u64,
}

impl DbAccess {
    /// A browser-style workload: a couple of object lookups per frame.
    pub fn browser() -> Self {
        DbAccess { requests_per_frame: 2.0, object_bytes: 50_000 }
    }
}

/// Network parameters of the device↔cloud link `n_mc`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetParams {
    /// Uplink bandwidth `b_mc` (device → cloud).
    pub uplink: Bandwidth,
    /// Downlink bandwidth (cloud → device).
    pub downlink: Bandwidth,
    /// Round-trip latency `l_mc`.
    pub rtt: SimDuration,
}

/// What an execution-model evaluation concluded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionEstimate {
    /// Estimated per-frame completion time.
    pub per_frame: SimDuration,
    /// The deadline `δ_a` it was checked against.
    pub deadline: SimDuration,
}

impl ExecutionEstimate {
    /// Eq. 1-3's verdict: `P(...) < δ_a`.
    pub fn feasible(&self) -> bool {
        self.per_frame < self.deadline
    }

    /// Headroom ratio (`deadline / per_frame`); > 1 means feasible.
    pub fn headroom(&self) -> f64 {
        self.deadline.as_secs_f64() / self.per_frame.as_secs_f64().max(1e-12)
    }
}

/// Evaluates the paper's three execution models for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeModel {
    /// Frame generation rate `f(a)` in frames per second.
    pub fps: f64,
    /// Per-frame processing requirement `p(a)`.
    pub work: FrameWork,
    /// Database access pattern, if the application uses a remote DB.
    pub db: Option<DbAccess>,
    /// Deadline `δ_a`; defaults to one frame interval.
    pub deadline: SimDuration,
}

impl ComputeModel {
    /// A model with `δ_a = 1/f` (sustained frame-rate reading of Eq. 1).
    pub fn new(fps: f64, work: FrameWork) -> Self {
        assert!(fps > 0.0, "frame rate must be positive");
        ComputeModel { fps, work, db: None, deadline: SimDuration::from_secs_f64(1.0 / fps) }
    }

    /// Attaches a database access pattern, builder style.
    #[must_use]
    pub fn with_db(mut self, db: DbAccess) -> Self {
        self.db = Some(db);
        self
    }

    /// Overrides the deadline (e.g. the 75 ms interactive budget),
    /// builder style.
    #[must_use]
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = deadline;
        self
    }

    fn compute_time(gflop: f64, gflops: f64) -> SimDuration {
        SimDuration::from_secs_f64(gflop / gflops.max(1e-9))
    }

    /// `P_local`: everything on the device.
    pub fn p_local(&self, device: &DeviceSpec) -> ExecutionEstimate {
        let per_frame = Self::compute_time(self.work.total_gflop(), device.compute_gflops);
        ExecutionEstimate { per_frame, deadline: self.deadline }
    }

    /// `P_local+externalDB`: local compute, remote object database; `x` is
    /// the fraction of objects served from the local cache (Eq. 2's `x`).
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside `[0, 1]` or no DB pattern is configured.
    pub fn p_local_external_db(
        &self,
        device: &DeviceSpec,
        net: &NetParams,
        x_cached: f64,
    ) -> ExecutionEstimate {
        assert!((0.0..=1.0).contains(&x_cached), "cache share out of range");
        let db = self.db.expect("DB access pattern required for P_local+externalDB");
        let mut per_frame = Self::compute_time(self.work.total_gflop(), device.compute_gflops);
        let misses = db.requests_per_frame * (1.0 - x_cached);
        if misses > 0.0 {
            let fetch_bits = db.object_bytes as f64 * 8.0;
            let transfer =
                SimDuration::from_secs_f64(fetch_bits / net.downlink.as_bps().max(1) as f64);
            per_frame += (net.rtt + transfer).mul_f64(misses);
        }
        ExecutionEstimate { per_frame, deadline: self.deadline }
    }

    /// `P_offloading`: computation split between device and cloud.
    ///
    /// `x_local` is the fraction of the per-frame computation kept on the
    /// device; `uplink_bytes`/`downlink_bytes` are the per-frame payloads
    /// the chosen strategy moves; `y_colocated` is Eq. 3's `y`: when data
    /// and computation live on different surrogates, each DB miss pays an
    /// extra inter-server round trip.
    ///
    /// # Panics
    ///
    /// Panics if `x_local` is outside `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn p_offloading(
        &self,
        device: &DeviceSpec,
        cloud: &DeviceSpec,
        net: &NetParams,
        x_local: f64,
        uplink_bytes: u64,
        downlink_bytes: u64,
        y_colocated: bool,
        x_cached: f64,
    ) -> ExecutionEstimate {
        assert!((0.0..=1.0).contains(&x_local), "local share out of range");
        let total = self.work.total_gflop();
        let local = Self::compute_time(total * x_local, device.compute_gflops);
        let remote = Self::compute_time(total * (1.0 - x_local), cloud.compute_gflops);
        let up = SimDuration::from_secs_f64(
            uplink_bytes as f64 * 8.0 / net.uplink.as_bps().max(1) as f64,
        );
        let down = SimDuration::from_secs_f64(
            downlink_bytes as f64 * 8.0 / net.downlink.as_bps().max(1) as f64,
        );
        let mut per_frame = local + remote + up + down + net.rtt;
        if let Some(db) = self.db {
            let misses = db.requests_per_frame * (1.0 - x_cached.clamp(0.0, 1.0));
            if misses > 0.0 && !y_colocated {
                // Data on a different surrogate: inter-server RTT per miss
                // (we charge half the access RTT as a datacenter-to-
                // datacenter round trip).
                per_frame += net.rtt.mul_f64(0.5 * misses);
            }
        }
        ExecutionEstimate { per_frame, deadline: self.deadline }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;

    fn net(up_mbps: f64, down_mbps: f64, rtt_ms: u64) -> NetParams {
        NetParams {
            uplink: Bandwidth::from_mbps(up_mbps),
            downlink: Bandwidth::from_mbps(down_mbps),
            rtt: SimDuration::from_millis(rtt_ms),
        }
    }

    #[test]
    fn vision_pipeline_infeasible_on_wearables_feasible_on_cloud() {
        // The paper's premise (§III-B): vision workloads are impossible on
        // wearables, challenging on smartphones, fine on servers.
        let model = ComputeModel::new(30.0, FrameWork::vision_pipeline());
        let glasses = model.p_local(&DeviceClass::SmartGlasses.spec());
        assert!(!glasses.feasible(), "glasses must fail: {:?}", glasses);
        let phone = model.p_local(&DeviceClass::Smartphone.spec());
        assert!(!phone.feasible(), "a 2017 phone must fail 30 FPS vision");
        let desktop = model.p_local(&DeviceClass::Desktop.spec());
        assert!(desktop.feasible());
        let cloud = model.p_local(&DeviceClass::Cloud.spec());
        assert!(cloud.feasible());
        assert!(cloud.headroom() > desktop.headroom());
    }

    #[test]
    fn tracking_only_runs_on_phone() {
        // Glimpse's insight: tracking alone is cheap enough for the device.
        let tracking_only = FrameWork {
            extraction_gflop: 0.0,
            matching_gflop: 0.0,
            tracking_gflop: 0.05,
            rendering_gflop: 0.15,
        };
        let model = ComputeModel::new(30.0, tracking_only);
        assert!(model.p_local(&DeviceClass::Smartphone.spec()).feasible());
    }

    #[test]
    fn external_db_cost_scales_with_cache_misses() {
        let model =
            ComputeModel::new(30.0, FrameWork::vision_pipeline()).with_db(DbAccess::browser());
        let phone = DeviceClass::Smartphone.spec();
        let n = net(8.0, 20.0, 40);
        let all_cached = model.p_local_external_db(&phone, &n, 1.0);
        let none_cached = model.p_local_external_db(&phone, &n, 0.0);
        assert!(none_cached.per_frame > all_cached.per_frame);
        // Fully cached equals pure local.
        assert_eq!(all_cached.per_frame, model.p_local(&phone).per_frame);
        // Two misses/frame × (40 ms + 20 ms transfer) dominates.
        assert!(none_cached.per_frame > SimDuration::from_millis(100));
    }

    #[test]
    fn offloading_beats_local_when_network_is_good() {
        let model = ComputeModel::new(30.0, FrameWork::vision_pipeline())
            .with_deadline(SimDuration::from_millis(75));
        let phone = DeviceClass::Smartphone.spec();
        let cloud = DeviceClass::Cloud.spec();
        // Good WiFi to a nearby edge: 16 ms RTT (between Table II's
        // local-server and cloud-over-WiFi scenarios).
        let good = net(20.0, 20.0, 16);
        // CloudRidAR split: extraction local (x = extraction share),
        // features uplinked (~40 KB), pose downlinked (~1 KB).
        let x = model.work.extraction_gflop / model.work.total_gflop();
        let est = model.p_offloading(&phone, &cloud, &good, x, 16_000, 1_000, true, 0.0);
        assert!(est.feasible(), "offload must fit 75 ms: {:?}", est.per_frame);
        assert!(est.per_frame < model.p_local(&phone).per_frame);
    }

    #[test]
    fn offloading_fails_on_lte_rtt() {
        // Table II scenario 4: LTE at 120 ms RTT — "definitely not
        // suitable for AR applications".
        let model = ComputeModel::new(30.0, FrameWork::vision_pipeline())
            .with_deadline(SimDuration::from_millis(75));
        let phone = DeviceClass::Smartphone.spec();
        let cloud = DeviceClass::Cloud.spec();
        let lte = net(5.0, 12.0, 120);
        let est = model.p_offloading(&phone, &cloud, &lte, 0.0, 25_000, 1_000, true, 0.0);
        assert!(!est.feasible());
    }

    #[test]
    fn split_surrogates_cost_more() {
        let model =
            ComputeModel::new(30.0, FrameWork::vision_pipeline()).with_db(DbAccess::browser());
        let phone = DeviceClass::Smartphone.spec();
        let cloud = DeviceClass::Cloud.spec();
        let n = net(10.0, 20.0, 40);
        let colocated = model.p_offloading(&phone, &cloud, &n, 0.0, 25_000, 1_000, true, 0.0);
        let split = model.p_offloading(&phone, &cloud, &n, 0.0, 25_000, 1_000, false, 0.0);
        assert!(split.per_frame > colocated.per_frame, "Eq. 3: y matters");
    }

    #[test]
    fn headroom_math() {
        let e = ExecutionEstimate {
            per_frame: SimDuration::from_millis(25),
            deadline: SimDuration::from_millis(75),
        };
        assert!(e.feasible());
        assert!((e.headroom() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_defaults_to_frame_interval() {
        let m = ComputeModel::new(25.0, FrameWork::vision_pipeline());
        assert_eq!(m.deadline, SimDuration::from_millis(40));
    }

    #[test]
    #[should_panic]
    fn db_model_requires_db_pattern() {
        let m = ComputeModel::new(30.0, FrameWork::vision_pipeline());
        let _ = m.p_local_external_db(&DeviceClass::Smartphone.spec(), &net(10.0, 10.0, 10), 0.5);
    }
}
