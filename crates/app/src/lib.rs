//! # marnet-app — MAR application, device and computation models
//!
//! §II-III of the paper characterise MAR applications: their input
//! (camera/sensor) streams, their computation cost, the devices they run on
//! (Table I), and the three execution models the paper formalises as
//! inequalities — local execution `P_local`, local with a remote object
//! database `P_local+externalDB`, and offloaded `P_offloading` (Eqs. 1-3).
//!
//! The computer-vision pipelines the paper builds on (CloudRidAR's feature
//! extraction, Glimpse's tracking) are replaced by a *computation-cost
//! model* — cycle counts, feature counts and payload sizes — which is what
//! the paper's own analysis uses; the offload-decision logic exercised is
//! identical (see DESIGN.md, substitutions).
//!
//! * [`device`] — the Table I device catalog;
//! * [`video`] — bitrate arithmetic of §III-B (retina estimate, raw/
//!   compressed 4K, the ~10 Mb/s floor) and a GoP frame-size generator;
//! * [`compute`] — the `P_*` execution-time models;
//! * [`strategy`] — offloading strategies (local, full-frame offload,
//!   CloudRidAR-style feature offload, Glimpse-style tracking);
//! * [`db`] — object database with LRU cache and prefetching (the `x`
//!   split of Eq. 2);
//! * [`qoe`] — quality-of-experience accounting (75 ms budget, 30 ms
//!   jitter, motion-to-photon);
//! * [`pipeline`] — simulator actors tying a MAR client and an offload
//!   server to the AR transport protocol end to end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compute;
pub mod db;
pub mod device;
pub mod pipeline;
pub mod qoe;
pub mod strategy;
pub mod video;

pub use compute::{ComputeModel, ExecutionEstimate};
pub use device::{DeviceClass, DeviceSpec};
pub use strategy::OffloadStrategy;
pub use video::VideoConfig;
