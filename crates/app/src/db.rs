//! Virtual-object database with LRU cache and prefetching (§III-B).
//!
//! "In practice, in order to compute homography, a large database of real
//! world images are collected and used for feature matching. In such cases,
//! the MAR application cannot store all possible images […] due to limited
//! storage on the device." — the `x` of Eq. 2 is the share of requests the
//! device can serve locally; "caching and prefetching mechanisms can reduce
//! the network overhead".

use marnet_sim::time::SimDuration;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::{BTreeMap, VecDeque};

/// Identifier of a virtual object / reference image.
pub type ObjectId = u64;

/// An LRU cache over virtual objects, capacity in bytes.
#[derive(Debug)]
pub struct LruCache {
    capacity_bytes: u64,
    used_bytes: u64,
    /// Most recent at the back.
    order: VecDeque<ObjectId>,
    sizes: BTreeMap<ObjectId, u64>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// A cache of the given byte capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        LruCache {
            capacity_bytes,
            used_bytes: 0,
            order: VecDeque::new(),
            sizes: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Objects currently cached.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio (`1.0` before any access).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn touch(&mut self, id: ObjectId) {
        if let Some(pos) = self.order.iter().position(|&o| o == id) {
            self.order.remove(pos);
            self.order.push_back(id);
        }
    }

    /// Looks an object up, updating recency and hit/miss counters.
    pub fn access(&mut self, id: ObjectId) -> bool {
        if self.sizes.contains_key(&id) {
            self.hits += 1;
            self.touch(id);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts an object (after fetching it), evicting LRU entries to fit.
    /// Objects larger than the whole cache are not cached.
    pub fn insert(&mut self, id: ObjectId, bytes: u64) {
        if bytes > self.capacity_bytes {
            return;
        }
        if self.sizes.contains_key(&id) {
            self.touch(id);
            return;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            if let Some(sz) = self.sizes.remove(&victim) {
                self.used_bytes -= sz;
            }
        }
        self.sizes.insert(id, bytes);
        self.used_bytes += bytes;
        self.order.push_back(id);
    }

    /// Inserts without counting as an access (prefetching).
    pub fn prefetch(&mut self, id: ObjectId, bytes: u64) {
        self.insert(id, bytes);
    }

    /// Drops every cached object, modelling state loss when the edge server
    /// hosting the cache crashes. Hit/miss counters survive so experiments
    /// can measure the re-warm cost across a restart.
    pub fn clear(&mut self) {
        self.order.clear();
        self.sizes.clear();
        self.used_bytes = 0;
    }
}

/// A Zipf-ish request generator over `n` objects: requests concentrate on
/// popular objects, which is what makes caching effective for MAR browsers
/// (users look at the same landmarks).
#[derive(Debug)]
pub struct RequestGenerator {
    n: u64,
    skew: f64,
    rng: ChaCha12Rng,
    /// Spatial locality: probability the next request repeats the last.
    repeat_p: f64,
    last: Option<ObjectId>,
}

impl RequestGenerator {
    /// A generator over `n` objects with Zipf exponent `skew` and repeat
    /// probability `repeat_p`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or parameters are out of range.
    pub fn new(n: u64, skew: f64, repeat_p: f64, rng: ChaCha12Rng) -> Self {
        assert!(n > 0, "need at least one object");
        assert!(skew >= 0.0, "skew must be non-negative");
        assert!((0.0..=1.0).contains(&repeat_p), "repeat probability out of range");
        RequestGenerator { n, skew, rng, repeat_p, last: None }
    }

    /// Draws the next requested object.
    pub fn next_request(&mut self) -> ObjectId {
        if let Some(last) = self.last {
            if self.rng.gen_bool(self.repeat_p) {
                return last;
            }
        }
        // Inverse-power sampling: cheap approximate Zipf.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let id = if self.skew <= 0.0 {
            self.rng.gen_range(0..self.n)
        } else {
            let x = u.powf(1.0 / (1.0 - (-self.skew).exp()).max(0.2));
            ((x * self.n as f64) as u64).min(self.n - 1)
        };
        self.last = Some(id);
        id
    }
}

/// Estimated per-frame DB overhead given a hit ratio — the network side of
/// Eq. 2 with `x` = measured hit ratio.
pub fn db_overhead_per_frame(
    requests_per_frame: f64,
    hit_ratio: f64,
    object_bytes: u64,
    downlink_bps: u64,
    rtt: SimDuration,
) -> SimDuration {
    let misses = requests_per_frame * (1.0 - hit_ratio.clamp(0.0, 1.0));
    if misses <= 0.0 {
        return SimDuration::ZERO;
    }
    let transfer =
        SimDuration::from_secs_f64(object_bytes as f64 * 8.0 / downlink_bps.max(1) as f64);
    (rtt + transfer).mul_f64(misses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::rng::derive_rng;

    #[test]
    fn lru_evicts_oldest() {
        let mut c = LruCache::new(300);
        c.insert(1, 100);
        c.insert(2, 100);
        c.insert(3, 100);
        assert_eq!(c.len(), 3);
        // Touch 1 so 2 becomes LRU.
        assert!(c.access(1));
        c.insert(4, 100);
        assert!(!c.access(2), "2 must have been evicted");
        assert!(c.access(1) && c.access(3) && c.access(4));
        assert_eq!(c.used_bytes(), 300);
    }

    #[test]
    fn oversized_objects_are_not_cached() {
        let mut c = LruCache::new(100);
        c.insert(1, 500);
        assert!(c.is_empty());
        assert!(!c.access(1));
    }

    #[test]
    fn hit_ratio_accounting() {
        let mut c = LruCache::new(1000);
        assert_eq!(c.hit_ratio(), 1.0);
        assert!(!c.access(7));
        c.insert(7, 10);
        assert!(c.access(7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_ratio(), 0.5);
    }

    #[test]
    fn duplicate_insert_keeps_bytes_consistent() {
        let mut c = LruCache::new(1000);
        c.insert(1, 100);
        c.insert(1, 100);
        assert_eq!(c.used_bytes(), 100);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_loses_state_but_keeps_counters() {
        let mut c = LruCache::new(1000);
        c.insert(1, 100);
        assert!(c.access(1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        // The crash forgets the objects, not the experiment's accounting.
        assert_eq!(c.hits(), 1);
        assert!(!c.access(1), "cleared object must be a miss");
        // Reusable after the restart.
        c.insert(2, 100);
        assert!(c.access(2));
    }

    #[test]
    fn skewed_requests_cache_well() {
        // With Zipf-ish traffic a small cache achieves a high hit ratio —
        // the paper's justification for caching/prefetching.
        let mut rng = derive_rng(5, "db");
        let mut gen = RequestGenerator::new(10_000, 1.2, 0.3, rng.clone());
        let mut cache = LruCache::new(200 * 50_000); // 200 objects of 50 KB
        for _ in 0..20_000 {
            let id = gen.next_request();
            if !cache.access(id) {
                cache.insert(id, 50_000);
            }
        }
        let skewed_ratio = cache.hit_ratio();
        assert!(skewed_ratio > 0.25, "skewed hit ratio {skewed_ratio}");

        // Uniform traffic over the same catalog caches poorly.
        let mut gen = RequestGenerator::new(10_000, 0.0, 0.0, {
            use rand_chacha::rand_core::SeedableRng;
            let _ = &mut rng;
            ChaCha12Rng::seed_from_u64(99)
        });
        let mut cache = LruCache::new(200 * 50_000);
        for _ in 0..20_000 {
            let id = gen.next_request();
            if !cache.access(id) {
                cache.insert(id, 50_000);
            }
        }
        assert!(
            cache.hit_ratio() < skewed_ratio,
            "uniform {} must cache worse than skewed {skewed_ratio}",
            cache.hit_ratio()
        );
    }

    #[test]
    fn repeat_probability_creates_locality() {
        let mut gen = RequestGenerator::new(1000, 0.0, 0.9, derive_rng(6, "db2"));
        let mut repeats = 0;
        let mut last = gen.next_request();
        for _ in 0..1000 {
            let id = gen.next_request();
            if id == last {
                repeats += 1;
            }
            last = id;
        }
        assert!(repeats > 800, "repeats {repeats}");
    }

    #[test]
    fn overhead_formula() {
        let o = db_overhead_per_frame(2.0, 0.5, 50_000, 10_000_000, SimDuration::from_millis(40));
        // 1 miss/frame × (40 ms + 40 ms transfer) = 80 ms.
        assert_eq!(o, SimDuration::from_millis(80));
        assert_eq!(
            db_overhead_per_frame(2.0, 1.0, 50_000, 10_000_000, SimDuration::from_millis(40)),
            SimDuration::ZERO
        );
    }
}
