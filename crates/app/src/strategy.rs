//! Offloading strategies (§III-B).
//!
//! The paper names two concrete offloading platforms as design points:
//! *CloudRidAR* extracts features locally and uplinks only the features;
//! *Glimpse* tracks objects locally and uplinks only selected frames. This
//! module models those alongside the trivial strategies (everything local,
//! full-frame offload) so the E9 sweep can map which wins where.

use crate::compute::{ComputeModel, ExecutionEstimate, FrameWork, NetParams};
use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a frame's work and bytes are split between device and server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OffloadStrategy {
    /// Everything on the device; nothing uplinked.
    LocalOnly,
    /// The compressed camera frame is uplinked; all vision work remote.
    FullOffload {
        /// Compressed frame size in bytes.
        frame_bytes: u32,
    },
    /// CloudRidAR: extraction local, features uplinked, matching remote.
    FeatureOffload {
        /// Number of features extracted per frame.
        features: u32,
        /// Bytes per feature descriptor (e.g. 64 for SURF, 128 for SIFT).
        descriptor_bytes: u32,
    },
    /// Glimpse: tracking local every frame, a full frame uplinked every
    /// `offload_every` frames to re-detect.
    TrackingOffload {
        /// Compressed frame size in bytes for the offloaded frames.
        frame_bytes: u32,
        /// Period (in frames) between offloaded frames.
        offload_every: u32,
    },
}

impl OffloadStrategy {
    /// The canonical CloudRidAR configuration: ~500 binary descriptors of
    /// 32 B (ORB-class), chosen so the feature payload undercuts a
    /// compressed frame — the point of offloading features.
    pub fn cloudridar() -> Self {
        OffloadStrategy::FeatureOffload { features: 500, descriptor_bytes: 32 }
    }

    /// The canonical Glimpse configuration (25 KB frames, 1 in 10 frames).
    pub fn glimpse() -> Self {
        OffloadStrategy::TrackingOffload { frame_bytes: 25_000, offload_every: 10 }
    }

    /// Mean uplink payload per frame in bytes.
    pub fn uplink_bytes_per_frame(&self) -> u64 {
        match *self {
            OffloadStrategy::LocalOnly => 0,
            OffloadStrategy::FullOffload { frame_bytes } => u64::from(frame_bytes),
            OffloadStrategy::FeatureOffload { features, descriptor_bytes } => {
                u64::from(features) * u64::from(descriptor_bytes)
            }
            OffloadStrategy::TrackingOffload { frame_bytes, offload_every } => {
                u64::from(frame_bytes) / u64::from(offload_every.max(1))
            }
        }
    }

    /// Mean downlink payload per frame (pose/labels), a small constant for
    /// every offloading strategy — the §IV-D "reversed asymmetry" point.
    pub fn downlink_bytes_per_frame(&self) -> u64 {
        match self {
            OffloadStrategy::LocalOnly => 0,
            _ => 1_000,
        }
    }

    /// Fraction of the per-frame computation kept on the device (`x`).
    pub fn local_share(&self, work: &FrameWork) -> f64 {
        let total = work.total_gflop();
        if total <= 0.0 {
            return 1.0;
        }
        match *self {
            OffloadStrategy::LocalOnly => 1.0,
            // Rendering is always local; everything else ships out.
            OffloadStrategy::FullOffload { .. } => work.rendering_gflop / total,
            OffloadStrategy::FeatureOffload { .. } => {
                (work.extraction_gflop + work.rendering_gflop) / total
            }
            OffloadStrategy::TrackingOffload { offload_every, .. } => {
                // Tracking + rendering every frame; extraction+matching only
                // on the server, amortised — locally we keep the light part.
                let _ = offload_every;
                (work.tracking_gflop + work.rendering_gflop) / total
            }
        }
    }

    /// Evaluates this strategy end to end via [`ComputeModel::p_offloading`]
    /// (or `p_local` for [`OffloadStrategy::LocalOnly`]).
    pub fn evaluate(
        &self,
        model: &ComputeModel,
        device: &DeviceSpec,
        cloud: &DeviceSpec,
        net: &NetParams,
    ) -> ExecutionEstimate {
        match self {
            OffloadStrategy::LocalOnly => model.p_local(device),
            _ => model.p_offloading(
                device,
                cloud,
                net,
                self.local_share(&model.work),
                self.uplink_bytes_per_frame(),
                self.downlink_bytes_per_frame(),
                true,
                0.0,
            ),
        }
    }

    /// All four canonical strategies, for sweeps.
    pub fn canonical() -> Vec<OffloadStrategy> {
        vec![
            OffloadStrategy::LocalOnly,
            OffloadStrategy::FullOffload { frame_bytes: 25_000 },
            OffloadStrategy::cloudridar(),
            OffloadStrategy::glimpse(),
        ]
    }
}

impl fmt::Display for OffloadStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OffloadStrategy::LocalOnly => write!(f, "local-only"),
            OffloadStrategy::FullOffload { .. } => write!(f, "full-offload"),
            OffloadStrategy::FeatureOffload { .. } => write!(f, "feature-offload (CloudRidAR)"),
            OffloadStrategy::TrackingOffload { .. } => write!(f, "tracking-offload (Glimpse)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;
    use marnet_sim::link::Bandwidth;
    use marnet_sim::time::SimDuration;

    fn net(up: f64, down: f64, rtt_ms: u64) -> NetParams {
        NetParams {
            uplink: Bandwidth::from_mbps(up),
            downlink: Bandwidth::from_mbps(down),
            rtt: SimDuration::from_millis(rtt_ms),
        }
    }

    #[test]
    fn uplink_bytes_ordering() {
        // Full frames > features > tracked subset.
        let full = OffloadStrategy::FullOffload { frame_bytes: 25_000 };
        let feat = OffloadStrategy::cloudridar();
        let glimpse = OffloadStrategy::glimpse();
        assert!(full.uplink_bytes_per_frame() > glimpse.uplink_bytes_per_frame());
        assert!(feat.uplink_bytes_per_frame() < full.uplink_bytes_per_frame());
        assert_eq!(OffloadStrategy::LocalOnly.uplink_bytes_per_frame(), 0);
        assert_eq!(feat.uplink_bytes_per_frame(), 500 * 32);
        assert_eq!(glimpse.uplink_bytes_per_frame(), 2_500);
    }

    #[test]
    fn local_share_reflects_the_cut_point() {
        let work = FrameWork::vision_pipeline();
        let local = OffloadStrategy::LocalOnly.local_share(&work);
        let full = OffloadStrategy::FullOffload { frame_bytes: 25_000 }.local_share(&work);
        let feat = OffloadStrategy::cloudridar().local_share(&work);
        assert_eq!(local, 1.0);
        assert!(full < feat && feat < local);
        assert!(full > 0.0, "rendering always stays local");
    }

    #[test]
    fn offload_strategies_make_phone_feasible_on_good_edge() {
        let model = ComputeModel::new(30.0, FrameWork::vision_pipeline())
            .with_deadline(SimDuration::from_millis(75));
        let phone = DeviceClass::Smartphone.spec();
        let cloud = DeviceClass::Cloud.spec();
        let edge = net(20.0, 20.0, 16);
        assert!(!OffloadStrategy::LocalOnly.evaluate(&model, &phone, &cloud, &edge).feasible());
        for s in [
            OffloadStrategy::FullOffload { frame_bytes: 25_000 },
            OffloadStrategy::cloudridar(),
            OffloadStrategy::glimpse(),
        ] {
            let est = s.evaluate(&model, &phone, &cloud, &edge);
            assert!(est.feasible(), "{s} should fit on a 16 ms edge: {:?}", est.per_frame);
        }
    }

    #[test]
    fn full_offload_dies_first_on_a_thin_uplink() {
        // On a 1 Mb/s uplink, 25 KB/frame (6 Mb/s) is hopeless while the
        // CloudRidAR/Glimpse reductions survive — the reason those systems
        // reduce uplink volume.
        let model = ComputeModel::new(30.0, FrameWork::vision_pipeline())
            .with_deadline(SimDuration::from_millis(75));
        let phone = DeviceClass::Smartphone.spec();
        let cloud = DeviceClass::Cloud.spec();
        let thin = net(1.0, 8.0, 16);
        let full = OffloadStrategy::FullOffload { frame_bytes: 25_000 }
            .evaluate(&model, &phone, &cloud, &thin);
        assert!(!full.feasible());
        let glimpse = OffloadStrategy::glimpse().evaluate(&model, &phone, &cloud, &thin);
        assert!(glimpse.feasible(), "Glimpse survives: {:?}", glimpse.per_frame);
    }

    #[test]
    fn canonical_list_and_display() {
        let c = OffloadStrategy::canonical();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0].to_string(), "local-only");
        assert!(c[2].to_string().contains("CloudRidAR"));
        assert!(c[3].to_string().contains("Glimpse"));
    }
}
