//! Quality-of-experience accounting (§III-B, §IV).
//!
//! The paper's budgets: 75 ms maximum tolerable round-trip latency for a
//! seamless experience (with 20 ms the Abrash target and ~7 ms the "holy
//! grail"), and at 30 FPS a maximum jitter of 30 ms "in order not to skip a
//! frame". [`QoeRecorder`] turns per-frame latencies into those metrics.

use marnet_sim::stats::{Histogram, OnlineStats};
use marnet_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The paper's maximum tolerable round-trip latency for seamless MAR.
pub const MAX_LATENCY: SimDuration = SimDuration::from_millis(75);

/// The Abrash AR/VR latency target.
pub const ABRASH_TARGET: SimDuration = SimDuration::from_millis(20);

/// The "holy grail" latency.
pub const HOLY_GRAIL: SimDuration = SimDuration::from_millis(7);

/// Maximum frame-to-frame jitter at 30 FPS before a frame is skipped.
pub const MAX_JITTER_30FPS: SimDuration = SimDuration::from_millis(30);

/// Aggregated QoE verdict for a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeReport {
    /// Frames whose motion-to-photon latency was recorded.
    pub frames: u64,
    /// Mean motion-to-photon latency, ms.
    pub mean_latency_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_latency_ms: f64,
    /// Share of frames within the 75 ms budget.
    pub within_budget: f64,
    /// Share of frames within the 20 ms Abrash target.
    pub within_abrash: f64,
    /// Share of inter-delivery gaps exceeding the 30 ms jitter bound
    /// (skipped frames at 30 FPS).
    pub skip_ratio: f64,
    /// Frames the pipeline never delivered (lost/abandoned), as a share of
    /// frames offered.
    pub loss_ratio: f64,
}

impl QoeReport {
    /// A coarse 0-100 experience score: budget compliance penalised by
    /// skips and losses.
    pub fn score(&self) -> f64 {
        (self.within_budget * 100.0 - self.skip_ratio * 30.0 - self.loss_ratio * 50.0)
            .clamp(0.0, 100.0)
    }
}

/// Streaming recorder of per-frame delivery events.
#[derive(Debug)]
pub struct QoeRecorder {
    latency: Histogram,
    stats: OnlineStats,
    within_budget: u64,
    within_abrash: u64,
    last_delivery: Option<SimTime>,
    gaps_over: u64,
    gaps_total: u64,
    offered: u64,
    delivered: u64,
}

impl QoeRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        QoeRecorder {
            latency: Histogram::new(),
            stats: OnlineStats::new(),
            within_budget: 0,
            within_abrash: 0,
            last_delivery: None,
            gaps_over: 0,
            gaps_total: 0,
            offered: 0,
            delivered: 0,
        }
    }

    /// Notes that a frame was generated (offered to the pipeline).
    pub fn frame_offered(&mut self) {
        self.offered += 1;
    }

    /// Records a frame delivery: `created` when the camera produced it,
    /// `now` when its result reached the display path.
    pub fn frame_delivered(&mut self, created: SimTime, now: SimTime) {
        let latency = now.saturating_since(created);
        self.delivered += 1;
        self.latency.record(latency.as_millis_f64());
        self.stats.record(latency.as_millis_f64());
        if latency <= MAX_LATENCY {
            self.within_budget += 1;
        }
        if latency <= ABRASH_TARGET {
            self.within_abrash += 1;
        }
        if let Some(prev) = self.last_delivery {
            self.gaps_total += 1;
            if now.saturating_since(prev) > MAX_JITTER_30FPS + SimDuration::from_millis(33) {
                self.gaps_over += 1;
            }
        }
        self.last_delivery = Some(now);
    }

    /// Frames delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Produces the aggregated report.
    pub fn report(&mut self) -> QoeReport {
        let frames = self.delivered;
        let ratio = |n: u64| if frames == 0 { 0.0 } else { n as f64 / frames as f64 };
        QoeReport {
            frames,
            mean_latency_ms: self.stats.mean(),
            p95_latency_ms: self.latency.p95().unwrap_or(0.0),
            within_budget: ratio(self.within_budget),
            within_abrash: ratio(self.within_abrash),
            skip_ratio: if self.gaps_total == 0 {
                0.0
            } else {
                self.gaps_over as f64 / self.gaps_total as f64
            },
            loss_ratio: if self.offered == 0 {
                0.0
            } else {
                1.0 - (self.delivered as f64 / self.offered as f64).min(1.0)
            },
        }
    }
}

impl Default for QoeRecorder {
    fn default() -> Self {
        QoeRecorder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_stream_scores_high() {
        let mut q = QoeRecorder::new();
        for i in 0..100u64 {
            q.frame_offered();
            let t = SimTime::from_millis(i * 33);
            q.frame_delivered(t, t + SimDuration::from_millis(15));
        }
        let r = q.report();
        assert_eq!(r.frames, 100);
        assert_eq!(r.within_budget, 1.0);
        assert_eq!(r.within_abrash, 1.0);
        assert_eq!(r.skip_ratio, 0.0);
        assert_eq!(r.loss_ratio, 0.0);
        assert!(r.score() > 99.0);
        assert!((r.mean_latency_ms - 15.0).abs() < 1e-9);
    }

    #[test]
    fn late_frames_fail_the_budget() {
        let mut q = QoeRecorder::new();
        for i in 0..10u64 {
            q.frame_offered();
            let t = SimTime::from_millis(i * 33);
            let latency = if i % 2 == 0 { 50 } else { 120 };
            q.frame_delivered(t, t + SimDuration::from_millis(latency));
        }
        let r = q.report();
        assert!((r.within_budget - 0.5).abs() < 1e-9);
        assert_eq!(r.within_abrash, 0.0);
    }

    #[test]
    fn gaps_count_as_skips() {
        let mut q = QoeRecorder::new();
        q.frame_offered();
        q.frame_delivered(SimTime::ZERO, SimTime::from_millis(10));
        // Next delivery 200 ms later: a skip at 30 FPS.
        q.frame_offered();
        q.frame_delivered(SimTime::from_millis(167), SimTime::from_millis(210));
        let r = q.report();
        assert!(r.skip_ratio > 0.99);
    }

    #[test]
    fn losses_tracked_against_offered() {
        let mut q = QoeRecorder::new();
        for _ in 0..10 {
            q.frame_offered();
        }
        for i in 0..7u64 {
            q.frame_delivered(SimTime::from_millis(i * 33), SimTime::from_millis(i * 33 + 20));
        }
        let r = q.report();
        assert!((r.loss_ratio - 0.3).abs() < 1e-9);
        assert!(r.score() < 90.0);
    }

    #[test]
    fn empty_recorder_reports_zeroes() {
        let mut q = QoeRecorder::new();
        let r = q.report();
        assert_eq!(r.frames, 0);
        assert_eq!(r.within_budget, 0.0);
        assert_eq!(r.score(), 0.0);
    }
}
