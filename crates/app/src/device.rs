//! The Table I device catalog.
//!
//! Table I of the paper lists the devices of a MAR ecosystem — smart
//! glasses, smartphone, tablet, laptop, desktop, cloud — with their
//! computing power, storage, battery life, network access and portability.
//! Here each row carries a numeric compute capacity so the `P_*` models of
//! [`crate::compute`] can be evaluated against it.

use marnet_radio::profiles::RadioTechnology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Qualitative levels used in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// None at all.
    None,
    /// Very low.
    VeryLow,
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
    /// Effectively unlimited.
    Unlimited,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::None => "none",
            Level::VeryLow => "very low",
            Level::Low => "low",
            Level::Medium => "medium",
            Level::High => "high",
            Level::Unlimited => "unlimited",
        };
        f.write_str(s)
    }
}

/// The device classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Smart glasses (Google Glass / MadGaze class).
    SmartGlasses,
    /// Smartphone.
    Smartphone,
    /// Tablet PC.
    Tablet,
    /// Laptop PC.
    Laptop,
    /// Desktop PC.
    Desktop,
    /// Cloud computing (a VM with "almost infinite" resources).
    Cloud,
}

impl DeviceClass {
    /// All classes in Table I order.
    pub const ALL: [DeviceClass; 6] = [
        DeviceClass::SmartGlasses,
        DeviceClass::Smartphone,
        DeviceClass::Tablet,
        DeviceClass::Laptop,
        DeviceClass::Desktop,
        DeviceClass::Cloud,
    ];

    /// The catalog entry for this class.
    pub fn spec(self) -> DeviceSpec {
        spec(self)
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceClass::SmartGlasses => "smart glasses",
            DeviceClass::Smartphone => "smartphone",
            DeviceClass::Tablet => "tablet PC",
            DeviceClass::Laptop => "laptop PC",
            DeviceClass::Desktop => "desktop PC",
            DeviceClass::Cloud => "cloud computing",
        };
        f.write_str(s)
    }
}

/// One row of Table I, augmented with a numeric compute capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// The device class.
    pub class: DeviceClass,
    /// Qualitative computing power (the Table I column).
    pub computing_power: Level,
    /// Numeric compute capacity in GFLOPS (our calibration of the column,
    /// circa-2017 hardware).
    pub compute_gflops: f64,
    /// Storage range in GB (`None` upper bound = unlimited).
    pub storage_gb: (f64, Option<f64>),
    /// Battery life in hours (`None` = mains powered).
    pub battery_hours: Option<(f64, f64)>,
    /// Network interfaces available.
    pub network: Vec<RadioTechnology>,
    /// Whether the device also has a wired interface.
    pub wired: bool,
    /// Portability.
    pub portability: Level,
}

impl DeviceSpec {
    /// Whether the device can host ubiquitous MAR at all (portable and
    /// wireless). Table I's point: the most portable devices are the least
    /// powerful.
    pub fn is_mobile(&self) -> bool {
        self.portability >= Level::Medium && !self.network.is_empty()
    }
}

fn spec(class: DeviceClass) -> DeviceSpec {
    match class {
        DeviceClass::SmartGlasses => DeviceSpec {
            class,
            computing_power: Level::VeryLow,
            compute_gflops: 2.0,
            storage_gb: (4.0, Some(16.0)),
            battery_hours: Some((2.0, 3.0)),
            network: vec![RadioTechnology::WifiDirect], // Bluetooth-class tether
            wired: false,
            portability: Level::High,
        },
        DeviceClass::Smartphone => DeviceSpec {
            class,
            computing_power: Level::Low,
            compute_gflops: 15.0,
            storage_gb: (16.0, Some(128.0)),
            battery_hours: Some((6.0, 8.0)),
            network: vec![
                RadioTechnology::HspaPlus,
                RadioTechnology::Lte,
                RadioTechnology::Wifi80211n,
                RadioTechnology::Wifi80211ac,
                RadioTechnology::WifiDirect,
            ],
            wired: false,
            portability: Level::High,
        },
        DeviceClass::Tablet => DeviceSpec {
            class,
            computing_power: Level::Medium,
            compute_gflops: 30.0,
            storage_gb: (32.0, Some(256.0)),
            battery_hours: Some((6.0, 8.0)),
            network: vec![
                RadioTechnology::Lte,
                RadioTechnology::Wifi80211n,
                RadioTechnology::Wifi80211ac,
            ],
            wired: false,
            portability: Level::Medium,
        },
        DeviceClass::Laptop => DeviceSpec {
            class,
            computing_power: Level::Medium, // "medium - high"
            compute_gflops: 100.0,
            storage_gb: (128.0, Some(2000.0)),
            battery_hours: Some((2.0, 8.0)),
            network: vec![
                RadioTechnology::Lte,
                RadioTechnology::Wifi80211n,
                RadioTechnology::Wifi80211ac,
            ],
            wired: true,
            portability: Level::Medium,
        },
        DeviceClass::Desktop => DeviceSpec {
            class,
            computing_power: Level::High,
            compute_gflops: 500.0,
            storage_gb: (512.0, Some(2000.0)),
            battery_hours: None,
            network: vec![RadioTechnology::Wifi80211ac],
            wired: true,
            portability: Level::None,
        },
        DeviceClass::Cloud => DeviceSpec {
            class,
            computing_power: Level::Unlimited,
            compute_gflops: 20_000.0,
            storage_gb: (100_000.0, None),
            battery_hours: None,
            network: vec![],
            wired: true,
            portability: Level::None,
        },
    }
}

/// The full catalog in Table I order.
pub fn catalog() -> Vec<DeviceSpec> {
    DeviceClass::ALL.iter().map(|&c| spec(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_six_rows_in_order() {
        let c = catalog();
        assert_eq!(c.len(), 6);
        assert_eq!(c[0].class, DeviceClass::SmartGlasses);
        assert_eq!(c[5].class, DeviceClass::Cloud);
    }

    #[test]
    fn compute_power_rises_with_class() {
        let c = catalog();
        for w in c.windows(2) {
            assert!(w[0].compute_gflops < w[1].compute_gflops, "{} vs {}", w[0].class, w[1].class);
        }
    }

    #[test]
    fn portability_and_power_are_inversely_related() {
        // Table I's core message: the most portable devices are the least
        // powerful. Every device more portable than another has less
        // compute.
        let c = catalog();
        for a in &c {
            for b in &c {
                if a.portability > b.portability {
                    assert!(
                        a.compute_gflops < b.compute_gflops,
                        "{} more portable yet stronger than {}",
                        a.class,
                        b.class
                    );
                }
            }
        }
    }

    #[test]
    fn mobility_flags() {
        assert!(DeviceClass::SmartGlasses.spec().is_mobile());
        assert!(DeviceClass::Smartphone.spec().is_mobile());
        assert!(!DeviceClass::Desktop.spec().is_mobile());
        assert!(!DeviceClass::Cloud.spec().is_mobile());
    }

    #[test]
    fn battery_only_on_portables() {
        for s in catalog() {
            assert_eq!(s.battery_hours.is_some(), s.portability >= Level::Medium, "{}", s.class);
        }
    }

    #[test]
    fn smartphone_has_cellular_glasses_do_not() {
        let phone = DeviceClass::Smartphone.spec();
        assert!(phone.network.contains(&RadioTechnology::Lte));
        let glasses = DeviceClass::SmartGlasses.spec();
        assert!(!glasses.network.contains(&RadioTechnology::Lte));
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceClass::SmartGlasses.to_string(), "smart glasses");
        assert_eq!(Level::VeryLow.to_string(), "very low");
    }
}
