//! End-to-end MAR offloading pipeline over the AR transport protocol.
//!
//! Ties together: a camera ([`crate::video::FrameSource`]) and sensors on a
//! device ([`crate::device::DeviceSpec`]), an offloading strategy
//! ([`crate::strategy::OffloadStrategy`]) that decides what is uplinked, the
//! AR protocol endpoints of `marnet-core`, a server that models remote
//! computation time, and a [`crate::qoe::QoeRecorder`] measuring
//! motion-to-photon latency — the complete loop whose latency budget the
//! paper analyses.

use crate::compute::{ComputeModel, FrameWork};
use crate::device::DeviceSpec;
use crate::qoe::QoeRecorder;
use crate::strategy::OffloadStrategy;
use crate::video::FrameSource;
use marnet_core::class::{Priority, StreamKind, TrafficClass};
use marnet_core::degradation::QosSignal;
use marnet_core::endpoint::{Delivered, Submit};
use marnet_core::message::ArMessage;
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx};
use marnet_sim::packet::Payload;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_telemetry::{component, TraceEvent};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

const TAG_FRAME: u64 = 1;
const TAG_LOCAL_DONE: u64 = 2;

/// The MAR client: camera + sensors + strategy, feeding an `ArSender`.
///
/// Reacts to [`QosSignal`]s by scaling video quality (graceful
/// degradation), and records QoE when results return.
pub struct MarClient {
    sender: ActorId,
    device: DeviceSpec,
    model: ComputeModel,
    strategy: OffloadStrategy,
    video: FrameSource,
    next_msg_id: u64,
    frame_index: u64,
    deadline: SimDuration,
    qoe: Rc<RefCell<QoeRecorder>>,
    /// Completion times of purely-local frames, tracked via timers.
    local_pending: VecDeque<SimTime>,
    /// Quality changes applied (for inspection).
    quality_changes: u64,
}

impl std::fmt::Debug for MarClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarClient")
            .field("strategy", &self.strategy)
            .field("frame", &self.frame_index)
            .finish()
    }
}

impl MarClient {
    /// Creates a client submitting to `sender` (an `ArSender` actor).
    pub fn new(
        sender: ActorId,
        device: DeviceSpec,
        model: ComputeModel,
        strategy: OffloadStrategy,
        video: FrameSource,
    ) -> Self {
        MarClient {
            sender,
            device,
            model,
            strategy,
            video,
            next_msg_id: 0,
            frame_index: 0,
            deadline: SimDuration::from_millis(75),
            qoe: Rc::new(RefCell::new(QoeRecorder::new())),
            local_pending: VecDeque::new(),
            quality_changes: 0,
        }
    }

    /// Shared handle to the QoE recorder.
    pub fn qoe(&self) -> Rc<RefCell<QoeRecorder>> {
        Rc::clone(&self.qoe)
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_msg_id;
        self.next_msg_id += 1;
        id
    }

    fn submit(&mut self, ctx: &mut SimCtx, msg: ArMessage) {
        ctx.send_message(self.sender, Payload::new(Submit(msg)));
    }

    fn local_stage_delay(&self) -> SimDuration {
        let x = self.strategy.local_share(&self.model.work);
        SimDuration::from_secs_f64(
            self.model.work.total_gflop() * x / self.device.compute_gflops.max(1e-9),
        )
    }

    fn on_frame(&mut self, ctx: &mut SimCtx) {
        let now = ctx.now();
        let deadline = now + self.deadline;
        self.qoe.borrow_mut().frame_offered();
        let frame = self.video.next_frame();
        self.frame_index += 1;
        let local_delay = self.local_stage_delay();

        // What (if anything) goes on the uplink for this frame?
        let uplink: Option<ArMessage> = match self.strategy {
            OffloadStrategy::LocalOnly => None,
            OffloadStrategy::FullOffload { .. } => {
                let kind = if frame.is_reference {
                    StreamKind::VideoReference
                } else {
                    StreamKind::VideoInter
                };
                Some(
                    ArMessage::new(self.alloc_id(), kind, frame.bytes, now).with_deadline(deadline),
                )
            }
            OffloadStrategy::FeatureOffload { features, descriptor_bytes } => {
                let bytes = features * descriptor_bytes;
                Some(
                    ArMessage::new(self.alloc_id(), StreamKind::VideoInter, bytes, now)
                        .with_class(TrafficClass::FullBestEffort)
                        .with_priority(Priority::DropNotDelay(0))
                        .with_deadline(deadline),
                )
            }
            OffloadStrategy::TrackingOffload { frame_bytes, offload_every } => {
                if self.frame_index % u64::from(offload_every.max(1)) == 1 {
                    Some(
                        ArMessage::new(
                            self.alloc_id(),
                            StreamKind::VideoReference,
                            frame_bytes,
                            now,
                        )
                        .with_deadline(deadline),
                    )
                } else {
                    // Tracking handles this frame locally.
                    None
                }
            }
        };

        match uplink {
            Some(msg) => {
                let t = now.as_nanos();
                let comp = component::actor(ctx.self_id().index());
                let (kind, mid, bytes) = (msg.kind as u8, msg.id, u64::from(msg.size));
                ctx.trace_with(|| TraceEvent::offload_dispatch(t, comp, kind, mid, bytes));
                // The message leaves after the local pipeline stage.
                ctx.send_message_in(self.sender, local_delay, Payload::new(Submit(msg)));
            }
            None => {
                // Purely local frame: completes after the full local work.
                let full_local = SimDuration::from_secs_f64(
                    match self.strategy {
                        OffloadStrategy::LocalOnly => self.model.work.total_gflop(),
                        // Tracking path: only the light local stages run.
                        _ => self.model.work.tracking_gflop + self.model.work.rendering_gflop,
                    } / self.device.compute_gflops.max(1e-9),
                );
                self.local_pending.push_back(now);
                ctx.schedule_timer(full_local, TAG_LOCAL_DONE);
            }
        }

        // Sensors and connection metadata accompany every frame (Fig. 4's
        // four sub-streams).
        let sensors =
            ArMessage::new(self.alloc_id(), StreamKind::Sensor, 200, now).with_deadline(deadline);
        self.submit(ctx, sensors);
        let meta = ArMessage::new(self.alloc_id(), StreamKind::Metadata, 100, now);
        self.submit(ctx, meta);

        ctx.schedule_timer(self.video.frame_interval(), TAG_FRAME);
    }

    /// Quality adjustments performed so far (QoS reactions).
    pub fn quality_changes(&self) -> u64 {
        self.quality_changes
    }
}

impl Actor for MarClient {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                ctx.schedule_timer(SimDuration::ZERO, TAG_FRAME);
            }
            Event::Timer { tag: TAG_FRAME } => self.on_frame(ctx),
            Event::Timer { tag: TAG_LOCAL_DONE } => {
                if let Some(created) = self.local_pending.pop_front() {
                    self.qoe.borrow_mut().frame_delivered(created, ctx.now());
                }
            }
            Event::Message { msg, .. } => {
                if let Some(sig) = msg.map_ref(|s: &QosSignal| *s) {
                    match sig {
                        QosSignal::Degrade { severity, .. } => {
                            let q = self.video.quality();
                            self.video.set_quality(q * if severity >= 2 { 0.5 } else { 0.7 });
                            self.quality_changes += 1;
                        }
                        QosSignal::Headroom { .. } => {
                            let q = self.video.quality();
                            if q < 1.0 {
                                self.video.set_quality((q * 1.1).min(1.0));
                                self.quality_changes += 1;
                            }
                        }
                    }
                } else if let Some(d) = msg.map_ref(|d: &Delivered| *d) {
                    // A result came back from the server.
                    if d.kind == StreamKind::Result {
                        self.qoe
                            .borrow_mut()
                            .frame_delivered(d.origin.unwrap_or(d.created), ctx.now());
                    }
                }
            }
            _ => {}
        }
    }
}

/// The offload server: receives frames/features, models remote computation
/// time, and returns results through its own `ArSender`.
pub struct MarServer {
    result_sender: ActorId,
    cloud: DeviceSpec,
    work: FrameWork,
    strategy: OffloadStrategy,
    next_msg_id: u64,
    /// Frames queued for (serialized) processing: (ready_at_busy_time, created).
    busy_until: SimTime,
    pending: VecDeque<(u64, SimTime)>,
    processed: u64,
}

impl std::fmt::Debug for MarServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarServer").field("processed", &self.processed).finish()
    }
}

const TAG_DONE: u64 = 11;

impl MarServer {
    /// Creates a server answering through `result_sender` (an `ArSender`
    /// on the downlink).
    pub fn new(
        result_sender: ActorId,
        cloud: DeviceSpec,
        work: FrameWork,
        strategy: OffloadStrategy,
    ) -> Self {
        MarServer {
            result_sender,
            cloud,
            work,
            strategy,
            next_msg_id: 1_000_000,
            busy_until: SimTime::ZERO,
            pending: VecDeque::new(),
            processed: 0,
        }
    }

    /// Frames processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    fn service_time(&self) -> SimDuration {
        let remote_share = 1.0 - self.strategy.local_share(&self.work);
        SimDuration::from_secs_f64(
            self.work.total_gflop() * remote_share / self.cloud.compute_gflops.max(1e-9),
        )
    }
}

impl Actor for MarServer {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Message { msg, .. } => {
                if let Some(d) = msg.map_ref(|d: &Delivered| *d) {
                    // Only vision payloads trigger computation + a result.
                    if matches!(d.kind, StreamKind::VideoReference | StreamKind::VideoInter) {
                        // Serialized single-worker service discipline.
                        let start = self.busy_until.max(ctx.now());
                        let done = start + self.service_time();
                        self.busy_until = done;
                        self.pending.push_back((d.msg_id, d.origin.unwrap_or(d.created)));
                        ctx.schedule_timer(done.saturating_since(ctx.now()), TAG_DONE);
                    }
                }
            }
            Event::Timer { tag: TAG_DONE } => {
                if let Some((_, origin)) = self.pending.pop_front() {
                    self.processed += 1;
                    let id = self.next_msg_id;
                    self.next_msg_id += 1;
                    // Results carry the *original frame's* camera timestamp
                    // as their origin so the client measures true
                    // motion-to-photon latency; `created` is now so the
                    // transport's own staleness logic applies to the
                    // result's transit, not the whole loop.
                    let result = ArMessage::new(id, StreamKind::Result, 1_000, ctx.now())
                        .with_class(TrafficClass::BestEffortWithRecovery)
                        .with_priority(Priority::DropNotDelay(0))
                        .with_origin(origin);
                    ctx.send_message(self.result_sender, Payload::new(Submit(result)));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;
    use crate::video::VideoConfig;
    use marnet_core::config::ArConfig;
    use marnet_core::endpoint::{ArReceiver, ArSender, SenderPathConfig};
    use marnet_core::multipath::PathRole;
    use marnet_sim::engine::Simulator;
    use marnet_sim::link::{Bandwidth, LinkParams};
    use marnet_sim::rng::derive_rng;
    use marnet_transport::nic::TxPath;

    /// Builds the full duplex pipeline over one access link pair and runs
    /// it, returning the QoE report.
    fn run_pipeline(
        strategy: OffloadStrategy,
        up_mbps: f64,
        down_mbps: f64,
        one_way_ms: u64,
        secs: u64,
    ) -> crate::qoe::QoeReport {
        let mut sim = Simulator::new(31);
        let c_snd = sim.reserve_actor(); // client-side ArSender (uplink)
        let s_rcv = sim.reserve_actor(); // server-side ArReceiver
        let s_snd = sim.reserve_actor(); // server-side ArSender (downlink)
        let c_rcv = sim.reserve_actor(); // client-side ArReceiver
        let client = sim.reserve_actor();
        let server = sim.reserve_actor();

        let up = sim.add_link(
            c_snd,
            s_rcv,
            LinkParams::new(Bandwidth::from_mbps(up_mbps), SimDuration::from_millis(one_way_ms)),
        );
        // Server-side feedback travels on the downlink data path's link: we
        // give each direction its own duplex pair for clarity.
        let up_fb = sim.add_link(
            s_rcv,
            c_snd,
            LinkParams::new(Bandwidth::from_mbps(down_mbps), SimDuration::from_millis(one_way_ms)),
        );
        let down = sim.add_link(
            s_snd,
            c_rcv,
            LinkParams::new(Bandwidth::from_mbps(down_mbps), SimDuration::from_millis(one_way_ms)),
        );
        let down_fb = sim.add_link(
            c_rcv,
            s_snd,
            LinkParams::new(Bandwidth::from_mbps(up_mbps), SimDuration::from_millis(one_way_ms)),
        );

        let cfg = ArConfig::default();
        let sender = ArSender::new(
            1,
            cfg.clone(),
            vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
        )
        .with_qos_target(client);
        sim.install_actor(c_snd, sender);
        let receiver = ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(up_fb)])
            .with_delivery_target(server);
        sim.install_actor(s_rcv, receiver);

        let r_sender = ArSender::new(
            2,
            cfg.clone(),
            vec![SenderPathConfig {
                role: PathRole::Wifi,
                tx: TxPath::Link(down),
                link: Some(down),
            }],
        );
        sim.install_actor(s_snd, r_sender);
        let r_receiver = ArReceiver::new(2, cfg.feedback_interval, vec![TxPath::Link(down_fb)])
            .with_delivery_target(client);
        sim.install_actor(c_rcv, r_receiver);

        let model = ComputeModel::new(30.0, FrameWork::vision_pipeline())
            .with_deadline(SimDuration::from_millis(75));
        let video =
            FrameSource::new(VideoConfig::ar_minimal(), 0.05, derive_rng(31, "pipeline.video"));
        let mar_client =
            MarClient::new(c_snd, DeviceClass::Smartphone.spec(), model.clone(), strategy, video);
        let qoe = mar_client.qoe();
        sim.install_actor(client, mar_client);
        sim.install_actor(
            server,
            MarServer::new(s_snd, DeviceClass::Cloud.spec(), model.work, strategy),
        );

        sim.run_until(SimTime::from_secs(secs));
        let report = qoe.borrow_mut().report();
        report
    }

    #[test]
    fn edge_offload_meets_the_budget() {
        // Table II scenario 2-ish: 18 ms one-way (36 ms RTT), decent WiFi.
        let r = run_pipeline(OffloadStrategy::cloudridar(), 20.0, 20.0, 8, 12);
        assert!(r.frames > 250, "delivered {}", r.frames);
        assert!(r.within_budget > 0.9, "budget compliance {}", r.within_budget);
        assert!(r.score() > 80.0, "score {}", r.score());
    }

    #[test]
    fn lte_rtt_blows_the_budget() {
        // 60 ms one-way (120 ms RTT, Table II scenario 4): almost nothing
        // can meet 75 ms end to end.
        let r = run_pipeline(OffloadStrategy::cloudridar(), 8.0, 15.0, 60, 12);
        assert!(r.frames > 100, "delivered {}", r.frames);
        assert!(r.within_budget < 0.05, "budget compliance {}", r.within_budget);
        assert!(r.mean_latency_ms > 120.0, "mean latency {}", r.mean_latency_ms);
    }

    #[test]
    fn local_only_on_a_phone_is_slow_but_network_free() {
        let r = run_pipeline(OffloadStrategy::LocalOnly, 0.1, 0.1, 500, 10);
        // Every frame completes (no network involved), but each takes
        // ~100 ms of compute — over budget.
        assert!(r.frames > 90);
        assert!(r.within_budget < 0.05, "local vision on a phone is too slow");
    }

    #[test]
    fn glimpse_tracks_locally_and_hits_budget_for_tracked_frames() {
        let r = run_pipeline(OffloadStrategy::glimpse(), 8.0, 15.0, 8, 12);
        // 9 of 10 frames are locally tracked (fast); 1 of 10 goes to the
        // server. Overall compliance stays high.
        assert!(r.frames > 250, "delivered {}", r.frames);
        assert!(r.within_budget > 0.85, "budget compliance {}", r.within_budget);
    }

    #[test]
    fn tight_uplink_degrades_but_does_not_stall() {
        // Full-offload video (~10 Mb/s) into a 3 Mb/s uplink: quality must
        // degrade, frames still flow.
        let r = run_pipeline(OffloadStrategy::FullOffload { frame_bytes: 0 }, 3.0, 10.0, 8, 15);
        // (For FullOffload the MarClient uses the FrameSource's GoP sizes;
        // the `frame_bytes` config field only feeds the analytic model.)
        // Interframes are shed wholesale and only reference frames survive
        // — severely degraded, but the loop never fully stalls.
        assert!(r.frames > 20, "delivered {}", r.frames);
        assert!(r.loss_ratio < 0.99, "loss ratio {}", r.loss_ratio);
    }
}
