//! Cross-fidelity validation: the fluid tier must agree with the packet
//! engine where their models overlap.
//!
//! Scenario: `N` bulk transfers of equal size share one bottleneck link,
//! starting at staggered times. At packet level each transfer is a
//! self-clocked windowed source (a fixed number of packets in flight,
//! one new packet per delivery) over a large DropTail queue — no loss,
//! no AQM — which converges to the same equal-share bandwidth split the
//! fluid model computes in closed form. The fluid run drives the same
//! arrival plan through a [`FluidNetwork`] with one link and one class.
//!
//! # Documented CI bands
//!
//! Packet-level completions differ from fluid ones by real effects the
//! fluid model abstracts away: serialization quantization (the last
//! packet must fully serialize), propagation delay, the window ramp at
//! start, and FIFO interleaving noise while shares rebalance. On this
//! scenario those effects are bounded by a few packet times, so the
//! agreement bands are:
//!
//! * per-flow mean throughput: within **10 %** relative;
//! * per-flow completion time: within **10 %** relative **+ 50 ms**
//!   absolute slack (covers propagation + final-packet serialization).
//!
//! Both runs are deterministic, so each fidelity also pins a golden
//! completion-time vector (nanoseconds, exact equality). A golden change
//! means the corresponding tier's arithmetic changed — deliberate
//! changes must update the constants alongside the explanation.

use marnet_flow::fluid::{FlowDone, FluidNetwork, StartFlow};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkId, LinkParams};
use marnet_sim::packet::{Packet, Payload};
use marnet_sim::queue::QueueConfig;
use marnet_sim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared-bottleneck scenario parameters (both fidelities).
const BOTTLENECK_MBPS: f64 = 10.0;
const N_FLOWS: u64 = 4;
const FLOW_BYTES: u64 = 1_250_000; // 10 Mb: 1 s alone at the bottleneck
const STAGGER_MS: u64 = 500;
const PACKET_BYTES: u32 = 1_250;
const WINDOW: u64 = 4;

/// Golden per-flow completion times in nanoseconds, flow order.
/// Regenerate by running this test with `--nocapture` after a deliberate
/// model change; the printed vectors are the new goldens.
const GOLDEN_PACKET_NS: [u64; 4] = [1_829_000_000, 3_329_000_000, 3_833_000_000, 4_001_000_000];
const GOLDEN_FLUID_NS: [u64; 4] = [1_833_333_334, 3_333_333_334, 3_833_333_334, 4_000_000_001];

/// Packet-level windowed bulk source: keeps `WINDOW` packets in flight,
/// sends one more per delivery notification from the sink.
struct WindowedSource {
    flow: u64,
    link: LinkId,
    start_at: SimTime,
    remaining: u64,
}

impl Actor for WindowedSource {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                let wait = self.start_at.saturating_since(ctx.now());
                ctx.schedule_timer(wait, 0);
            }
            Event::Timer { .. } => {
                for _ in 0..WINDOW.min(self.remaining) {
                    self.send_one(ctx);
                }
            }
            // Ack from the sink: the self-clock releases one packet.
            Event::Message { .. } if self.remaining > 0 => self.send_one(ctx),
            _ => {}
        }
    }
}

impl WindowedSource {
    fn send_one(&mut self, ctx: &mut SimCtx) {
        self.remaining -= 1;
        let id = ctx.next_packet_id();
        let pkt = Packet::new(id, self.flow, PACKET_BYTES, ctx.now());
        ctx.transmit(self.link, pkt);
    }
}

/// Ack message from the sink back to a source.
#[derive(Debug, Clone, Copy)]
struct Delivered;

/// Packet-level sink: counts per-flow bytes, acks every delivery, records
/// completion times.
struct BulkSink {
    sources: Vec<ActorId>,
    received: Vec<u64>,
    finish: Rc<RefCell<Vec<(u64, SimTime)>>>,
}

impl Actor for BulkSink {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if let Event::Packet { packet, .. } = ev {
            let flow = packet.flow as usize;
            self.received[flow] += u64::from(packet.size);
            if self.received[flow] == FLOW_BYTES {
                self.finish.borrow_mut().push((packet.flow, ctx.now()));
            }
            ctx.send_message(self.sources[flow], Payload::new(Delivered));
        }
    }
}

/// Runs the packet-level scenario; returns per-flow completion ns.
fn run_packet_level() -> Vec<u64> {
    let mut sim = Simulator::new(31);
    let hub = sim.reserve_actor();
    let sink_id = sim.reserve_actor();
    let link = sim.add_link(
        hub,
        sink_id,
        LinkParams::new(Bandwidth::from_mbps(BOTTLENECK_MBPS), SimDuration::from_millis(1))
            .with_queue(QueueConfig::DropTail { cap_packets: 10_000 }),
    );
    let mut sources = Vec::new();
    for flow in 0..N_FLOWS {
        let id = sim.reserve_actor();
        sources.push(id);
        sim.install_actor(
            id,
            WindowedSource {
                flow,
                link,
                start_at: SimTime::from_millis(flow * STAGGER_MS),
                remaining: FLOW_BYTES / u64::from(PACKET_BYTES),
            },
        );
    }
    let finish = Rc::new(RefCell::new(Vec::new()));
    sim.install_actor(hub, Idle);
    sim.install_actor(
        sink_id,
        BulkSink { sources, received: vec![0; N_FLOWS as usize], finish: Rc::clone(&finish) },
    );
    sim.run_to_completion();
    let mut done = finish.borrow().clone();
    done.sort_by_key(|&(flow, _)| flow);
    assert_eq!(done.len(), N_FLOWS as usize, "not every packet-level flow completed");
    done.into_iter().map(|(_, t)| t.as_nanos()).collect()
}

/// The link's nominal source actor; transfers are injected by the
/// windowed sources directly onto the link.
struct Idle;
impl Actor for Idle {
    fn on_event(&mut self, _ctx: &mut SimCtx, _ev: Event) {}
}

/// Fluid-side driver: starts the same staggered flows.
struct FluidDriver {
    net: ActorId,
    class: marnet_flow::fluid::ClassId,
    finish: Rc<RefCell<Vec<(u64, SimTime)>>>,
}

impl Actor for FluidDriver {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                for flow in 0..N_FLOWS {
                    ctx.schedule_timer(SimDuration::from_millis(flow * STAGGER_MS), flow);
                }
            }
            Event::Timer { tag } => {
                let msg = StartFlow {
                    class: self.class,
                    flow: tag,
                    bytes: FLOW_BYTES,
                    notify: Some(ctx.self_id()),
                };
                ctx.send_message(self.net, Payload::new(msg));
            }
            Event::Message { mut msg, .. } => {
                if let Some(d) = msg.take::<FlowDone>() {
                    self.finish.borrow_mut().push((d.flow, ctx.now()));
                }
            }
            _ => {}
        }
    }
}

/// Runs the fluid-level scenario; returns per-flow completion ns.
fn run_fluid_level() -> Vec<u64> {
    let mut sim = Simulator::new(31);
    let net_id = sim.reserve_actor();
    let drv_id = sim.reserve_actor();
    let mut net = FluidNetwork::new();
    let l = net.add_link(Bandwidth::from_mbps(BOTTLENECK_MBPS));
    let class = net.add_class(&[l], None);
    sim.install_actor(net_id, net);
    let finish = Rc::new(RefCell::new(Vec::new()));
    sim.install_actor(drv_id, FluidDriver { net: net_id, class, finish: Rc::clone(&finish) });
    sim.run_to_completion();
    let mut done = finish.borrow().clone();
    done.sort_by_key(|&(flow, _)| flow);
    assert_eq!(done.len(), N_FLOWS as usize, "not every fluid flow completed");
    done.into_iter().map(|(_, t)| t.as_nanos()).collect()
}

/// Mean throughput of flow `i` in Mb/s given its completion time.
fn throughput_mbps(finish_ns: u64, flow: u64) -> f64 {
    let start_ns = flow * STAGGER_MS * 1_000_000;
    FLOW_BYTES as f64 * 8.0 / ((finish_ns - start_ns) as f64 / 1e9) / 1e6
}

#[test]
fn fluid_matches_packet_level_within_bands() {
    let packet = run_packet_level();
    let fluid = run_fluid_level();
    println!("packet-level completions (ns): {packet:?}");
    println!("fluid-level  completions (ns): {fluid:?}");

    for flow in 0..N_FLOWS as usize {
        let p_ns = packet[flow] as f64;
        let f_ns = fluid[flow] as f64;
        // Completion times: 10 % relative + 50 ms absolute.
        let band = 0.10 * p_ns + 50e6;
        assert!(
            (p_ns - f_ns).abs() <= band,
            "flow {flow}: packet {p_ns} ns vs fluid {f_ns} ns exceeds band {band} ns"
        );
        // Mean throughput: 10 % relative.
        let p_tp = throughput_mbps(packet[flow], flow as u64);
        let f_tp = throughput_mbps(fluid[flow], flow as u64);
        assert!(
            (p_tp - f_tp).abs() <= 0.10 * p_tp,
            "flow {flow}: packet {p_tp} Mb/s vs fluid {f_tp} Mb/s exceeds 10%"
        );
    }
}

#[test]
fn packet_level_golden_artifact() {
    assert_eq!(run_packet_level(), GOLDEN_PACKET_NS.to_vec());
}

#[test]
fn fluid_level_golden_artifact() {
    assert_eq!(run_fluid_level(), GOLDEN_FLUID_NS.to_vec());
}
