//! Property tests for the fluid tier: the max-min allocator's fairness
//! invariants on random topologies, and bit-identical replay of the
//! [`FluidNetwork`] actor under random flow arrival/departure plans.
//!
//! The allocator invariants are the textbook characterization of max-min
//! fairness:
//!
//! 1. **feasibility** — no link carries more than its capacity;
//! 2. **Pareto efficiency / bottleneck property** — every active class is
//!    either at its per-flow cap or crosses a saturated link on which its
//!    rate is maximal (so no class's rate can be raised without lowering
//!    a smaller-or-equal one);
//! 3. **equal share** — symmetric classes get identical rates.

use marnet_flow::fluid::{FlowDone, FluidNetwork, StartFlow};
use marnet_flow::maxmin::{max_min_rates, ClassDemand};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet_sim::link::Bandwidth;
use marnet_sim::packet::Payload;
use marnet_sim::time::SimDuration;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Relative tolerance for the fairness invariants: the allocator's fill
/// loop is plain `f64`, so saturation and cap equality hold to rounding.
const TOL: f64 = 1e-6;

/// Total flow-weighted load classes place on link `l`.
fn link_load(l: usize, demands: &[ClassDemand<'_>], rates: &[f64]) -> f64 {
    demands
        .iter()
        .zip(rates)
        .filter(|(d, _)| d.route.contains(&l))
        .map(|(d, r)| d.flows as f64 * r)
        .sum()
}

proptest! {
    #[test]
    fn maxmin_allocation_invariants(
        caps_mbps in prop::collection::vec(1.0f64..2_000.0, 1..5),
        raw in prop::collection::vec(
            (
                prop::collection::vec(0usize..8, 1..5), // route picks, folded mod link count
                0u64..600,                              // flows in the class
                0.05f64..500.0,                         // cap in Mb/s, if capped
                any::<bool>(),                          // capped?
            ),
            1..7,
        ),
    ) {
        let caps: Vec<f64> = caps_mbps.iter().map(|m| m * 1e6).collect();
        let classes: Vec<(Vec<usize>, u64, f64)> = raw
            .iter()
            .map(|(picks, flows, cap_mbps, capped)| {
                let mut route: Vec<usize> = picks.iter().map(|p| p % caps.len()).collect();
                route.sort_unstable();
                route.dedup();
                (route, *flows, if *capped { cap_mbps * 1e6 } else { f64::INFINITY })
            })
            .collect();
        let demands: Vec<ClassDemand<'_>> = classes
            .iter()
            .map(|(route, flows, cap_bps)| ClassDemand { route, flows: *flows, cap_bps: *cap_bps })
            .collect();
        let rates = max_min_rates(&caps, &demands);

        // 1. Feasibility: no link oversubscribed, caps respected, empty
        // classes at exactly zero.
        for (l, &cap) in caps.iter().enumerate() {
            let load = link_load(l, &demands, &rates);
            prop_assert!(load <= cap * (1.0 + TOL), "link {l}: load {load} > capacity {cap}");
        }
        for (d, &r) in demands.iter().zip(&rates) {
            if d.flows == 0 {
                prop_assert_eq!(r, 0.0);
            } else {
                prop_assert!(r >= 0.0 && r <= d.cap_bps * (1.0 + TOL), "rate {r} over cap {}", d.cap_bps);
            }
        }

        // 2. Pareto efficiency via the bottleneck property.
        for (i, (d, &r)) in demands.iter().zip(&rates).enumerate() {
            if d.flows == 0 {
                continue;
            }
            let at_cap = d.cap_bps.is_finite() && r >= d.cap_bps * (1.0 - TOL);
            let bottlenecked = d.route.iter().any(|&l| {
                let saturated = link_load(l, &demands, &rates) >= caps[l] * (1.0 - TOL);
                let max_on_l = demands
                    .iter()
                    .zip(&rates)
                    .filter(|(d2, _)| d2.flows > 0 && d2.route.contains(&l))
                    .map(|(_, &r2)| r2)
                    .fold(0.0f64, f64::max);
                saturated && r >= max_on_l * (1.0 - TOL)
            });
            prop_assert!(
                at_cap || bottlenecked,
                "class {i} (rate {r}) is neither capped nor bottlenecked: {demands:?} -> {rates:?}"
            );
        }
    }

    #[test]
    fn symmetric_classes_get_equal_shares(
        k in 1usize..6,
        flows in 1u64..100,
        cap_mbps in 1.0f64..100.0,
    ) {
        // 3. Equal share: k identical uncapped classes on one bottleneck
        // split it exactly `flows`-weighted-evenly.
        let caps = [cap_mbps * 1e6];
        let route = [0usize];
        let demands: Vec<ClassDemand<'_>> = (0..k)
            .map(|_| ClassDemand { route: &route, flows, cap_bps: f64::INFINITY })
            .collect();
        let rates = max_min_rates(&caps, &demands);
        let expected = cap_mbps * 1e6 / (k as f64 * flows as f64);
        for r in rates {
            prop_assert!((r - expected).abs() <= TOL * expected, "rate {r} != fair share {expected}");
        }
    }
}

/// Replays a random arrival plan against a [`FluidNetwork`] and records
/// the exact completion sequence.
struct PlanDriver {
    net: ActorId,
    plan: Vec<(u64, usize, u64)>, // (start ms, class pick, bytes)
    classes: Vec<marnet_flow::fluid::ClassId>,
    done: Rc<RefCell<Vec<(u64, u64, u64)>>>, // (flow, duration ns, finish ns)
}

impl Actor for PlanDriver {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                for (i, &(at_ms, _, _)) in self.plan.iter().enumerate() {
                    ctx.schedule_timer(SimDuration::from_millis(at_ms), i as u64);
                }
            }
            Event::Timer { tag } => {
                let (_, pick, bytes) = self.plan[tag as usize];
                let msg = StartFlow {
                    class: self.classes[pick % self.classes.len()],
                    flow: tag,
                    bytes,
                    notify: Some(ctx.self_id()),
                };
                ctx.send_message(self.net, Payload::new(msg));
            }
            Event::Message { mut msg, .. } => {
                if let Some(d) = msg.take::<FlowDone>() {
                    self.done.borrow_mut().push((
                        d.flow,
                        d.duration.as_nanos(),
                        ctx.now().as_nanos(),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Runs `plan` to completion on a two-link fluid graph and returns the
/// completion sequence in arrival-at-the-driver order.
fn replay(plan: &[(u64, usize, u64)], standing: u64) -> Vec<(u64, u64, u64)> {
    let mut sim = Simulator::new(97);
    let net_id = sim.reserve_actor();
    let drv_id = sim.reserve_actor();
    let mut net = FluidNetwork::new();
    let backhaul = net.add_link(Bandwidth::from_mbps(40.0));
    let metro = net.add_link(Bandwidth::from_mbps(25.0));
    let classes = vec![
        net.add_class(&[backhaul], Some(Bandwidth::from_mbps(8.0))),
        net.add_class(&[backhaul, metro], None),
        net.add_class(&[metro], Some(Bandwidth::from_mbps(3.0))),
    ];
    net.add_standing_flows(classes[1], standing);
    let stats = net.stats();
    sim.install_actor(net_id, net);
    let done = Rc::new(RefCell::new(Vec::new()));
    sim.install_actor(
        drv_id,
        PlanDriver { net: net_id, plan: plan.to_vec(), classes, done: Rc::clone(&done) },
    );
    sim.run_to_completion();

    // Conservation: every flow in the plan started and finished.
    let st = stats.borrow();
    assert_eq!(st.started, plan.len() as u64);
    assert_eq!(st.finished, plan.len() as u64);
    let v = done.borrow().clone();
    v
}

proptest! {
    #[test]
    fn random_plans_replay_bit_identically(
        plan in prop::collection::vec((0u64..3_000, 0usize..3, 1u64..2_000_000), 1..40),
        standing in 0u64..4,
    ) {
        let first = replay(&plan, standing);
        let second = replay(&plan, standing);
        prop_assert_eq!(first, second);
    }
}
