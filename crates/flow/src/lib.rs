//! # marnet-flow — flow-level fluid network tier
//!
//! The packet engine in `marnet-sim` resolves every serialization and
//! queue decision and tops out around thousands of endpoints per
//! wall-clock minute. The paper's framing, however, is metro-scale: one
//! cell is interesting at packet fidelity, but it sits inside a city of
//! 10⁵–10⁶ MAR users whose only observable effect on that cell is *load*.
//! This crate models that surrounding load as a fluid: flows receive
//! max-min fair rates on a capacitated link graph, and only flow
//! start / finish / rate-change events are simulated (DESIGN §13).
//!
//! Three layers:
//!
//! * [`maxmin`] — the pure allocator: progressive filling over *flow
//!   classes* (homogeneous flows sharing a route and per-flow cap), so
//!   one class of 100 000 identical clients costs the same as one flow.
//! * [`fluid`] — [`fluid::FluidNetwork`], an [`marnet_sim::engine::Actor`]
//!   that owns the fluid link graph, advances processor-sharing service
//!   counters between events, and schedules completion timers into the
//!   ordinary sim event loop.
//! * [`hybrid`] — boundary coupling: a packet-level focus region keeps
//!   full engine semantics while the fluid tier modulates the available
//!   rate of its boundary links ([`marnet_sim::region::RateUpdate`]).
//!
//! City-scale client populations are driven by [`workload::BackgroundWorkload`],
//! a single actor that multiplexes N think/transfer renewal processes.
//!
//! # Determinism
//!
//! Everything here runs inside the single-threaded sim event loop. The
//! only randomness is the workload's ChaCha12 substream derived from the
//! simulation seed ([`marnet_sim::rng::derive_rng`]); the allocator and
//! service accounting are sequential `f64` arithmetic over `Vec`s in
//! creation order, so identical seeds give bit-identical artifacts at any
//! `--threads` (threading in `marnet-lab` only shards whole trials).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fluid;
pub mod hybrid;
pub mod maxmin;
pub mod workload;

/// Convenience re-exports of the types most scenarios need.
pub mod prelude {
    pub use crate::fluid::{ClassId, FlowDone, FluidLinkId, FluidNetwork, FluidStats, StartFlow};
    pub use crate::hybrid::{Coupling, CouplingMode};
    pub use crate::maxmin::{max_min_rates, ClassDemand};
    pub use crate::workload::{BackgroundWorkload, WorkloadConfig, WorkloadStats};
}
