//! Max-min fair rate allocation by progressive filling.
//!
//! The classic water-filling algorithm, lifted from individual flows to
//! *flow classes*: a class is a set of `flows` identical flows sharing a
//! `route` (a list of fluid-link indices) and an optional per-flow rate
//! cap. Raising one common water level for all unfrozen classes and
//! freezing a class when it hits its cap or a link on its route
//! saturates yields the unique max-min fair allocation; doing it per
//! class makes the cost `O(iterations × (links + Σ route lengths))`
//! with `iterations ≤ classes + 1` — independent of the number of flows,
//! which is what lets the fluid tier carry 10⁵ clients.
//!
//! The arithmetic is plain sequential `f64` over slices, so results are
//! bit-identical run to run (the determinism contract, DESIGN §13).

/// One class of identical flows presented to the allocator.
#[derive(Debug, Clone)]
pub struct ClassDemand<'a> {
    /// Fluid-link indices the class's flows traverse. Links must not
    /// repeat within one route.
    pub route: &'a [usize],
    /// Number of concurrently active flows in the class.
    pub flows: u64,
    /// Per-flow rate cap in bits/s; `f64::INFINITY` when uncapped. A
    /// class with an empty route must be capped, or the demand would be
    /// unbounded.
    pub cap_bps: f64,
}

/// Relative slack used to decide "this link is saturated" / "this class
/// reached its cap" despite floating-point rounding in the fill loop.
const REL_EPS: f64 = 1e-12;

/// What the allocator needs to know about one flow class — implemented by
/// [`ClassDemand`] and by the fluid tier's internal class state, so the
/// per-recompute `ClassDemand` staging vector disappears from the hot
/// path.
pub trait MaxMinClass {
    /// Fluid-link indices the class's flows traverse.
    fn route(&self) -> &[usize];
    /// Number of concurrently active flows in the class.
    fn flows(&self) -> u64;
    /// Per-flow rate cap in bits/s; `f64::INFINITY` when uncapped.
    fn cap_bps(&self) -> f64;
}

impl MaxMinClass for ClassDemand<'_> {
    fn route(&self) -> &[usize] {
        self.route
    }
    fn flows(&self) -> u64 {
        self.flows
    }
    fn cap_bps(&self) -> f64 {
        self.cap_bps
    }
}

/// Reusable working storage for [`max_min_rates_into`]. Holding one of
/// these across recomputes makes the fill loop allocation-free (the
/// previous implementation allocated a per-link flow count *per pass*).
#[derive(Debug, Default)]
pub struct MaxMinScratch {
    frozen: Vec<bool>,
    residual: Vec<f64>,
    nflows: Vec<u64>,
}

impl MaxMinScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes the max-min fair per-flow rate (bits/s) for every class.
///
/// `capacity_bps[l]` is the capacity of fluid link `l`; routes in
/// `classes` index into it. Classes with zero flows get rate `0.0`.
///
/// # Panics
///
/// Panics if a route names a link outside `capacity_bps`, or if a class
/// has an empty route and an infinite cap (unbounded demand).
pub fn max_min_rates(capacity_bps: &[f64], classes: &[ClassDemand<'_>]) -> Vec<f64> {
    let mut rate = Vec::new();
    max_min_rates_into(capacity_bps, classes, &mut MaxMinScratch::new(), &mut rate);
    rate
}

/// [`max_min_rates`] with caller-owned scratch and output buffers — the
/// allocation-free form the fluid tier calls on every recompute.
///
/// `rate` is cleared and refilled with one per-flow rate per class.
pub fn max_min_rates_into<C: MaxMinClass>(
    capacity_bps: &[f64],
    classes: &[C],
    scratch: &mut MaxMinScratch,
    rate: &mut Vec<f64>,
) {
    for c in classes {
        assert!(
            !c.route().is_empty() || c.cap_bps().is_finite(),
            "a class with no route must have a finite per-flow cap"
        );
        for &l in c.route() {
            assert!(l < capacity_bps.len(), "route names unknown link {l}");
        }
    }

    rate.clear();
    rate.resize(classes.len(), 0.0);
    let MaxMinScratch { frozen, residual, nflows } = scratch;
    frozen.clear();
    frozen.extend(classes.iter().map(|c| c.flows() == 0));
    residual.clear();
    residual.extend_from_slice(capacity_bps);
    let mut level = 0.0f64;

    // Every pass freezes at least one class (the guard below enforces it
    // even under adverse rounding), so `classes + 1` passes suffice.
    for _ in 0..=classes.len() {
        // Unfrozen flows crossing each link.
        nflows.clear();
        nflows.resize(capacity_bps.len(), 0);
        let mut any_unfrozen = false;
        for (c, f) in classes.iter().zip(frozen.iter()) {
            if !*f {
                any_unfrozen = true;
                for &l in c.route() {
                    nflows[l] += c.flows();
                }
            }
        }
        if !any_unfrozen {
            break;
        }

        // The next freezing event: some link saturates, or some class
        // reaches its per-flow cap.
        let mut delta = f64::INFINITY;
        for (l, &nf) in nflows.iter().enumerate() {
            if nf > 0 {
                delta = delta.min((residual[l] / nf as f64).max(0.0));
            }
        }
        for (c, f) in classes.iter().zip(frozen.iter()) {
            if !*f && c.cap_bps().is_finite() {
                delta = delta.min((c.cap_bps() - level).max(0.0));
            }
        }
        debug_assert!(delta.is_finite(), "unbounded fill step");

        level += delta;
        for (l, &nf) in nflows.iter().enumerate() {
            if nf > 0 {
                residual[l] = (residual[l] - delta * nf as f64).max(0.0);
            }
        }

        let mut froze_any = false;
        // Cap-limited classes freeze exactly at their cap.
        for (i, c) in classes.iter().enumerate() {
            if !frozen[i] && c.cap_bps() <= level * (1.0 + REL_EPS) {
                rate[i] = c.cap_bps();
                frozen[i] = true;
                froze_any = true;
            }
        }
        // Classes crossing a saturated link freeze at the water level.
        for (i, c) in classes.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let bottlenecked = c.route().iter().any(|&l| residual[l] <= capacity_bps[l] * REL_EPS);
            if bottlenecked {
                rate[i] = level;
                frozen[i] = true;
                froze_any = true;
            }
        }
        if !froze_any {
            // Rounding guard: delta was chosen to saturate something but
            // the thresholds disagreed. Freeze everything at the level —
            // by construction no link is oversubscribed there.
            for (i, f) in frozen.iter_mut().enumerate() {
                if !*f {
                    rate[i] = level;
                    *f = true;
                }
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bottleneck_equal_share() {
        let caps = [10e6];
        let classes = [
            ClassDemand { route: &[0], flows: 2, cap_bps: f64::INFINITY },
            ClassDemand { route: &[0], flows: 3, cap_bps: f64::INFINITY },
        ];
        let r = max_min_rates(&caps, &classes);
        assert!((r[0] - 2e6).abs() < 1.0, "{r:?}");
        assert!((r[1] - 2e6).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn cap_limited_class_releases_bandwidth() {
        let caps = [10e6];
        let classes = [
            ClassDemand { route: &[0], flows: 1, cap_bps: 1e6 },
            ClassDemand { route: &[0], flows: 1, cap_bps: f64::INFINITY },
        ];
        let r = max_min_rates(&caps, &classes);
        assert!((r[0] - 1e6).abs() < 1.0, "{r:?}");
        assert!((r[1] - 9e6).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn two_link_chain_takes_the_tighter_bottleneck() {
        let caps = [10e6, 4e6];
        let classes = [
            // Crosses both links; link 1 is tighter.
            ClassDemand { route: &[0, 1], flows: 1, cap_bps: f64::INFINITY },
            // Only link 0: gets the leftovers there.
            ClassDemand { route: &[0], flows: 1, cap_bps: f64::INFINITY },
        ];
        let r = max_min_rates(&caps, &classes);
        assert!((r[0] - 4e6).abs() < 1.0, "{r:?}");
        assert!((r[1] - 6e6).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn empty_classes_get_zero() {
        let caps = [10e6];
        let classes = [
            ClassDemand { route: &[0], flows: 0, cap_bps: f64::INFINITY },
            ClassDemand { route: &[0], flows: 1, cap_bps: f64::INFINITY },
        ];
        let r = max_min_rates(&caps, &classes);
        assert_eq!(r[0], 0.0);
        assert!((r[1] - 10e6).abs() < 1.0);
    }

    #[test]
    fn class_scaling_matches_individual_flows() {
        // 100 000 flows as one class vs the same split across classes.
        let caps = [1e9];
        let one = [ClassDemand { route: &[0], flows: 100_000, cap_bps: f64::INFINITY }];
        let many: Vec<ClassDemand<'_>> = (0..10)
            .map(|_| ClassDemand { route: &[0], flows: 10_000, cap_bps: f64::INFINITY })
            .collect();
        let r1 = max_min_rates(&caps, &one);
        let r2 = max_min_rates(&caps, &many);
        for r in r2 {
            assert!((r - r1[0]).abs() <= 1e-6 * r1[0]);
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_allocation() {
        let caps = [10e6, 4e6, 25e6];
        let problems: Vec<Vec<ClassDemand<'_>>> = vec![
            vec![
                ClassDemand { route: &[0, 1], flows: 3, cap_bps: f64::INFINITY },
                ClassDemand { route: &[0], flows: 1, cap_bps: 2e6 },
            ],
            vec![ClassDemand { route: &[2], flows: 7, cap_bps: 1e6 }],
            vec![
                ClassDemand { route: &[0, 2], flows: 2, cap_bps: f64::INFINITY },
                ClassDemand { route: &[1, 2], flows: 5, cap_bps: f64::INFINITY },
                ClassDemand { route: &[2], flows: 0, cap_bps: f64::INFINITY },
            ],
        ];
        let mut scratch = MaxMinScratch::new();
        let mut rate = Vec::new();
        for classes in &problems {
            max_min_rates_into(&caps, classes, &mut scratch, &mut rate);
            assert_eq!(rate, max_min_rates(&caps, classes), "scratch reuse must not change rates");
        }
    }

    #[test]
    #[should_panic]
    fn unbounded_class_panics() {
        let _ =
            max_min_rates(&[1e6], &[ClassDemand { route: &[], flows: 1, cap_bps: f64::INFINITY }]);
    }
}
