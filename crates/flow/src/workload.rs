//! City-scale background client populations.
//!
//! One [`BackgroundWorkload`] actor multiplexes `clients` independent
//! think/transfer renewal processes: each client waits an exponential
//! think time, transfers a fixed number of bytes through the fluid tier
//! as one flow, and on completion starts thinking again. Per-client
//! state is just the timer tag (= client index), so 10⁵ clients cost
//! 10⁵ pending timers — no per-client actors, no per-client links (the
//! access-link rate is the class's per-flow cap).
//!
//! Randomness: a single ChaCha12 substream derived from the simulation
//! seed and the workload's label. Draws happen in event order, which the
//! engine makes deterministic, so a seed pins the entire arrival process.

use crate::fluid::{ClassId, FlowDone, StartFlow};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx};
use marnet_sim::packet::PayloadPool;
use marnet_sim::rng::derive_rng;
use marnet_sim::stats::Histogram;
use marnet_sim::time::SimDuration;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::cell::RefCell;
use std::rc::Rc;

/// Configuration of one background client population.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of clients in the population.
    pub clients: u64,
    /// The fluid class every transfer joins.
    pub class: ClassId,
    /// The [`crate::fluid::FluidNetwork`] actor.
    pub network: ActorId,
    /// Mean of the exponential think time between transfers.
    pub think_mean: SimDuration,
    /// Size of each transfer in bytes.
    pub transfer_bytes: u64,
    /// RNG substream label, e.g. `"cityscale/bg"`; distinct populations
    /// in one simulation need distinct labels.
    pub label: String,
}

/// What the population did, shared out of the actor.
#[derive(Debug, Default)]
pub struct WorkloadStats {
    /// Transfers handed to the fluid tier.
    pub offered: u64,
    /// Transfers completed.
    pub completed: u64,
    /// Completed-transfer durations in milliseconds.
    pub duration_ms: Histogram,
}

/// A population of think/transfer background clients (see module docs).
#[derive(Debug)]
pub struct BackgroundWorkload {
    cfg: WorkloadConfig,
    /// Lazily derived from the simulation seed at [`Event::Start`], so
    /// construction does not need the seed threaded through.
    rng: Option<ChaCha12Rng>,
    stats: Rc<RefCell<WorkloadStats>>,
    /// Recycled [`StartFlow`] payloads — with 10⁵ clients the transfer
    /// hand-off is the tier's dominant message traffic.
    start_pool: PayloadPool<StartFlow>,
}

impl BackgroundWorkload {
    /// A population described by `cfg`.
    pub fn new(cfg: WorkloadConfig) -> Self {
        BackgroundWorkload {
            cfg,
            rng: None,
            stats: Rc::new(RefCell::new(WorkloadStats::default())),
            start_pool: PayloadPool::new(),
        }
    }

    /// Shared handle to the population's statistics.
    pub fn stats(&self) -> Rc<RefCell<WorkloadStats>> {
        Rc::clone(&self.stats)
    }

    /// Enables or disables payload pooling for transfer hand-offs (on by
    /// default; see the pooling-identity tests).
    pub fn set_pooling(&mut self, enabled: bool) {
        self.start_pool.set_enabled(enabled);
    }

    /// Exponential think-time draw, clamped away from zero.
    fn think(&mut self) -> SimDuration {
        // The substream exists from Event::Start on; timers and
        // completions only arrive after it.
        let Some(rng) = self.rng.as_mut() else {
            return self.cfg.think_mean;
        };
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        SimDuration::from_secs_f64((-u.ln() * self.cfg.think_mean.as_secs_f64()).max(1e-6))
    }
}

impl Actor for BackgroundWorkload {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                self.rng =
                    Some(derive_rng(ctx.seed(), &format!("flow/workload/{}", self.cfg.label)));
                for client in 0..self.cfg.clients {
                    let delay = self.think();
                    ctx.schedule_timer(delay, client);
                }
            }
            Event::Timer { tag } => {
                self.stats.borrow_mut().offered += 1;
                let msg = StartFlow {
                    class: self.cfg.class,
                    flow: tag,
                    bytes: self.cfg.transfer_bytes,
                    notify: Some(ctx.self_id()),
                };
                let payload = self.start_pool.prepare(|| msg, |m| *m = msg);
                ctx.send_message(self.cfg.network, payload);
            }
            Event::Message { msg, .. } => {
                // `FlowDone` is `Copy` and may arrive in a pooled payload:
                // copy it out by reference instead of `take`.
                if let Some(done) = msg.map_ref(|d: &FlowDone| *d) {
                    {
                        let mut st = self.stats.borrow_mut();
                        st.completed += 1;
                        st.duration_ms.record(done.duration.as_millis_f64());
                    }
                    let delay = self.think();
                    ctx.schedule_timer(delay, done.flow);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::FluidNetwork;
    use marnet_sim::engine::Simulator;
    use marnet_sim::link::Bandwidth;
    use marnet_sim::time::SimTime;

    fn run(seed: u64, clients: u64) -> (u64, u64, Vec<f64>) {
        let mut sim = Simulator::new(seed);
        let net_id = sim.reserve_actor();
        let wl_id = sim.reserve_actor();
        let mut net = FluidNetwork::new();
        let l = net.add_link(Bandwidth::from_mbps(100.0));
        let class = net.add_class(&[l], Some(Bandwidth::from_mbps(20.0)));
        sim.install_actor(net_id, net);
        let wl = BackgroundWorkload::new(WorkloadConfig {
            clients,
            class,
            network: net_id,
            think_mean: SimDuration::from_millis(500),
            transfer_bytes: 250_000,
            label: "test".into(),
        });
        let stats = wl.stats();
        sim.install_actor(wl_id, wl);
        sim.run_until(SimTime::from_secs(10));
        let st = stats.borrow();
        (st.offered, st.completed, st.duration_ms.values().to_vec())
    }

    #[test]
    fn clients_cycle_through_think_and_transfer() {
        let (offered, completed, durations) = run(5, 40);
        // 40 clients over 10 s with ~0.5 s think + ~0.1–0.2 s transfer:
        // hundreds of cycles, nearly all completing.
        assert!(offered >= 300, "offered {offered}");
        assert!(completed >= 300, "completed {completed}");
        assert!(completed <= offered);
        assert_eq!(durations.len() as u64, completed);
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        assert_eq!(run(11, 25), run(11, 25));
    }

    #[test]
    fn seeds_decorrelate_the_arrival_process() {
        assert_ne!(run(11, 25).2, run(12, 25).2);
    }
}
