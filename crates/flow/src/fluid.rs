//! The fluid network actor: flow classes, processor-sharing service
//! accounting, and completion scheduling.
//!
//! [`FluidNetwork`] owns a capacitated fluid link graph and a set of
//! flow classes (same route, same per-flow cap). Between events nothing
//! happens except linear service growth, so the whole tier advances on
//! three event kinds only: a flow starts ([`StartFlow`] message), a flow
//! finishes (completion timer), or the allocation changes as a
//! consequence of either. Rates are recomputed with
//! [`crate::maxmin::max_min_rates`] *only* at those points.
//!
//! # Per-flow completions at class granularity
//!
//! Within a class every active flow always has the same rate, so the
//! cumulative per-flow service `S(t) = ∫ rate(t)/8 dt` (bytes) is shared
//! by all of them. A flow arriving at `t₀` with `size` bytes finishes
//! when `S(t) = S(t₀) + size`, independent of what other flows do in
//! between. Each class therefore keeps one monotone service counter and
//! a min-heap of finish levels; a flow event costs `O(log n)` instead of
//! `O(n)`, which is what makes 10⁵ concurrent clients tractable
//! (DESIGN §13 gives the argument in full).
//!
//! # Determinism
//!
//! State lives in `Vec`s ordered by creation; the heap breaks finish-level
//! ties by flow id; completion timers are quantized by *ceiling* to whole
//! nanoseconds so a completion never fires before its service level is
//! reached. All arithmetic is sequential `f64`: same inputs, same bits.

use crate::hybrid::{Coupling, CouplingMode};
use crate::maxmin::{max_min_rates_into, MaxMinClass, MaxMinScratch};
use marnet_sim::engine::{Actor, ActorId, Event, SimCtx, TimerHandle};
use marnet_sim::link::Bandwidth;
use marnet_sim::packet::PayloadPool;
use marnet_sim::region::RateUpdate;
use marnet_sim::stats::Histogram;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_telemetry::{component, TraceEvent};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Identifies a link in one [`FluidNetwork`]'s fluid graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FluidLinkId(u32);

impl FluidLinkId {
    /// The link's index in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a flow class in one [`FluidNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(u32);

impl ClassId {
    /// The class's index in creation order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Message: start a finite flow of `bytes` in `class`.
///
/// Sent to the [`FluidNetwork`] actor by workload generators. When the
/// flow completes, a [`FlowDone`] is sent back to `notify` (if any).
#[derive(Debug, Clone, Copy)]
pub struct StartFlow {
    /// The class the flow joins (fixes its route and per-flow cap).
    pub class: ClassId,
    /// Caller-chosen flow id, echoed in traces and [`FlowDone`].
    pub flow: u64,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Actor to notify on completion.
    pub notify: Option<ActorId>,
}

/// Message: a fluid flow finished.
#[derive(Debug, Clone, Copy)]
pub struct FlowDone {
    /// The class the flow belonged to.
    pub class: ClassId,
    /// The id given in [`StartFlow`].
    pub flow: u64,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Start-to-finish duration.
    pub duration: SimDuration,
}

/// Aggregate statistics across all classes of a [`FluidNetwork`].
#[derive(Debug, Default)]
pub struct FluidStats {
    /// Finite flows started.
    pub started: u64,
    /// Finite flows completed.
    pub finished: u64,
    /// Completed-flow durations in milliseconds.
    pub duration_ms: Histogram,
    /// Completed-flow mean throughputs in Mb/s.
    pub flow_mbps: Histogram,
    /// Max-min recomputes performed (one per flow start/finish batch).
    pub recomputes: u64,
}

/// One pending finite flow: finishes when its class's service counter
/// reaches `finish`. Heap order is (finish level, flow id) — the id
/// tiebreak keeps simultaneous completions deterministic.
#[derive(Debug)]
struct FlowEntry {
    finish: f64,
    flow: u64,
    bytes: u64,
    started: SimTime,
    notify: Option<ActorId>,
}

impl PartialEq for FlowEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for FlowEntry {}
impl PartialOrd for FlowEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FlowEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.finish.total_cmp(&other.finish).then(self.flow.cmp(&other.flow))
    }
}

#[derive(Debug)]
struct ClassState {
    route: Vec<usize>,
    cap_bps: f64,
    /// Flows that are always active and never finish (the hybrid tier's
    /// standing foreground class, or steady background pressure).
    standing: u64,
    heap: BinaryHeap<Reverse<FlowEntry>>,
    /// Cumulative per-flow service in bytes (`S(t)` above).
    service: f64,
    /// Current per-flow rate in bits/s.
    rate_bps: f64,
    /// Last per-flow rate traced, quantized to whole bits/s.
    traced_bps: u64,
    coupling: Option<Coupling>,
    /// Last boundary rate pushed through the coupling, in bits/s.
    coupled_bps: u64,
}

impl MaxMinClass for ClassState {
    fn route(&self) -> &[usize] {
        &self.route
    }
    fn flows(&self) -> u64 {
        self.standing + self.heap.len() as u64
    }
    fn cap_bps(&self) -> f64 {
        self.cap_bps
    }
}

/// The fluid tier: an actor owning a fluid link graph and its classes.
///
/// Build the graph with [`FluidNetwork::add_link`] /
/// [`FluidNetwork::add_class`] before installing the actor; drive it
/// with [`StartFlow`] messages afterwards.
#[derive(Debug, Default)]
pub struct FluidNetwork {
    links: Vec<f64>,
    classes: Vec<ClassState>,
    last_update: SimTime,
    pending: Option<TimerHandle>,
    stats: Rc<RefCell<FluidStats>>,
    /// Reusable fill-loop buffers — the recompute path allocates nothing
    /// once these are warm.
    scratch: MaxMinScratch,
    rates: Vec<f64>,
    /// Recycled [`FlowDone`] payloads for completion notifications.
    done_pool: PayloadPool<FlowDone>,
    /// Recycled [`RateUpdate`] payloads for hybrid-coupling notifications.
    rate_pool: PayloadPool<RateUpdate>,
}

impl FluidNetwork {
    /// An empty fluid network.
    pub fn new() -> Self {
        FluidNetwork::default()
    }

    /// Adds a fluid link of the given capacity.
    pub fn add_link(&mut self, capacity: Bandwidth) -> FluidLinkId {
        let id = FluidLinkId(self.links.len() as u32);
        self.links.push(capacity.as_bps() as f64);
        id
    }

    /// Adds a flow class crossing `route`, optionally capped per flow
    /// (e.g. the client's access-link rate, so per-client access links
    /// need not exist in the fluid graph).
    pub fn add_class(&mut self, route: &[FluidLinkId], per_flow_cap: Option<Bandwidth>) -> ClassId {
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(ClassState {
            route: route.iter().map(|l| l.index()).collect(),
            cap_bps: per_flow_cap.map_or(f64::INFINITY, |b| b.as_bps() as f64),
            standing: 0,
            heap: BinaryHeap::new(),
            service: 0.0,
            rate_bps: 0.0,
            traced_bps: 0,
            coupling: None,
            coupled_bps: 0,
        });
        id
    }

    /// Adds `n` permanently active flows to a class. Standing flows
    /// consume bandwidth in the allocation but never finish — the hybrid
    /// tier's foreground class and constant background pressure both use
    /// this.
    pub fn add_standing_flows(&mut self, class: ClassId, n: u64) {
        self.classes[class.index()].standing += n;
    }

    /// Couples a class's aggregate allocation to a packet-level boundary
    /// link (see [`crate::hybrid`]). The class should hold at least one
    /// standing flow so the boundary rate never collapses to zero.
    pub fn couple_class(&mut self, class: ClassId, coupling: Coupling) {
        self.classes[class.index()].coupling = Some(coupling);
    }

    /// Shared handle to the aggregate statistics.
    pub fn stats(&self) -> Rc<RefCell<FluidStats>> {
        Rc::clone(&self.stats)
    }

    /// Enables or disables payload pooling for completion notifications.
    /// On by default; the forced-fresh path exists so the pooling-identity
    /// tests can prove artifacts do not depend on it.
    pub fn set_pooling(&mut self, enabled: bool) {
        self.done_pool.set_enabled(enabled);
        self.rate_pool.set_enabled(enabled);
    }

    /// Advances every class's service counter to `now`.
    fn advance(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_update);
        if dt > SimDuration::ZERO {
            let secs = dt.as_secs_f64();
            for c in &mut self.classes {
                if c.rate_bps > 0.0 {
                    c.service += c.rate_bps / 8.0 * secs;
                }
            }
        }
        self.last_update = now;
    }

    /// Pops every flow whose finish level has been reached and emits its
    /// completion effects. Called from the timer path after [`Self::advance`].
    fn collect_completions(&mut self, ctx: &mut SimCtx) {
        let now = ctx.now();
        let comp = component::actor(ctx.self_id().index());
        for ci in 0..self.classes.len() {
            loop {
                let c = &mut self.classes[ci];
                // Slack: one nanosecond of service at the current rate
                // plus the relative rounding floor of the counter itself,
                // so a completion timer that lands a fraction of a ulp
                // short still completes its flow (never more than ~a byte
                // early, and deterministically so).
                let slack = c.rate_bps / 8e9 + c.service.abs() * 1e-12 + 1e-9;
                let due = match c.heap.peek() {
                    Some(Reverse(top)) => top.finish <= c.service + slack,
                    None => false,
                };
                if !due {
                    break;
                }
                let Some(Reverse(entry)) = c.heap.pop() else { break };
                let duration = now.saturating_since(entry.started);
                {
                    let mut st = self.stats.borrow_mut();
                    st.finished += 1;
                    st.duration_ms.record(duration.as_millis_f64());
                    let secs = duration.as_secs_f64();
                    if secs > 0.0 {
                        st.flow_mbps.record(entry.bytes as f64 * 8.0 / secs / 1e6);
                    }
                }
                ctx.trace_with(|| {
                    TraceEvent::flow_finish(
                        now.as_nanos(),
                        comp,
                        ci as u8,
                        entry.flow,
                        duration.as_nanos(),
                    )
                });
                if let Some(target) = entry.notify {
                    let done = FlowDone {
                        class: ClassId(ci as u32),
                        flow: entry.flow,
                        bytes: entry.bytes,
                        duration,
                    };
                    let payload = self.done_pool.prepare(|| done, |d| *d = done);
                    ctx.send_message(target, payload);
                }
            }
        }
    }

    /// Recomputes the max-min allocation, pushes coupled boundary rates,
    /// and schedules the next completion timer. Service counters must be
    /// current (call [`Self::advance`] first).
    fn recompute(&mut self, ctx: &mut SimCtx) {
        self.stats.borrow_mut().recomputes += 1;
        // The classes implement `MaxMinClass` directly, so no per-call
        // demand staging vector exists; scratch and output buffers are
        // fields and this call allocates nothing once they are warm.
        max_min_rates_into(&self.links, &self.classes, &mut self.scratch, &mut self.rates);

        let now = ctx.now();
        let comp = component::actor(ctx.self_id().index());
        for ci in 0..self.classes.len() {
            let rate = self.rates[ci];
            let c = &mut self.classes[ci];
            c.rate_bps = rate;
            let active = c.standing + c.heap.len() as u64;
            let quantized = rate.round() as u64;
            if ctx.trace_enabled() && quantized != c.traced_bps {
                c.traced_bps = quantized;
                ctx.trace_with(|| {
                    TraceEvent::flow_rate(now.as_nanos(), comp, ci as u8, active, quantized)
                });
            }
            if let Some(coupling) = c.coupling {
                // The boundary link gets the class's aggregate
                // allocation, floored at 1 bit/s so the packet tier's
                // queue never stalls outright.
                let boundary = ((rate * active as f64).round() as u64).max(1);
                if boundary != c.coupled_bps {
                    c.coupled_bps = boundary;
                    let update =
                        RateUpdate { link: coupling.link, rate: Bandwidth::from_bps(boundary) };
                    match coupling.via {
                        CouplingMode::Direct => ctx.set_link_rate(update.link, update.rate),
                        CouplingMode::Notify(owner) => {
                            let payload = self.rate_pool.prepare(|| update, |u| *u = update);
                            ctx.send_message(owner, payload);
                        }
                    }
                }
            }
        }

        // One pending timer for the earliest completion across classes.
        if let Some(handle) = self.pending.take() {
            ctx.cancel_timer(handle);
        }
        let mut earliest: Option<SimDuration> = None;
        for c in &self.classes {
            if c.rate_bps <= 0.0 {
                continue;
            }
            if let Some(Reverse(top)) = c.heap.peek() {
                let residual_bytes = (top.finish - c.service).max(0.0);
                let nanos = (residual_bytes * 8.0 / c.rate_bps * 1e9).ceil();
                // Ceiling to whole nanoseconds guarantees the service
                // counter has passed the finish level when the timer
                // fires; never schedule at zero delay to keep the event
                // loop monotone.
                let d = SimDuration::from_nanos((nanos as u64).max(1));
                earliest = Some(earliest.map_or(d, |e| e.min(d)));
            }
        }
        if let Some(delay) = earliest {
            self.pending = Some(ctx.schedule_timer(delay, 0));
        }
    }
}

impl Actor for FluidNetwork {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                self.last_update = ctx.now();
                self.recompute(ctx);
            }
            Event::Message { msg, .. } => {
                // Copy out by reference: `StartFlow` is `Copy` and the
                // payload may be pooled (shared), where `take` would
                // deep-clone through a fresh box.
                if let Some(start) = msg.map_ref(|s: &StartFlow| *s) {
                    let now = ctx.now();
                    self.advance(now);
                    let c = &mut self.classes[start.class.index()];
                    let finish = c.service + start.bytes as f64;
                    c.heap.push(Reverse(FlowEntry {
                        finish,
                        flow: start.flow,
                        bytes: start.bytes,
                        started: now,
                        notify: start.notify,
                    }));
                    self.stats.borrow_mut().started += 1;
                    let comp = component::actor(ctx.self_id().index());
                    ctx.trace_with(|| {
                        TraceEvent::flow_start(
                            now.as_nanos(),
                            comp,
                            start.class.index() as u8,
                            start.flow,
                            start.bytes,
                        )
                    });
                    self.recompute(ctx);
                }
            }
            Event::Timer { .. } => {
                self.pending = None;
                self.advance(ctx.now());
                self.collect_completions(ctx);
                self.recompute(ctx);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::engine::Simulator;
    use marnet_sim::packet::Payload;

    /// Starts `flows` of `bytes` each at t=0 and records completions.
    struct Driver {
        net: ActorId,
        class: ClassId,
        flows: u64,
        bytes: u64,
        done: Rc<RefCell<Vec<(u64, SimDuration)>>>,
    }

    impl Actor for Driver {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            match ev {
                Event::Start => {
                    for flow in 0..self.flows {
                        let msg = StartFlow {
                            class: self.class,
                            flow,
                            bytes: self.bytes,
                            notify: Some(ctx.self_id()),
                        };
                        ctx.send_message(self.net, Payload::new(msg));
                    }
                }
                Event::Message { mut msg, .. } => {
                    if let Some(done) = msg.take::<FlowDone>() {
                        self.done.borrow_mut().push((done.flow, done.duration));
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn equal_flows_finish_together_at_fair_share() {
        let mut sim = Simulator::new(7);
        let net_id = sim.reserve_actor();
        let drv_id = sim.reserve_actor();
        let mut net = FluidNetwork::new();
        let l = net.add_link(Bandwidth::from_mbps(8.0));
        let class = net.add_class(&[l], None);
        let stats = net.stats();
        sim.install_actor(net_id, net);
        let done = Rc::new(RefCell::new(Vec::new()));
        sim.install_actor(
            drv_id,
            Driver { net: net_id, class, flows: 4, bytes: 1_000_000, done: Rc::clone(&done) },
        );
        sim.run_to_completion();

        // 4 flows × 1 MB over 8 Mb/s: processor sharing finishes all four
        // together at 4 s.
        let done = done.borrow();
        assert_eq!(done.len(), 4);
        for (_, d) in done.iter() {
            assert!((d.as_secs_f64() - 4.0).abs() < 1e-6, "duration {d:?}");
        }
        assert_eq!(stats.borrow().finished, 4);
    }

    #[test]
    fn standing_flow_halves_the_rate() {
        let mut sim = Simulator::new(7);
        let net_id = sim.reserve_actor();
        let drv_id = sim.reserve_actor();
        let mut net = FluidNetwork::new();
        let l = net.add_link(Bandwidth::from_mbps(8.0));
        let class = net.add_class(&[l], None);
        net.add_standing_flows(class, 1);
        sim.install_actor(net_id, net);
        let done = Rc::new(RefCell::new(Vec::new()));
        sim.install_actor(
            drv_id,
            Driver { net: net_id, class, flows: 1, bytes: 1_000_000, done: Rc::clone(&done) },
        );
        sim.run_to_completion();

        // The finite flow shares with one standing flow: 4 Mb/s → 2 s.
        let done = done.borrow();
        assert_eq!(done.len(), 1);
        assert!((done[0].1.as_secs_f64() - 2.0).abs() < 1e-6, "duration {:?}", done[0].1);
    }

    #[test]
    fn completions_replay_bit_identically() {
        let run = || {
            let mut sim = Simulator::new(21);
            let net_id = sim.reserve_actor();
            let drv_id = sim.reserve_actor();
            let mut net = FluidNetwork::new();
            let l = net.add_link(Bandwidth::from_mbps(5.5));
            let class = net.add_class(&[l], Some(Bandwidth::from_mbps(3.3)));
            sim.install_actor(net_id, net);
            let done = Rc::new(RefCell::new(Vec::new()));
            sim.install_actor(
                drv_id,
                Driver { net: net_id, class, flows: 9, bytes: 777_777, done: Rc::clone(&done) },
            );
            sim.run_to_completion();
            let v = done.borrow().clone();
            v
        };
        assert_eq!(run(), run());
    }
}
