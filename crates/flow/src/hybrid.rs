//! Hybrid-fidelity boundary coupling.
//!
//! A hybrid scenario partitions the topology (see
//! [`marnet_sim::region::RegionMap`]) into a packet-level *focus region*
//! — the cell under study, unchanged engine semantics — and fluid
//! background regions. The two tiers meet at *boundary links*: physical
//! links whose capacity is shared between focus-region packet traffic
//! and fluid background flows.
//!
//! The coupling is one-way and works through a *standing foreground
//! class* in the [`crate::fluid::FluidNetwork`]: a class with one
//! always-active flow, capped at the boundary link's nominal capacity,
//! competing max-min fairly with the background classes on the fluid
//! graph. Whatever rate the allocator grants that class is the rate the
//! packet tier may use, so after every recompute the fluid network
//! pushes it to the engine link — either directly
//! ([`CouplingMode::Direct`]) or as a
//! [`marnet_sim::region::RateUpdate`] message to the NIC owning the link
//! ([`CouplingMode::Notify`]), which applies it with
//! [`marnet_sim::engine::SimCtx::set_link_rate`].
//!
//! Because the foreground class is always active and capped, its
//! allocation is at least `min(cap, C/n)` of the shared capacity `C` —
//! never zero — so the packet tier keeps draining (a zero rate would
//! park queued packets forever). The reverse direction is deliberately
//! approximate: the packet tier's *offered* load is represented by the
//! standing class's cap rather than its instantaneous throughput, which
//! slightly overstates foreground pressure when the cell is idle. DESIGN
//! §13 quantifies the error; the cross-fidelity validation test bounds
//! it.

use marnet_sim::engine::ActorId;
use marnet_sim::link::LinkId;

/// How a boundary-link rate update reaches the packet tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouplingMode {
    /// The fluid network sets the engine link's rate itself, in the same
    /// event that recomputed the allocation.
    Direct,
    /// The fluid network sends a [`marnet_sim::region::RateUpdate`]
    /// message to this actor (typically the NIC owning the link), which
    /// applies it. One message hop of sim-time latency, but keeps the
    /// link under its owner's control.
    Notify(ActorId),
}

/// Couples one fluid class to one packet-level boundary link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coupling {
    /// The packet-level link whose available rate tracks the class's
    /// max-min allocation.
    pub link: LinkId,
    /// Delivery mechanism for rate updates.
    pub via: CouplingMode,
}

impl Coupling {
    /// Directly-applied coupling to `link`.
    pub fn direct(link: LinkId) -> Self {
        Coupling { link, via: CouplingMode::Direct }
    }

    /// Message-based coupling to `link`, applied by `owner`.
    pub fn notify(link: LinkId, owner: ActorId) -> Self {
        Coupling { link, via: CouplingMode::Notify(owner) }
    }
}
