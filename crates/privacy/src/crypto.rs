//! Encryption cost model (§VI-G).
//!
//! "Heavy usage of cryptography should be performed for every
//! communication." Encryption throughput depends on whether the device has
//! hardware AES; on wearable-class CPUs software crypto measurably eats
//! into the latency budget.

use marnet_app::device::DeviceClass;
use marnet_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Cipher families with distinct cost profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cipher {
    /// AES-GCM with hardware support where available.
    AesGcm,
    /// ChaCha20-Poly1305 (fast in software, no hardware dependence).
    ChaCha20Poly1305,
}

/// Encryption throughput of a device for a cipher, MB/s.
pub fn throughput_mbps(device: DeviceClass, cipher: Cipher) -> f64 {
    // Calibrated to circa-2017 mobile/desktop benchmarks.
    let (aes_hw, sw_base) = match device {
        DeviceClass::SmartGlasses => (false, 30.0),
        DeviceClass::Smartphone => (true, 120.0),
        DeviceClass::Tablet => (true, 180.0),
        DeviceClass::Laptop => (true, 500.0),
        DeviceClass::Desktop => (true, 900.0),
        DeviceClass::Cloud => (true, 2_000.0),
    };
    match cipher {
        Cipher::AesGcm => {
            if aes_hw {
                sw_base * 8.0 // AES-NI/ARMv8-CE class speedup
            } else {
                sw_base * 0.6 // software AES is slower than ChaCha
            }
        }
        Cipher::ChaCha20Poly1305 => sw_base,
    }
}

/// Time to encrypt (or decrypt) `bytes` on `device` with `cipher`.
pub fn encrypt_time(device: DeviceClass, cipher: Cipher, bytes: u64) -> SimDuration {
    let mbps = throughput_mbps(device, cipher);
    SimDuration::from_secs_f64(bytes as f64 / (mbps * 1e6))
}

/// Handshake cost when (re)establishing a secure session — relevant after
/// every WiFi handover gap (§IV-A-4 meets §VI-G).
pub fn handshake_time(device: DeviceClass, rtt: SimDuration) -> SimDuration {
    // 1-RTT handshake plus asymmetric crypto on the device.
    let asym = match device {
        DeviceClass::SmartGlasses => SimDuration::from_millis(12),
        DeviceClass::Smartphone => SimDuration::from_millis(3),
        DeviceClass::Tablet => SimDuration::from_millis(2),
        _ => SimDuration::from_millis(1),
    };
    rtt + asym
}

/// Picks the faster cipher for a device — the practical §VI-G guidance.
pub fn best_cipher(device: DeviceClass) -> Cipher {
    if throughput_mbps(device, Cipher::AesGcm) >= throughput_mbps(device, Cipher::ChaCha20Poly1305)
    {
        Cipher::AesGcm
    } else {
        Cipher::ChaCha20Poly1305
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_aes_beats_chacha_on_phones() {
        assert_eq!(best_cipher(DeviceClass::Smartphone), Cipher::AesGcm);
        assert_eq!(best_cipher(DeviceClass::Cloud), Cipher::AesGcm);
    }

    #[test]
    fn glasses_prefer_chacha() {
        assert_eq!(best_cipher(DeviceClass::SmartGlasses), Cipher::ChaCha20Poly1305);
    }

    #[test]
    fn encrypting_a_frame_fits_the_budget_on_a_phone_not_glasses() {
        // A 40 KB frame payload.
        let phone =
            encrypt_time(DeviceClass::Smartphone, best_cipher(DeviceClass::Smartphone), 40_000);
        let glasses =
            encrypt_time(DeviceClass::SmartGlasses, best_cipher(DeviceClass::SmartGlasses), 40_000);
        assert!(phone < SimDuration::from_millis(1), "phone {phone}");
        assert!(glasses > phone * 10, "glasses {glasses}");
        // Still only ~1.3 ms on glasses; crypto alone is affordable, the
        // paper's worry compounds when it stacks with vision work.
        assert!(glasses < SimDuration::from_millis(5));
    }

    #[test]
    fn handshake_cost_adds_to_handover() {
        let rtt = SimDuration::from_millis(36);
        let h = handshake_time(DeviceClass::SmartGlasses, rtt);
        assert_eq!(h, SimDuration::from_millis(48));
        assert!(handshake_time(DeviceClass::Cloud, rtt) < h);
    }

    #[test]
    fn throughput_monotone_in_device_power() {
        let order = [
            DeviceClass::SmartGlasses,
            DeviceClass::Smartphone,
            DeviceClass::Tablet,
            DeviceClass::Laptop,
            DeviceClass::Desktop,
            DeviceClass::Cloud,
        ];
        for w in order.windows(2) {
            assert!(
                throughput_mbps(w[0], Cipher::ChaCha20Poly1305)
                    < throughput_mbps(w[1], Cipher::ChaCha20Poly1305)
            );
        }
    }
}
