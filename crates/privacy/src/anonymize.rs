//! Sensitive-region anonymisation cost and leakage model (§VI-G).
//!
//! "In the case of a picture, at least faces, license plates and visible
//! street plates should be blurred before sending to other users for
//! processing." Detection and blurring are themselves vision work — this
//! model prices them in GFLOP per frame and tracks the residual leakage of
//! each user-selectable privacy level (the I-PIC idea of letting users
//! define levels of privacy).

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Kinds of sensitive regions the paper enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Human faces.
    Face,
    /// Vehicle license plates.
    LicensePlate,
    /// Street name plates (reveal location).
    StreetPlate,
}

impl RegionKind {
    /// All kinds.
    pub const ALL: [RegionKind; 3] =
        [RegionKind::Face, RegionKind::LicensePlate, RegionKind::StreetPlate];

    /// Relative identifiability weight: how much of a person's identity /
    /// location one unredacted region leaks.
    pub fn leak_weight(self) -> f64 {
        match self {
            RegionKind::Face => 1.0,
            RegionKind::LicensePlate => 0.6,
            RegionKind::StreetPlate => 0.3,
        }
    }
}

/// User-selectable privacy level, I-PIC style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PrivacyLevel {
    /// No redaction (trusted first-party server only).
    Off,
    /// Blur faces only.
    FacesOnly,
    /// Blur faces and license plates.
    FacesAndPlates,
    /// Blur everything the paper lists (required before D2D sharing).
    Full,
}

impl PrivacyLevel {
    /// Whether this level redacts the given region kind.
    pub fn redacts(self, kind: RegionKind) -> bool {
        match self {
            PrivacyLevel::Off => false,
            PrivacyLevel::FacesOnly => kind == RegionKind::Face,
            PrivacyLevel::FacesAndPlates => {
                matches!(kind, RegionKind::Face | RegionKind::LicensePlate)
            }
            PrivacyLevel::Full => true,
        }
    }

    /// Whether the level satisfies the paper's D2D requirement ("data
    /// offloaded to other users devices should not be recoverable").
    pub fn safe_for_d2d(self) -> bool {
        self == PrivacyLevel::Full
    }
}

/// The sensitive regions present in one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameRegions {
    /// Face count.
    pub faces: u32,
    /// License-plate count.
    pub plates: u32,
    /// Street-plate count.
    pub street_plates: u32,
}

impl FrameRegions {
    fn count(&self, kind: RegionKind) -> u32 {
        match kind {
            RegionKind::Face => self.faces,
            RegionKind::LicensePlate => self.plates,
            RegionKind::StreetPlate => self.street_plates,
        }
    }

    /// Total regions.
    pub fn total(&self) -> u32 {
        self.faces + self.plates + self.street_plates
    }
}

/// Computation-cost model of the anonymisation pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnonymizeCost {
    /// Fixed per-frame detection sweep, GFLOP (runs whenever any kind is
    /// redacted — detectors must look before they can blur).
    pub detection_gflop: f64,
    /// Per-region blur cost, GFLOP.
    pub blur_gflop_per_region: f64,
}

impl Default for AnonymizeCost {
    fn default() -> Self {
        AnonymizeCost { detection_gflop: 0.20, blur_gflop_per_region: 0.01 }
    }
}

impl AnonymizeCost {
    /// GFLOP spent anonymising one frame at the given level.
    pub fn frame_gflop(&self, level: PrivacyLevel, regions: &FrameRegions) -> f64 {
        if level == PrivacyLevel::Off {
            return 0.0;
        }
        let blurred: u32 =
            RegionKind::ALL.iter().filter(|&&k| level.redacts(k)).map(|&k| regions.count(k)).sum();
        self.detection_gflop + self.blur_gflop_per_region * f64::from(blurred)
    }
}

/// Residual leakage score of a frame after redaction at `level`:
/// sum of leak weights of regions *not* redacted (0 = fully private).
pub fn leakage(level: PrivacyLevel, regions: &FrameRegions) -> f64 {
    RegionKind::ALL
        .iter()
        .filter(|&&k| !level.redacts(k))
        .map(|&k| f64::from(regions.count(k)) * k.leak_weight())
        .sum()
}

/// Draws the sensitive-region content of a street-scene frame (Poisson-ish
/// counts calibrated to a busy sidewalk).
pub fn sample_street_scene(rng: &mut ChaCha12Rng) -> FrameRegions {
    let draw = |rng: &mut ChaCha12Rng, mean: f64| -> u32 {
        // Cheap Poisson via exponential gaps.
        let mut count = 0;
        let mut acc = 0.0;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            acc += -u.ln() / mean;
            if acc > 1.0 || count > 30 {
                break;
            }
            count += 1;
        }
        count
    };
    FrameRegions { faces: draw(rng, 3.0), plates: draw(rng, 1.0), street_plates: draw(rng, 0.5) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::rng::derive_rng;

    fn busy() -> FrameRegions {
        FrameRegions { faces: 4, plates: 2, street_plates: 1 }
    }

    #[test]
    fn levels_redact_monotonically() {
        let r = busy();
        let leaks: Vec<f64> = [
            PrivacyLevel::Off,
            PrivacyLevel::FacesOnly,
            PrivacyLevel::FacesAndPlates,
            PrivacyLevel::Full,
        ]
        .iter()
        .map(|&l| leakage(l, &r))
        .collect();
        assert!(leaks.windows(2).all(|w| w[0] > w[1]), "{leaks:?}");
        assert_eq!(leaks[3], 0.0);
        assert_eq!(leaks[0], 4.0 + 1.2 + 0.3);
    }

    #[test]
    fn only_full_is_d2d_safe() {
        assert!(PrivacyLevel::Full.safe_for_d2d());
        assert!(!PrivacyLevel::FacesAndPlates.safe_for_d2d());
        assert!(!PrivacyLevel::Off.safe_for_d2d());
    }

    #[test]
    fn cost_scales_with_redacted_regions() {
        let c = AnonymizeCost::default();
        let r = busy();
        assert_eq!(c.frame_gflop(PrivacyLevel::Off, &r), 0.0);
        let faces = c.frame_gflop(PrivacyLevel::FacesOnly, &r);
        let full = c.frame_gflop(PrivacyLevel::Full, &r);
        assert!(full > faces);
        assert!((faces - (0.20 + 0.04)).abs() < 1e-12);
        assert!((full - (0.20 + 0.07)).abs() < 1e-12);
    }

    #[test]
    fn empty_frame_costs_only_detection() {
        let c = AnonymizeCost::default();
        let r = FrameRegions::default();
        assert_eq!(c.frame_gflop(PrivacyLevel::Full, &r), 0.20);
        assert_eq!(leakage(PrivacyLevel::Off, &r), 0.0);
    }

    #[test]
    fn street_scene_sampler_is_plausible() {
        let mut rng = derive_rng(3, "privacy");
        let mut total_faces = 0u32;
        for _ in 0..500 {
            let r = sample_street_scene(&mut rng);
            total_faces += r.faces;
            assert!(r.faces <= 31 && r.plates <= 31);
        }
        let mean = f64::from(total_faces) / 500.0;
        assert!((mean - 3.0).abs() < 0.5, "mean faces {mean}");
    }
}
