//! # marnet-privacy — privacy and security cost models (§VI-G)
//!
//! "As AR applications transmit audio or video feeds from a camera, user
//! privacy is primordial." The paper requires cryptography on every
//! communication and anonymisation of offloaded imagery (faces, license
//! plates, street plates blurred before D2D sharing), citing PrivateEye/
//! WaveOff, Privacy.Tag and I-PIC. Those are vision systems; per the
//! substitution rule this crate models their *costs and leakage*:
//!
//! * [`anonymize`] — sensitive-region detection/blur cost per frame and a
//!   residual-leakage score per privacy level (I-PIC-style user levels);
//! * [`crypto`] — encryption throughput per device class and the latency
//!   it adds to MAR payloads (AES-class with and without hardware offload);
//! * [`policy`] — a combined per-frame pipeline: given a frame and a
//!   policy, the added latency, added bytes and leakage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anonymize;
pub mod crypto;
pub mod policy;

pub use anonymize::PrivacyLevel;
pub use policy::{PrivacyPolicy, PrivacyVerdict};
