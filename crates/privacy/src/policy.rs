//! The combined per-frame privacy pipeline (§VI-G).
//!
//! "A trade-off needs to be found between the user's privacy and the amount
//! of personal data required for proper behavior of the application." A
//! [`PrivacyPolicy`] fixes one point on that trade-off; applying it to a
//! frame yields the added latency (anonymisation compute + encryption), the
//! added bytes (auth tags/nonces) and the residual leakage.

use crate::anonymize::{leakage, AnonymizeCost, FrameRegions, PrivacyLevel};
use crate::crypto::{best_cipher, encrypt_time, Cipher};
use marnet_app::device::DeviceClass;
use marnet_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-packet overhead of AEAD encryption (nonce + tag), bytes.
pub const AEAD_OVERHEAD_BYTES: u32 = 28;

/// One point on the privacy/cost trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyPolicy {
    /// Redaction level for offloaded imagery.
    pub level: PrivacyLevel,
    /// Whether payloads are encrypted.
    pub encrypt: bool,
    /// Cipher to use; `None` picks the device's fastest.
    pub cipher: Option<Cipher>,
}

impl PrivacyPolicy {
    /// The paper's recommendation: full redaction + encryption.
    pub fn paranoid() -> Self {
        PrivacyPolicy { level: PrivacyLevel::Full, encrypt: true, cipher: None }
    }

    /// Trusted first-party server: encrypt but do not redact.
    pub fn first_party() -> Self {
        PrivacyPolicy { level: PrivacyLevel::Off, encrypt: true, cipher: None }
    }

    /// The (non-compliant) baseline: nothing.
    pub fn none() -> Self {
        PrivacyPolicy { level: PrivacyLevel::Off, encrypt: false, cipher: None }
    }

    /// Whether this policy satisfies the §VI-G requirements for offloading
    /// to untrusted peers.
    pub fn d2d_compliant(&self) -> bool {
        self.level.safe_for_d2d() && self.encrypt
    }
}

/// What applying a policy to one frame costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyVerdict {
    /// Added processing latency on the device.
    pub added_latency: SimDuration,
    /// Added payload bytes.
    pub added_bytes: u32,
    /// Residual leakage score (0 = fully private).
    pub leakage: f64,
}

/// Applies `policy` to a frame of `frame_bytes` with the given sensitive
/// regions, on `device`.
pub fn apply(
    policy: &PrivacyPolicy,
    device: DeviceClass,
    frame_bytes: u64,
    regions: &FrameRegions,
) -> PrivacyVerdict {
    let cost = AnonymizeCost::default();
    let gflop = cost.frame_gflop(policy.level, regions);
    let spec = device.spec();
    let anonymize = SimDuration::from_secs_f64(gflop / spec.compute_gflops.max(1e-9));
    let (encrypt, bytes) = if policy.encrypt {
        let cipher = policy.cipher.unwrap_or_else(|| best_cipher(device));
        (encrypt_time(device, cipher, frame_bytes), AEAD_OVERHEAD_BYTES)
    } else {
        (SimDuration::ZERO, 0)
    };
    PrivacyVerdict {
        added_latency: anonymize + encrypt,
        added_bytes: bytes,
        leakage: leakage(policy.level, regions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy() -> FrameRegions {
        FrameRegions { faces: 4, plates: 2, street_plates: 1 }
    }

    #[test]
    fn paranoid_policy_is_d2d_compliant() {
        assert!(PrivacyPolicy::paranoid().d2d_compliant());
        assert!(!PrivacyPolicy::first_party().d2d_compliant());
        assert!(!PrivacyPolicy::none().d2d_compliant());
    }

    #[test]
    fn privacy_costs_latency_on_weak_devices() {
        let frame = 40_000;
        let none = apply(&PrivacyPolicy::none(), DeviceClass::SmartGlasses, frame, &busy());
        let full = apply(&PrivacyPolicy::paranoid(), DeviceClass::SmartGlasses, frame, &busy());
        assert_eq!(none.added_latency, SimDuration::ZERO);
        assert_eq!(none.leakage, 5.5);
        assert_eq!(full.leakage, 0.0);
        // Detection (0.27 GFLOP at 2 GFLOPS ≈ 135 ms!) dominates: on
        // glasses the anonymisation itself must be offloaded — which is
        // exactly the paper's D2D chicken-and-egg observation.
        assert!(full.added_latency > SimDuration::from_millis(100), "{}", full.added_latency);
    }

    #[test]
    fn phones_afford_the_paranoid_policy() {
        let v = apply(&PrivacyPolicy::paranoid(), DeviceClass::Smartphone, 40_000, &busy());
        assert!(v.added_latency < SimDuration::from_millis(20), "{}", v.added_latency);
        assert_eq!(v.added_bytes, AEAD_OVERHEAD_BYTES);
    }

    #[test]
    fn encryption_only_adds_tag_bytes() {
        let v = apply(&PrivacyPolicy::first_party(), DeviceClass::Smartphone, 40_000, &busy());
        assert_eq!(v.added_bytes, AEAD_OVERHEAD_BYTES);
        assert!(v.leakage > 0.0, "no redaction leaves leakage");
        assert!(v.added_latency < SimDuration::from_millis(1));
    }

    #[test]
    fn explicit_cipher_is_honoured() {
        let p = PrivacyPolicy {
            level: PrivacyLevel::Off,
            encrypt: true,
            cipher: Some(Cipher::ChaCha20Poly1305),
        };
        let slow = apply(&p, DeviceClass::Smartphone, 1_000_000, &busy());
        let fast =
            apply(&PrivacyPolicy::first_party(), DeviceClass::Smartphone, 1_000_000, &busy());
        assert!(slow.added_latency > fast.added_latency);
    }
}
