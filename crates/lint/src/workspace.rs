//! The workspace walker: decides which rules apply to which files and
//! runs the whole pass.
//!
//! Scope decisions, all path-based (no type information exists):
//!
//! * **Sim-facing crates** (`sim`, `core`, `transport`, `radio`, `app`,
//!   `edge`, `privacy`, `telemetry`, `faults`, `flow`, `trainer`) get the
//!   determinism family over their library sources. `src/bin/` is exempt:
//!   binaries are CLI entry points that legitimately read
//!   `std::env::args`.
//! * **Hot-path modules** (the PR 2 event-core set: `sim::engine`,
//!   `core::endpoint`, `transport::nic`) additionally get the
//!   panic-safety family, and the pooled set (those three plus
//!   `core::fec` and `flow::fluid`) the allocation-discipline rule.
//! * **Every crate root** (`src/lib.rs`) gets the hygiene rule, and
//!   every crate manifest the layering rule.
//! * `tests/`, `benches/`, `examples/`, and `#[cfg(test)]` items are
//!   never scanned: invariants protect the simulation, not its harness.
//!
//! The pass is two-phase. Phase one scans each file under its direct
//! scope, exactly as above. Phase two builds the workspace call graph
//! ([`crate::callgraph`]) and *propagates* the entry-point-scoped
//! families along it: a helper outside the hot-path file list that a
//! hot-path function calls (directly, via a path, or via an unambiguous
//! same-crate method name) is audited with the same panic-safety /
//! allocation / seeded-randomness rules, and its findings carry a
//! "reachable from"
//! witness. Pragmas in the helper's file suppress propagated findings
//! the same way they suppress direct ones.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::{CallGraph, FileInput};
use crate::diag::{self, Diagnostic, Rule};
use crate::layering;
use crate::pragma;
use crate::rules::{self, scan_stream, FileScope};
use crate::tokens::{tokenize, TokenStream};

/// Crates whose library code faces the simulator and must stay
/// deterministic. `trainer` is here because its sampling loop feeds the
/// byte-identical artifact contract: an unseeded RNG or wall-clock read
/// in the search would silently break reproducibility.
pub const SIM_FACING: &[&str] = &[
    "sim",
    "core",
    "transport",
    "radio",
    "app",
    "edge",
    "privacy",
    "telemetry",
    "faults",
    "flow",
    "trainer",
];

/// Event-core hot-path modules under the panic-safety rule (workspace-
/// relative, forward slashes).
pub const HOT_PATH: &[&str] =
    &["crates/sim/src/engine.rs", "crates/core/src/endpoint.rs", "crates/transport/src/nic.rs"];

/// Pooled hot-path modules under the allocation-discipline rule: the
/// modules whose per-event work the perf matrix holds to near-zero
/// allocs/event. Fresh `Vec::new`/`vec!`/`Box::new`/`.to_vec()` here must
/// either recycle through a pool/scratch buffer or carry a reasoned
/// pragma naming the cold path.
pub const HOT_ALLOC: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/core/src/endpoint.rs",
    "crates/core/src/fec.rs",
    "crates/transport/src/nic.rs",
    "crates/flow/src/fluid.rs",
];

/// The result of a whole-workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in canonical order.
    pub findings: Vec<Diagnostic>,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Crate manifests checked for layering.
    pub crates_checked: usize,
    /// The workspace call graph (also exported via `--call-graph`).
    pub call_graph: CallGraph,
}

/// One scanned source file, kept for the call-graph phase.
struct ScannedFile {
    crate_name: String,
    rel_path: String,
    scope: FileScope,
    stream: TokenStream,
}

/// Runs every rule over the workspace rooted at `root` (the directory
/// holding the workspace `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                crate_dirs.push(path);
            }
        }
    }
    // Deterministic scan order regardless of directory enumeration.
    crate_dirs.sort();

    let mut scanned: Vec<ScannedFile> = Vec::new();
    for dir in &crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
        scan_crate(root, dir, &name, &mut report, &mut scanned)?;
    }

    // The umbrella crate at the root, when present: layering + hygiene.
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        scan_crate(root, root, "marnet", &mut report, &mut scanned)?;
    }

    // Phase two: the call graph and reachability propagation.
    let inputs: Vec<FileInput<'_>> = scanned
        .iter()
        .map(|f| FileInput { crate_name: &f.crate_name, rel_path: &f.rel_path, stream: &f.stream })
        .collect();
    let graph = CallGraph::build(&inputs);
    propagate(&graph, &scanned, &mut report.findings);
    report.call_graph = graph;

    diag::sort(&mut report.findings);
    Ok(report)
}

/// Scanner signature shared by the propagated rules: tokens, a span
/// filter, and the finding sink (the scanner stamps its own [`Rule`]).
type FamilyScan =
    fn(&[crate::tokens::Token], &dyn Fn(usize) -> bool, &mut dyn FnMut(Rule, usize, String));

/// One propagated rule family: which scope flag covers a file directly,
/// and which scanner audits a reached helper.
struct Family {
    covered: fn(&FileScope) -> bool,
    scan: FamilyScan,
}

/// Phase two: for each entry-point-scoped family, walk the call graph
/// from every function defined in a directly-covered file and audit the
/// helpers it reaches in files the family does not directly cover.
fn propagate(graph: &CallGraph, scanned: &[ScannedFile], findings: &mut Vec<Diagnostic>) {
    let families: &[Family] = &[
        Family { covered: |s| s.panic_path, scan: rules::scan_panic_path },
        Family { covered: |s| s.hot_alloc, scan: rules::scan_hot_alloc },
        Family { covered: |s| s.determinism, scan: rules::scan_unseeded_rng },
    ];
    for family in families {
        let roots: Vec<usize> = (0..graph.fns.len())
            .filter(|&i| (family.covered)(&scanned[graph.fns[i].file_idx].scope))
            .collect();
        let reached = graph.reachable(&roots, |e| graph.follows_for_propagation(e));
        // Deterministic order: visit reached fns by (file, line).
        let mut targets: Vec<(usize, usize)> = reached
            .into_iter()
            .filter(|&(def, _)| !(family.covered)(&scanned[graph.fns[def].file_idx].scope))
            .collect();
        targets.sort_by_key(|&(def, _)| (graph.fns[def].file_idx, graph.fns[def].line));

        // Group by file so pragmas are collected once per file.
        let mut by_file: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        for (def, root) in targets {
            let fi = graph.fns[def].file_idx;
            match by_file.last_mut() {
                Some((last, list)) if *last == fi => list.push((def, root)),
                _ => by_file.push((fi, vec![(def, root)])),
            }
        }
        for (fi, defs) in by_file {
            let file = &scanned[fi];
            let (pragmas, _) = pragma::collect(&file.stream.comments);
            let test_ranges = rules::test_line_ranges(&file.stream.tokens);
            let in_test = |line: usize| test_ranges.iter().any(|r| r.contains(&line));
            let mut used = vec![false; pragmas.len()];
            let mut seen: BTreeSet<(usize, Rule)> = BTreeSet::new();
            for (def, root) in defs {
                let d = &graph.fns[def];
                let (s, e) = d.tok_span;
                if s >= e {
                    continue;
                }
                let mut raw: Vec<Diagnostic> = Vec::new();
                let witness = &graph.fns[root].path;
                {
                    let mut push = |rule: Rule, line: usize, message: String| {
                        raw.push(Diagnostic {
                            rule,
                            file: file.rel_path.clone(),
                            line,
                            message: format!(
                                "{message} (in `{}`, reachable from `{witness}` via the call graph)",
                                d.path
                            ),
                        });
                    };
                    (family.scan)(&file.stream.tokens[s..e], &in_test, &mut push);
                }
                for f in rules::suppress(raw, &pragmas, &mut used) {
                    // Nested fns are contained in their parent's span;
                    // dedup so a finding is not reported per enclosure.
                    if seen.insert((f.line, f.rule)) {
                        findings.push(f);
                    }
                }
            }
        }
    }
}

/// Scans one crate: manifest layering plus every file under `src/`.
fn scan_crate(
    root: &Path,
    dir: &Path,
    name: &str,
    report: &mut Report,
    scanned: &mut Vec<ScannedFile>,
) -> io::Result<()> {
    let manifest_path = dir.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)?;
    report.findings.extend(layering::check_crate(name, &manifest, &rel(root, &manifest_path)));
    report.crates_checked += 1;

    let src = dir.join("src");
    if !src.is_dir() {
        return Ok(());
    }
    let determinism = SIM_FACING.contains(&name);
    let mut files = Vec::new();
    collect_rs(&src, &mut files)?;
    files.sort();
    for file in files {
        let rel_path = rel(root, &file);
        // Binaries parse argv and print; the determinism contract lives
        // in the library the binary drives.
        let in_bin = rel_path.contains("/src/bin/");
        let scope = FileScope {
            determinism: determinism && !in_bin,
            panic_path: HOT_PATH.contains(&rel_path.as_str()),
            hot_alloc: HOT_ALLOC.contains(&rel_path.as_str()),
            hygiene: file == src.join("lib.rs"),
            rel_path,
        };
        let source = fs::read_to_string(&file)?;
        let stream = tokenize(&source);
        report.findings.extend(scan_stream(&stream, &scope));
        report.files_scanned += 1;
        scanned.push(ScannedFile {
            crate_name: name.to_string(),
            rel_path: scope.rel_path.clone(),
            scope,
            stream,
        });
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across hosts).
fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    r.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
