//! The workspace walker: decides which rules apply to which files and
//! runs the whole pass.
//!
//! Scope decisions, all path-based (no type information exists):
//!
//! * **Sim-facing crates** (`sim`, `core`, `transport`, `radio`, `app`,
//!   `edge`, `privacy`, `telemetry`, `faults`, `flow`, `trainer`) get the
//!   determinism family over their library sources. `src/bin/` is exempt:
//!   binaries are CLI entry points that legitimately read
//!   `std::env::args`.
//! * **Hot-path modules** (the PR 2 event-core set: `sim::engine`,
//!   `core::endpoint`, `transport::nic`) additionally get the
//!   panic-safety family, and the pooled set (those three plus
//!   `core::fec` and `flow::fluid`) the allocation-discipline rule.
//! * **Every crate root** (`src/lib.rs`) gets the hygiene rule, and
//!   every crate manifest the layering rule.
//! * `tests/`, `benches/`, `examples/`, and `#[cfg(test)]` items are
//!   never scanned: invariants protect the simulation, not its harness.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{self, Diagnostic};
use crate::layering;
use crate::rules::{scan_file, FileScope};

/// Crates whose library code faces the simulator and must stay
/// deterministic. `trainer` is here because its sampling loop feeds the
/// byte-identical artifact contract: an unseeded RNG or wall-clock read
/// in the search would silently break reproducibility.
pub const SIM_FACING: &[&str] = &[
    "sim",
    "core",
    "transport",
    "radio",
    "app",
    "edge",
    "privacy",
    "telemetry",
    "faults",
    "flow",
    "trainer",
];

/// Event-core hot-path modules under the panic-safety rule (workspace-
/// relative, forward slashes).
pub const HOT_PATH: &[&str] =
    &["crates/sim/src/engine.rs", "crates/core/src/endpoint.rs", "crates/transport/src/nic.rs"];

/// Pooled hot-path modules under the allocation-discipline rule: the
/// modules whose per-event work the perf matrix holds to near-zero
/// allocs/event. Fresh `Vec::new`/`vec!`/`Box::new`/`.to_vec()` here must
/// either recycle through a pool/scratch buffer or carry a reasoned
/// pragma naming the cold path.
pub const HOT_ALLOC: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/core/src/endpoint.rs",
    "crates/core/src/fec.rs",
    "crates/transport/src/nic.rs",
    "crates/flow/src/fluid.rs",
];

/// The result of a whole-workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in canonical order.
    pub findings: Vec<Diagnostic>,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Crate manifests checked for layering.
    pub crates_checked: usize,
}

/// Runs every rule over the workspace rooted at `root` (the directory
/// holding the workspace `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                crate_dirs.push(path);
            }
        }
    }
    // Deterministic scan order regardless of directory enumeration.
    crate_dirs.sort();

    for dir in &crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
        scan_crate(root, dir, &name, &mut report)?;
    }

    // The umbrella crate at the root, when present: layering + hygiene.
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        scan_crate(root, root, "marnet", &mut report)?;
    }

    diag::sort(&mut report.findings);
    Ok(report)
}

/// Scans one crate: manifest layering plus every file under `src/`.
fn scan_crate(root: &Path, dir: &Path, name: &str, report: &mut Report) -> io::Result<()> {
    let manifest_path = dir.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)?;
    report.findings.extend(layering::check_crate(name, &manifest, &rel(root, &manifest_path)));
    report.crates_checked += 1;

    let src = dir.join("src");
    if !src.is_dir() {
        return Ok(());
    }
    let determinism = SIM_FACING.contains(&name);
    let mut files = Vec::new();
    collect_rs(&src, &mut files)?;
    files.sort();
    for file in files {
        let rel_path = rel(root, &file);
        // Binaries parse argv and print; the determinism contract lives
        // in the library the binary drives.
        let in_bin = rel_path.contains("/src/bin/");
        let scope = FileScope {
            determinism: determinism && !in_bin,
            panic_path: HOT_PATH.contains(&rel_path.as_str()),
            hot_alloc: HOT_ALLOC.contains(&rel_path.as_str()),
            hygiene: file == src.join("lib.rs"),
            rel_path,
        };
        let source = fs::read_to_string(&file)?;
        report.findings.extend(scan_file(&source, &scope));
        report.files_scanned += 1;
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across hosts).
fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    r.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
