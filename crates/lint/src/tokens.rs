//! A lossy Rust tokenizer.
//!
//! The build is offline, so there is no `syn`; the rules only need a
//! stream of identifiers and punctuation with line numbers, with the
//! guarantee that nothing inside a string literal, character literal, or
//! comment ever reaches the rule engine. That guarantee is what makes the
//! pass trustworthy: `"Instant::now"` in a log message or a doc comment
//! must never count as a wall-clock read (the proptest suite hammers
//! exactly this property).
//!
//! Lossiness that is acceptable here: number literals come out as plain
//! word tokens (`1.0e5` → `1`, `.`, `0e5`), multi-character operators
//! other than `::` are split into single characters, and lifetimes are
//! dropped entirely. None of the rules care.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier, keyword, or number word (`[A-Za-z0-9_]+`).
    Word,
    /// A single punctuation character, or the two-character path
    /// separator `::`.
    Punct,
}

/// One significant token: its text and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind (word or punctuation).
    pub kind: TokenKind,
    /// The token text.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// A `//` line comment that survived tokenization (pragmas live here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// Text after the `//`, untrimmed.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// `true` for `///` and `//!` doc comments (which cannot carry
    /// pragmas — documentation is not configuration).
    pub doc: bool,
}

/// Tokenization result: the significant tokens plus every line comment.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TokenStream {
    /// Significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

fn is_word(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes Rust source, skipping whitespace, comments, and string /
/// character / byte / raw literals. Never panics on malformed input: an
/// unterminated literal or comment simply swallows the rest of the file,
/// which is the behaviour `rustc` has too (it would be a compile error).
pub fn tokenize(src: &str) -> TokenStream {
    let mut out = TokenStream::default();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();

    // Advances past `bytes[i]`, tracking line numbers.
    macro_rules! bump {
        () => {{
            if bytes[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = bytes[i];

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < n {
            match bytes[i + 1] {
                '/' => {
                    let start_line = line;
                    i += 2;
                    let mut text = String::new();
                    while i < n && bytes[i] != '\n' {
                        text.push(bytes[i]);
                        i += 1;
                    }
                    let doc = text.starts_with('/') || text.starts_with('!');
                    out.comments.push(LineComment { text, line: start_line, doc });
                    continue;
                }
                '*' => {
                    // Block comments nest in Rust.
                    i += 2;
                    let mut depth = 1usize;
                    while i < n && depth > 0 {
                        if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                            depth += 1;
                            bump!();
                            bump!();
                        } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                            depth -= 1;
                            bump!();
                            bump!();
                        } else {
                            bump!();
                        }
                    }
                    continue;
                }
                _ => {}
            }
        }

        // Raw strings (`r"…"`, `r#"…"#`, …) and their byte/C variants.
        // Look for an optional `b`/`c` prefix, then `r`, hashes, quote.
        if c == 'r' || ((c == 'b' || c == 'c') && i + 1 < n && bytes[i + 1] == 'r') {
            let r_at = if c == 'r' { i } else { i + 1 };
            let mut j = r_at + 1;
            while j < n && bytes[j] == '#' {
                j += 1;
            }
            if j < n && bytes[j] == '"' {
                let hashes = j - (r_at + 1);
                // Consume the prefix and opening quote.
                while i <= j {
                    bump!();
                }
                // Scan for `"` followed by `hashes` hash marks.
                'raw: while i < n {
                    if bytes[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                bump!();
                            }
                            break 'raw;
                        }
                    }
                    bump!();
                }
                continue;
            }
            // Not a raw string (`r` is just an identifier start) — fall
            // through to the word path below.
        }

        // Ordinary string literals, including `b"…"` / `c"…"` prefixes.
        if c == '"' || ((c == 'b' || c == 'c') && i + 1 < n && bytes[i + 1] == '"') {
            if c != '"' {
                bump!(); // the b/c prefix
            }
            bump!(); // opening quote
            while i < n {
                if bytes[i] == '\\' && i + 1 < n {
                    bump!();
                    bump!();
                } else if bytes[i] == '"' {
                    bump!();
                    break;
                } else {
                    bump!();
                }
            }
            continue;
        }

        // Character literals vs lifetimes, plus `b'…'` byte literals.
        if c == '\'' || (c == 'b' && i + 1 < n && bytes[i + 1] == '\'') {
            let q = if c == 'b' { i + 1 } else { i };
            if c == 'b' || is_char_literal(&bytes, q) {
                // Consume `b`, quote, contents, closing quote.
                while i <= q {
                    bump!();
                }
                while i < n {
                    if bytes[i] == '\\' && i + 1 < n {
                        bump!();
                        bump!();
                    } else if bytes[i] == '\'' {
                        bump!();
                        break;
                    } else {
                        bump!();
                    }
                }
            } else {
                // A lifetime: consume the quote and the identifier.
                bump!();
                while i < n && is_word(bytes[i]) {
                    bump!();
                }
            }
            continue;
        }

        // Words (identifiers, keywords, numbers).
        if is_word(c) {
            let start_line = line;
            let mut text = String::new();
            while i < n && is_word(bytes[i]) {
                text.push(bytes[i]);
                i += 1;
            }
            out.tokens.push(Token { kind: TokenKind::Word, text, line: start_line });
            continue;
        }

        // `::` as one token; everything else single-character.
        if c == ':' && i + 1 < n && bytes[i + 1] == ':' {
            out.tokens.push(Token { kind: TokenKind::Punct, text: "::".into(), line });
            i += 2;
            continue;
        }
        out.tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line });
        bump!();
    }
    out
}

/// Decides whether the `'` at `bytes[q]` opens a character literal (as
/// opposed to a lifetime). Escapes (`'\n'`) are always literals; `'a'` is
/// a literal because the character after the one-word run is `'`; `'a` /
/// `'static` are lifetimes.
fn is_char_literal(bytes: &[char], q: usize) -> bool {
    let Some(&next) = bytes.get(q + 1) else {
        return false;
    };
    if next == '\\' {
        return true;
    }
    if next == '\'' {
        // `''` is malformed; treat as a (empty) literal so we skip it.
        return true;
    }
    if is_word(next) {
        // Scan the word run; a closing quote right after means a literal
        // like 'a' (multi-char word runs such as 'ab' are not valid Rust,
        // and `'a'` in generics is written `'a`, never quoted twice).
        let mut j = q + 1;
        while j < bytes.len() && is_word(bytes[j]) {
            j += 1;
        }
        return bytes.get(j) == Some(&'\'');
    }
    // `'('`, `' '`, etc.: punctuation or space in quotes is a literal.
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<String> {
        tokenize(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        let src = r##"
            let x = "Instant::now()"; // Instant::now()
            /* HashMap.iter() */
            let y = 'a';
            let z = r#"std::env::var("HOME")"#;
        "##;
        let w = words(src);
        assert!(!w.contains(&"Instant".to_string()), "{w:?}");
        assert!(!w.contains(&"HashMap".to_string()), "{w:?}");
        assert!(!w.contains(&"env".to_string()), "{w:?}");
    }

    #[test]
    fn line_comments_are_captured_for_pragmas() {
        let ts = tokenize("foo(); // marnet-lint: allow(wall-clock): bench timer\n/// doc");
        assert_eq!(ts.comments.len(), 2);
        assert_eq!(ts.comments[0].text, " marnet-lint: allow(wall-clock): bench timer");
        assert!(!ts.comments[0].doc);
        assert!(ts.comments[1].doc);
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let w = words("fn f<'a>(x: &'a str) -> &'a str { Instant::now(); x }");
        assert!(w.contains(&"Instant".to_string()));
        assert!(w.contains(&"now".to_string()));
    }

    #[test]
    fn char_escape_with_quote_is_contained() {
        let w = words(r"let q = '\''; Instant::now();");
        assert!(w.contains(&"Instant".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let w = words("/* outer /* inner */ still comment */ real_token");
        assert_eq!(w, vec!["real_token"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let w = words(r####"let s = r##"quote " and "# inside"##; after"####);
        assert_eq!(w, vec!["let", "s", "=", ";", "after"]);
    }

    #[test]
    fn byte_and_c_string_prefixes() {
        let w = words(r##"let a = b"Instant::now"; let b = br#"x"#; let c = b'q'; done"##);
        assert!(!w.contains(&"Instant".to_string()));
        assert!(w.contains(&"done".to_string()));
    }

    #[test]
    fn path_separator_is_one_token() {
        let ts = tokenize("std::time::Instant");
        let texts: Vec<&str> = ts.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["std", "::", "time", "::", "Instant"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb\n/* c\nc */ d";
        let ts = tokenize(src);
        let lines: Vec<(String, usize)> = ts.tokens.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(lines, vec![("a".into(), 1), ("b".into(), 4), ("d".into(), 6)]);
    }

    #[test]
    fn unterminated_literal_swallows_tail_without_panicking() {
        let ts = tokenize("let x = \"never closed ... Instant::now()");
        assert!(ts.tokens.iter().all(|t| t.text != "Instant"));
        let ts = tokenize("/* never closed Instant::now()");
        assert!(ts.tokens.is_empty());
    }
}
