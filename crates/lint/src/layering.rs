//! The crate-layering rule: parse `crates/*/Cargo.toml` and enforce the
//! workspace dependency DAG.
//!
//! The DAG is what keeps the reproduction honest at its seams: `sim`
//! stays a reusable substrate (it must never learn about the harness
//! crates that drive it), and `telemetry` stays leaf-like so the
//! recorder-off configuration is provably zero-overhead — nothing it
//! could call back into exists below it.
//!
//! Only `[dependencies]` sections are read; dev-dependencies are test
//! harness wiring (and an upward dev-dependency would be a cargo cycle
//! error anyway). Non-`marnet-*` dependencies are ignored: the vendored
//! stand-ins are outside the DAG.

use crate::diag::{Diagnostic, Rule};

/// Allowed `marnet-*` dependencies per crate (by short name). A crate
/// absent from this table is itself a finding: new crates must be placed
/// in the DAG deliberately.
pub const LAYERS: &[(&str, &[&str])] = &[
    // telemetry is the leaf: recorder-off must have nothing to call.
    ("telemetry", &[]),
    // lint is the auditor: it must never join the DAG it enforces.
    ("lint", &[]),
    ("sim", &["telemetry"]),
    // faults drives the sim engine and traces transitions; it must stay
    // below the protocol stack so any crate can inject faults.
    ("faults", &["sim", "telemetry"]),
    // flow is the fluid tier: it only needs the engine's event loop and
    // the trace vocabulary, and must stay below the protocol stack so
    // transports and scenarios can couple to it freely.
    ("flow", &["sim", "telemetry"]),
    ("radio", &["sim", "telemetry"]),
    ("transport", &["sim", "radio", "telemetry"]),
    ("core", &["sim", "radio", "transport", "telemetry"]),
    ("app", &["sim", "radio", "transport", "core", "telemetry"]),
    ("edge", &["sim", "radio", "transport", "core", "app", "telemetry", "faults"]),
    ("privacy", &["sim", "radio", "transport", "core", "app", "telemetry"]),
    // trainer owns the policy search (space, engines, Pareto artifacts)
    // and is generic over the evaluation closure: it may see the policy
    // vocabulary (core) and the seeded-substream rule (sim), never the
    // scenarios or the runner — the lab implements the inner loop and
    // depends on trainer, not the other way around.
    ("trainer", &["sim", "core"]),
    (
        "bench",
        &[
            "sim",
            "radio",
            "transport",
            "core",
            "app",
            "edge",
            "privacy",
            "telemetry",
            "faults",
            "flow",
        ],
    ),
    (
        "lab",
        &[
            "sim",
            "radio",
            "transport",
            "core",
            "app",
            "edge",
            "privacy",
            "telemetry",
            "bench",
            "faults",
            "flow",
            "trainer",
        ],
    ),
    // The umbrella crate re-exports everything runnable; the auditor
    // stays out of it (it is a dev tool, not part of the suite).
    (
        "marnet",
        &[
            "sim",
            "radio",
            "transport",
            "core",
            "app",
            "edge",
            "privacy",
            "telemetry",
            "bench",
            "lab",
            "faults",
            "flow",
            "trainer",
        ],
    ),
];

/// One `marnet-*` entry found in a `[dependencies]` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// Short name (`sim`, not `marnet-sim`).
    pub name: String,
    /// 1-based line of the dependency entry.
    pub line: usize,
}

/// Extracts the `marnet-*` dependencies of a manifest. Handles the forms
/// the workspace uses: `marnet-sim.workspace = true`,
/// `marnet-bench = { path = "../bench" }`, and plain `marnet-x = "…"`.
pub fn parse_deps(manifest: &str) -> Vec<Dep> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // Section header; exactly `[dependencies]` counts (not
            // `[dev-dependencies]`, `[workspace.dependencies]`, or
            // `[target.….dependencies]`).
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Key = everything before `=` or the `.workspace` shorthand dot.
        let key: &str = line.split(['=', '.', ' ', '\t']).next().unwrap_or("");
        if let Some(short) = key.strip_prefix("marnet-") {
            deps.push(Dep { name: short.to_string(), line: idx + 1 });
        }
    }
    deps
}

/// Checks one crate's manifest against the DAG. `crate_name` is the
/// short name (directory name under `crates/`, or `marnet` for the
/// umbrella); `rel_manifest` anchors the diagnostics.
pub fn check_crate(crate_name: &str, manifest: &str, rel_manifest: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some((_, allowed)) = LAYERS.iter().find(|(n, _)| *n == crate_name) else {
        out.push(Diagnostic {
            rule: Rule::Layering,
            file: rel_manifest.to_string(),
            line: 0,
            message: format!(
                "crate `{crate_name}` is not in the layering table; add it to \
                 crates/lint/src/layering.rs with its allowed dependencies"
            ),
        });
        return out;
    };
    for dep in parse_deps(manifest) {
        if !allowed.contains(&dep.name.as_str()) {
            out.push(Diagnostic {
                rule: Rule::Layering,
                file: rel_manifest.to_string(),
                line: dep.line,
                message: format!(
                    "`{crate_name}` must not depend on `marnet-{}`; allowed: [{}]",
                    dep.name,
                    allowed.join(", ")
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM_OK: &str = "
[package]
name = \"marnet-sim\"

[dependencies]
rand.workspace = true
marnet-telemetry.workspace = true

[dev-dependencies]
proptest.workspace = true
";

    #[test]
    fn workspace_shorthand_and_table_forms_parse() {
        let manifest = "
[dependencies]
marnet-sim.workspace = true
marnet-bench = { path = \"../bench\" }
serde.workspace = true
";
        let deps = parse_deps(manifest);
        let names: Vec<&str> = deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["sim", "bench"]);
    }

    #[test]
    fn dev_dependencies_are_ignored() {
        let manifest = "
[dev-dependencies]
marnet-bench.workspace = true
";
        assert!(parse_deps(manifest).is_empty());
    }

    #[test]
    fn workspace_dependency_table_is_ignored() {
        let manifest = "
[workspace.dependencies]
marnet-sim = { path = \"crates/sim\" }
";
        assert!(parse_deps(manifest).is_empty());
    }

    #[test]
    fn legal_layering_passes() {
        assert!(check_crate("sim", SIM_OK, "crates/sim/Cargo.toml").is_empty());
    }

    #[test]
    fn upward_dependency_is_flagged_with_line() {
        let manifest = "
[dependencies]
marnet-bench.workspace = true
";
        let d = check_crate("sim", manifest, "crates/sim/Cargo.toml");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::Layering);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("marnet-bench"));
    }

    #[test]
    fn unknown_crate_is_flagged() {
        let d = check_crate("shiny", "[dependencies]\n", "crates/shiny/Cargo.toml");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("layering table"));
    }

    #[test]
    fn telemetry_must_stay_leaf() {
        let manifest = "
[dependencies]
marnet-sim.workspace = true
";
        let d = check_crate("telemetry", manifest, "crates/telemetry/Cargo.toml");
        assert_eq!(d.len(), 1);
    }
}
