//! The source-level rules: determinism, panic-safety, hygiene.
//!
//! Everything here works on the lossy token stream of one file (see
//! [`crate::tokens`]); which rule families apply to a file is decided by
//! the workspace walker from its path (see [`crate::workspace`]).
//!
//! Two scoping decisions keep the pass honest without type information:
//!
//! * `#[cfg(test)]` / `#[test]` items are skipped — tests may read the
//!   environment or index slices freely; the invariants protect the
//!   simulation, not its test harness.
//! * Findings are suppressed only by an explicit, reasoned pragma on the
//!   same line or the line directly above ([`crate::pragma`]); a pragma
//!   that suppresses nothing is itself reported, so stale suppressions
//!   cannot linger.

use crate::diag::{Diagnostic, Rule};
use crate::pragma::{self, Pragma};
use crate::tokens::{tokenize, Token, TokenKind, TokenStream};

/// Which rule families apply to the file being scanned.
#[derive(Debug, Clone, Default)]
pub struct FileScope {
    /// Workspace-relative path (diagnostics anchor).
    pub rel_path: String,
    /// Determinism rules (wall-clock, thread-id, env-read, map-iter):
    /// library source of a sim-facing crate.
    pub determinism: bool,
    /// Panic-safety rules: one of the event-core hot-path modules.
    pub panic_path: bool,
    /// Allocation-discipline rule: one of the pooled hot-path modules.
    pub hot_alloc: bool,
    /// Hygiene rule (`#![forbid(unsafe_code)]`): a crate root.
    pub hygiene: bool,
}

/// Map-iteration methods whose visitation order reaches the caller.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Constructors that keep the default (randomized) hasher.
const DEFAULT_CTORS: &[&str] = &["new", "default", "with_capacity", "from"];

/// Macros that abort the current trial.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Scans one file, returning its (pragma-filtered) diagnostics.
pub fn scan_file(src: &str, scope: &FileScope) -> Vec<Diagnostic> {
    scan_stream(&tokenize(src), scope)
}

/// Scans an already-tokenized file (the workspace walker tokenizes once
/// and shares the stream with the call-graph builder).
pub fn scan_stream(stream: &TokenStream, scope: &FileScope) -> Vec<Diagnostic> {
    let toks = &stream.tokens;
    let (pragmas, pragma_errors) = pragma::collect(&stream.comments);
    let test_ranges = test_line_ranges(toks);
    let in_test = |line: usize| test_ranges.iter().any(|r| r.contains(&line));

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut push = |rule: Rule, line: usize, message: String| {
        raw.push(Diagnostic { rule, file: scope.rel_path.clone(), line, message });
    };

    if scope.determinism {
        scan_determinism(toks, &in_test, &mut push);
    }
    if scope.panic_path {
        scan_panic_path(toks, &in_test, &mut push);
    }
    if scope.hot_alloc {
        scan_hot_alloc(toks, &in_test, &mut push);
    }
    if scope.hygiene && !has_forbid_unsafe(toks) {
        push(Rule::UnsafeHygiene, 1, "crate root is missing `#![forbid(unsafe_code)]`".into());
    }

    let mut used = vec![false; pragmas.len()];
    let mut findings = suppress(raw, &pragmas, &mut used);

    for e in pragma_errors {
        if !in_test(e.line) {
            findings.push(Diagnostic {
                rule: Rule::BadPragma,
                file: scope.rel_path.clone(),
                line: e.line,
                message: e.message,
            });
        }
    }
    for (p, used) in pragmas.iter().zip(used) {
        // Only audit pragmas for rules this file is actually subject to —
        // and leave test code alone. (Pragmas suppressing call-graph-
        // propagated findings in out-of-scope files are honored by the
        // workspace walker but not audited here: the walker cannot know
        // locally whether a reachability path still exists.)
        let enabled = match p.rule {
            Rule::WallClock
            | Rule::ThreadId
            | Rule::EnvRead
            | Rule::MapIter
            | Rule::FloatOrder
            | Rule::UnseededRng => scope.determinism,
            Rule::PanicPath => scope.panic_path,
            Rule::HotPathAlloc => scope.hot_alloc,
            Rule::UnsafeHygiene => scope.hygiene,
            _ => false,
        };
        if enabled && !used && !in_test(p.line) {
            findings.push(Diagnostic {
                rule: Rule::UnusedPragma,
                file: scope.rel_path.clone(),
                line: p.line,
                message: format!("pragma `allow({})` suppresses nothing here; remove it", p.rule),
            });
        }
    }
    findings
}

/// Applies pragma suppression to raw findings: a pragma silences
/// findings of its rule on its own line or the line directly below. The
/// same-line pragma is preferred, so consecutive pragma'd lines each
/// consume their own pragma instead of the first one claiming both.
/// Marks consumed pragmas in `used` (for the stale-pragma audit).
pub(crate) fn suppress(
    raw: Vec<Diagnostic>,
    pragmas: &[Pragma],
    used: &mut [bool],
) -> Vec<Diagnostic> {
    let mut findings: Vec<Diagnostic> = Vec::new();
    'raw: for d in raw {
        for same_line in [true, false] {
            for (i, p) in pragmas.iter().enumerate() {
                let hit = if same_line { p.line == d.line } else { p.line + 1 == d.line };
                if p.rule == d.rule && hit {
                    used[i] = true;
                    continue 'raw;
                }
            }
        }
        findings.push(d);
    }
    findings
}

/// True when the stream carries `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(8).any(|w| texts(w) == ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"])
}

fn texts(w: &[Token]) -> Vec<&str> {
    w.iter().map(|t| t.text.as_str()).collect()
}

fn word_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Word && t.text == text)
}

fn punct_at(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

/// Line ranges covered by `#[test]` / `#[cfg(test)]` items: from the
/// attribute to the closing brace of the item it decorates. Shared with
/// the call-graph builder, which excludes test definitions from roots.
pub(crate) fn test_line_ranges(toks: &[Token]) -> Vec<std::ops::RangeInclusive<usize>> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if !(punct_at(toks, i, "#") && punct_at(toks, i + 1, "[")) {
            i += 1;
            continue;
        }
        // Find the matching `]`, collecting the attribute's words.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut attr_words: Vec<&str> = Vec::new();
        while j < toks.len() && depth > 0 {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {
                    if toks[j].kind == TokenKind::Word {
                        attr_words.push(&toks[j].text);
                    }
                }
            }
            j += 1;
        }
        let is_test_attr = attr_words.contains(&"test")
            && matches!(attr_words.first(), Some(&"cfg") | Some(&"test"));
        if !is_test_attr {
            i = j;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes, then consume tokens to the item's
        // opening `{` (a `;` first means `mod x;` — nothing to skip).
        let mut k = j;
        loop {
            if k + 1 < toks.len() && punct_at(toks, k, "#") && punct_at(toks, k + 1, "[") {
                let mut d = 1usize;
                k += 2;
                while k < toks.len() && d > 0 {
                    match toks[k].text.as_str() {
                        "[" => d += 1,
                        "]" => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            break;
        }
        let mut body_end = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                ";" => break,
                "{" => {
                    let mut d = 1usize;
                    k += 1;
                    while k < toks.len() && d > 0 {
                        match toks[k].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    body_end = Some(if k > 0 { toks[k - 1].line } else { start_line });
                    break;
                }
                _ => k += 1,
            }
        }
        if let Some(end_line) = body_end {
            ranges.push(start_line..=end_line);
            i = k;
        } else {
            i = j;
        }
    }
    ranges
}

/// The determinism family: wall-clock, thread identity, environment
/// reads, and default-hasher map iteration.
fn scan_determinism(
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(Rule, usize, String),
) {
    for i in 0..toks.len() {
        let line = toks[i].line;
        if in_test(line) {
            continue;
        }
        if word_at(toks, i, "Instant") && punct_at(toks, i + 1, "::") && word_at(toks, i + 2, "now")
        {
            push(Rule::WallClock, line, "`Instant::now()` reads the wall clock".into());
        }
        if word_at(toks, i, "SystemTime")
            && punct_at(toks, i + 1, "::")
            && word_at(toks, i + 2, "now")
        {
            push(Rule::WallClock, line, "`SystemTime::now()` reads the wall clock".into());
        }
        if word_at(toks, i, "std") && punct_at(toks, i + 1, "::") && word_at(toks, i + 2, "time") {
            push(
                Rule::WallClock,
                line,
                "`std::time` in a sim-facing crate; simulation code must use SimTime".into(),
            );
        }
        if word_at(toks, i, "thread")
            && punct_at(toks, i + 1, "::")
            && word_at(toks, i + 2, "current")
        {
            push(
                Rule::ThreadId,
                line,
                "`thread::current()` leaks the host schedule into sim state".into(),
            );
        }
        if word_at(toks, i, "std") && punct_at(toks, i + 1, "::") && word_at(toks, i + 2, "env") {
            push(
                Rule::EnvRead,
                line,
                "`std::env` read in a sim-facing crate; runs must be a function of the spec".into(),
            );
        }
    }
    scan_unseeded_rng(toks, in_test, push);
    scan_map_iteration(toks, in_test, push);
    scan_float_order(toks, in_test, push);
}

/// Unseeded randomness: OS-entropy constructors and the convenience
/// global. `derive_rng(seed, label)` is the only legal source. Separate
/// from the rest of the determinism family so the workspace walker can
/// propagate it alone through the call graph.
pub(crate) fn scan_unseeded_rng(
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(Rule, usize, String),
) {
    for i in 0..toks.len() {
        let line = toks[i].line;
        if in_test(line) {
            continue;
        }
        if toks[i].kind == TokenKind::Word
            && ["thread_rng", "from_entropy", "from_os_rng", "OsRng"]
                .contains(&toks[i].text.as_str())
        {
            push(
                Rule::UnseededRng,
                line,
                format!(
                    "`{}` draws OS entropy; use derive_rng(seed, label) so the \
                     trial replays byte-identically",
                    toks[i].text
                ),
            );
        }
        if word_at(toks, i, "rand") && punct_at(toks, i + 1, "::") && word_at(toks, i + 2, "random")
        {
            push(
                Rule::UnseededRng,
                line,
                "`rand::random` uses the unseeded thread-local generator; use \
                 derive_rng(seed, label)"
                    .into(),
            );
        }
    }
}

/// Sort / min / max adapters whose comparator decides an order the
/// caller observes.
const ORDER_METHODS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "min_by",
    "max_by",
    "binary_search_by",
];

/// Float-order hazards: comparators built on `partial_cmp` (NaN makes
/// the produced order undefined and input-order dependent) and float
/// accumulation over default-hasher map iteration (the sum's rounding
/// depends on visitation order). `total_cmp` is the fix for the former,
/// an ordered container for the latter.
fn scan_float_order(
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(Rule, usize, String),
) {
    let map_vars = collect_map_vars(toks);
    for i in 0..toks.len() {
        let line = toks[i].line;
        if in_test(line) {
            continue;
        }
        // `.sort_by(|a, b| a.partial_cmp(b) …)` and friends: scan the
        // comparator's argument list for a `partial_cmp` call.
        if punct_at(toks, i, ".")
            && toks.get(i + 1).is_some_and(|m| {
                m.kind == TokenKind::Word && ORDER_METHODS.contains(&m.text.as_str())
            })
            && punct_at(toks, i + 2, "(")
        {
            let mut depth = 1usize;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 && j - i < 120 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "partial_cmp" if toks[j].kind == TokenKind::Word => {
                        push(
                            Rule::FloatOrder,
                            toks[i + 1].line,
                            format!(
                                "`{}` comparator uses `partial_cmp`; NaN yields None and \
                                 the produced order becomes input-order dependent — use \
                                 `total_cmp`",
                                toks[i + 1].text
                            ),
                        );
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // `map.values().sum::<f64>()` — float reduction over an
        // unordered visitation.
        if toks[i].kind == TokenKind::Word
            && map_vars.contains(&toks[i].text.as_str())
            && punct_at(toks, i + 1, ".")
            && toks.get(i + 2).is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && punct_at(toks, i + 3, "(")
            && punct_at(toks, i + 4, ")")
            && punct_at(toks, i + 5, ".")
            && toks.get(i + 6).is_some_and(|m| {
                // `sum::<f64>()` / `product::<f32>()`, or `fold(0.0, …)`
                // (the tokenizer splits the float literal into `0 . 0`).
                match m.text.as_str() {
                    "sum" | "product" => toks[i + 6..toks.len().min(i + 12)]
                        .iter()
                        .any(|t| t.text == "f64" || t.text == "f32"),
                    "fold" => {
                        punct_at(toks, i + 7, "(")
                            && toks
                                .get(i + 8)
                                .is_some_and(|t| t.text.chars().all(|c| c.is_ascii_digit()))
                            && punct_at(toks, i + 9, ".")
                    }
                    _ => false,
                }
            })
        {
            push(
                Rule::FloatOrder,
                line,
                format!(
                    "float `{}` over default-hasher map `{}`; accumulation order — and \
                     therefore rounding — follows hasher state, so the result is not \
                     reproducible — use an ordered container or sort first",
                    toks[i + 6].text,
                    toks[i].text
                ),
            );
        }
    }
}

/// Identifiers declared or assigned as default-hasher
/// `HashMap`/`HashSet` in this file (shared by the map-iter and
/// float-order rules).
fn collect_map_vars(toks: &[Token]) -> Vec<&str> {
    let mut map_vars: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Word || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        let is_map = t.text == "HashMap";
        // `name: HashMap<…>` — declaration with a type annotation.
        let annotated = i >= 2
            && punct_at(toks, i - 1, ":")
            && toks[i - 2].kind == TokenKind::Word
            && punct_at(toks, i + 1, "<")
            && default_hasher(toks, i + 1, is_map);
        // `name = HashMap::new()` — inferred binding to a constructor
        // (an annotated binding never matches: the token before `=` is
        // the annotation's closing `>`, not the name).
        let constructed = i >= 2
            && punct_at(toks, i - 1, "=")
            && toks[i - 2].kind == TokenKind::Word
            && punct_at(toks, i + 1, "::")
            && toks.get(i + 2).is_some_and(|c| DEFAULT_CTORS.contains(&c.text.as_str()));
        if annotated || constructed {
            let name = toks[i - 2].text.as_str();
            if !map_vars.contains(&name) {
                map_vars.push(name);
            }
        }
    }
    map_vars
}

/// Default-hasher map iteration: flag iteration over any identifier
/// tracked by [`collect_map_vars`].
fn scan_map_iteration(
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(Rule, usize, String),
) {
    let map_vars = collect_map_vars(toks);
    if map_vars.is_empty() {
        return;
    }

    for i in 0..toks.len() {
        let line = toks[i].line;
        if in_test(line) {
            continue;
        }
        // `name.iter()` and friends, including `self.field.iter()`.
        if toks[i].kind == TokenKind::Word
            && map_vars.contains(&toks[i].text.as_str())
            && punct_at(toks, i + 1, ".")
            && toks.get(i + 2).is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
            && punct_at(toks, i + 3, "(")
        {
            push(
                Rule::MapIter,
                line,
                format!(
                    "iteration over default-hasher map `{}` (`.{}()`); order depends on \
                     hasher state — use BTreeMap/FxHashMap or sort the drain",
                    toks[i].text,
                    toks[i + 2].text
                ),
            );
        }
        // `for … in &map { … }` — direct loop over the map value.
        if word_at(toks, i, "for") {
            // Find the `in`, then inspect the loop expression up to `{`.
            let mut j = i + 1;
            let mut guard = 0;
            while j < toks.len() && !word_at(toks, j, "in") {
                if toks[j].text == "{" || guard > 24 {
                    j = toks.len();
                    break;
                }
                guard += 1;
                j += 1;
            }
            if j >= toks.len() {
                continue;
            }
            let mut k = j + 1;
            let mut expr_words: Vec<&Token> = Vec::new();
            let mut calls = false;
            while k < toks.len() && toks[k].text != "{" && k - j < 24 {
                if toks[k].text == "(" {
                    calls = true;
                }
                if toks[k].kind == TokenKind::Word {
                    expr_words.push(&toks[k]);
                }
                k += 1;
            }
            if calls {
                continue; // `for x in map.iter()` is caught above.
            }
            if let Some(hit) = expr_words.iter().find(|w| map_vars.contains(&w.text.as_str())) {
                push(
                    Rule::MapIter,
                    toks[i].line,
                    format!(
                        "`for … in` over default-hasher map `{}`; order depends on hasher \
                         state — use BTreeMap/FxHashMap or sort first",
                        hit.text
                    ),
                );
            }
        }
    }
}

/// Counts whether the generic argument list opening at `toks[open]`
/// (which is `<`) leaves the default hasher in place: a third parameter
/// on `HashMap` (second on `HashSet`) means a custom hasher.
fn default_hasher(toks: &[Token], open: usize, is_map: bool) -> bool {
    let mut angle = 1usize;
    let mut round = 0usize;
    let mut square = 0usize;
    let mut commas = 0usize;
    let mut i = open + 1;
    while i < toks.len() && angle > 0 {
        match toks[i].text.as_str() {
            "<" => angle += 1,
            // `->` inside `Box<dyn Fn() -> T>` must not close the list.
            ">" if !punct_at(toks, i - 1, "-") => angle -= 1,
            "(" => round += 1,
            ")" => round = round.saturating_sub(1),
            "[" => square += 1,
            "]" => square = square.saturating_sub(1),
            "," if angle == 1 && round == 0 && square == 0 => commas += 1,
            _ => {}
        }
        i += 1;
    }
    let max_commas = if is_map { 1 } else { 0 };
    commas <= max_commas
}

/// The panic-safety family for hot-path modules: `.unwrap()`,
/// `.expect()`, aborting macros, and slice indexing. Also run, via the
/// call graph, over helpers reachable from hot-path entry points.
pub(crate) fn scan_panic_path(
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(Rule, usize, String),
) {
    for i in 0..toks.len() {
        let line = toks[i].line;
        if in_test(line) {
            continue;
        }
        if punct_at(toks, i, ".")
            && toks.get(i + 1).is_some_and(|w| {
                w.kind == TokenKind::Word && (w.text == "unwrap" || w.text == "expect")
            })
            && punct_at(toks, i + 2, "(")
        {
            push(
                Rule::PanicPath,
                toks[i + 1].line,
                format!(
                    "`.{}()` in an event-core hot-path module can abort a trial mid-run",
                    toks[i + 1].text
                ),
            );
        }
        if toks[i].kind == TokenKind::Word
            && PANIC_MACROS.contains(&toks[i].text.as_str())
            && punct_at(toks, i + 1, "!")
        {
            push(
                Rule::PanicPath,
                line,
                format!("`{}!` in an event-core hot-path module", toks[i].text),
            );
        }
        // Slice indexing: `expr[` where expr ends in a word, `)` or `]`.
        // Keywords that cannot end an indexable expression are excluded so
        // slice *types* (`&mut [T]`, `dyn [..]`, `in [..]`) do not fire.
        const NON_EXPR_KEYWORDS: &[&str] =
            &["mut", "dyn", "in", "return", "break", "else", "as", "const", "static"];
        if punct_at(toks, i, "[")
            && i > 0
            && (toks[i - 1].kind == TokenKind::Word
                || toks[i - 1].text == ")"
                || toks[i - 1].text == "]")
            && !NON_EXPR_KEYWORDS.contains(&toks[i - 1].text.as_str())
        {
            push(
                Rule::PanicPath,
                line,
                format!(
                    "slice indexing after `{}` can panic on a bad bound; prove the \
                     invariant or use `get`",
                    toks[i - 1].text
                ),
            );
        }
    }
}

/// The allocation-discipline family for pooled hot-path modules: fresh
/// heap allocations that should instead recycle through `PayloadPool`
/// slots or retained scratch buffers. `Vec::new()` itself is lazy, but a
/// vector born on the hot path grows on the hot path — cold-path births
/// (constructors, drains) carry a reasoned pragma instead.
pub(crate) fn scan_hot_alloc(
    toks: &[Token],
    in_test: &dyn Fn(usize) -> bool,
    push: &mut dyn FnMut(Rule, usize, String),
) {
    for i in 0..toks.len() {
        let line = toks[i].line;
        if in_test(line) {
            continue;
        }
        let ctor = (word_at(toks, i, "Vec") || word_at(toks, i, "Box"))
            && punct_at(toks, i + 1, "::")
            && word_at(toks, i + 2, "new");
        if ctor {
            push(
                Rule::HotPathAlloc,
                line,
                format!(
                    "`{}::new` in a pooled hot-path module; recycle through a pool or \
                     scratch buffer (or pragma a cold path)",
                    toks[i].text
                ),
            );
        }
        if word_at(toks, i, "vec") && punct_at(toks, i + 1, "!") {
            push(
                Rule::HotPathAlloc,
                line,
                "`vec!` allocates per call in a pooled hot-path module; recycle through \
                 a pool or scratch buffer (or pragma a cold path)"
                    .into(),
            );
        }
        if punct_at(toks, i, ".") && word_at(toks, i + 1, "to_vec") && punct_at(toks, i + 2, "(") {
            push(
                Rule::HotPathAlloc,
                toks[i + 1].line,
                "`.to_vec()` deep-copies in a pooled hot-path module; recycle through \
                 a pool or scratch buffer (or pragma a cold path)"
                    .into(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str, determinism: bool, panic_path: bool, hygiene: bool) -> Vec<Diagnostic> {
        scan_file(
            src,
            &FileScope {
                rel_path: "x.rs".into(),
                determinism,
                panic_path,
                hot_alloc: panic_path,
                hygiene,
            },
        )
    }

    #[test]
    fn wall_clock_and_env_fire_in_sim_scope_only() {
        let src = "fn f() { let t = Instant::now(); let h = std::env::var(\"HOME\"); }";
        let d = scan(src, true, false, false);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].rule, Rule::WallClock);
        assert_eq!(d[1].rule, Rule::EnvRead);
        assert!(scan(src, false, false, false).is_empty());
    }

    #[test]
    fn literals_and_comments_never_fire() {
        let src = r#"
            // Instant::now() in a comment
            fn f() -> &'static str { "Instant::now(); std::env::var" }
        "#;
        assert!(scan(src, true, true, false).is_empty());
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "
            fn hot() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let _ = std::env::var(\"CASES\"); x.unwrap(); }
            }
        ";
        assert!(scan(src, true, true, false).is_empty());
    }

    #[test]
    fn unseeded_randomness_is_flagged() {
        let src = "
            fn f() -> f64 {
                let mut rng = rand::thread_rng();
                let a: f64 = rand::random();
                let b = SmallRng::from_entropy();
                let mut c = [0u8; 8];
                OsRng.fill_bytes(&mut c);
                a
            }
            fn ok(seed: u64) { let rng = derive_rng(seed, \"faults/0/outage\"); }
        ";
        let d = scan(src, true, false, false);
        assert_eq!(d.len(), 4, "{d:?}");
        assert!(d.iter().all(|d| d.rule == Rule::UnseededRng));
        assert!(scan(src, false, false, false).is_empty());
    }

    #[test]
    fn map_iteration_is_flagged_but_lookup_is_not() {
        let src = "
            use std::collections::HashMap;
            struct S { names: HashMap<String, u32> }
            fn ok(s: &S) -> Option<&u32> { s.names.get(\"x\") }
            fn bad(s: &S) -> usize { s.names.iter().count() }
            fn worse(s: &S) { for (k, v) in &s.names { drop((k, v)); } }
        ";
        let d = scan(src, true, false, false);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.rule == Rule::MapIter));
    }

    #[test]
    fn fx_and_custom_hashers_are_legal() {
        let src = "
            fn f() {
                let a: FxHashMap<u64, u64> = FxHashMap::default();
                let b: HashMap<u64, u64, BuildHasherDefault<FxHasher>> = HashMap::default();
                for x in a.iter() {}
                for y in b.keys() {}
            }
        ";
        let d = scan(src, true, false, false);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tuple_keys_do_not_fake_a_custom_hasher() {
        let src = "
            fn f(m: HashMap<(u32, u32), Vec<u64>>) -> usize { m.keys().count() }
        ";
        let d = scan(src, true, false, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::MapIter);
    }

    #[test]
    fn float_order_flags_partial_cmp_comparators() {
        let src = "
            fn f(xs: &mut Vec<f64>) {
                xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
                xs.sort_unstable_by(|a, b| a.partial_cmp(b).expect(\"finite\"));
                let _ = xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap());
            }
            fn ok(xs: &mut Vec<f64>) {
                xs.sort_by(|a, b| a.total_cmp(b));
                xs.sort_unstable();
            }
        ";
        let d = scan(src, true, false, false);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == Rule::FloatOrder));
        assert!(scan(src, false, false, false).is_empty());
    }

    #[test]
    fn float_order_flags_float_sums_over_hashed_maps() {
        let src = "
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, f64>) -> f64 {
                let shares: HashMap<u32, f64> = HashMap::new();
                let a: f64 = shares.values().sum::<f64>();
                let b = shares.values().fold(0.0, |acc, v| acc + v);
                a + b
            }
            fn ok(m: &HashMap<u32, u64>) -> u64 {
                let counts: HashMap<u32, u64> = HashMap::new();
                counts.values().sum::<u64>()
            }
        ";
        let d = scan(src, true, false, false);
        let float_order = d.iter().filter(|d| d.rule == Rule::FloatOrder).count();
        assert_eq!(float_order, 2, "{d:?}");
        // The map-iter rule fires on the same lines independently.
        assert!(d.iter().any(|d| d.rule == Rule::MapIter));
    }

    #[test]
    fn panic_path_rules() {
        let src = "
            fn hot(v: &[u8], i: usize) -> u8 {
                let x = v.first().unwrap();
                if *x > 3 { panic!(\"boom\") }
                v[i]
            }
        ";
        let d = scan(src, false, true, false);
        let rules: Vec<Rule> = d.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec![Rule::PanicPath; 3], "{d:?}");
    }

    #[test]
    fn hot_path_allocs_are_flagged_and_pragma_suppresses() {
        let src = "
            fn hot(xs: &[u8]) -> Vec<u8> {
                let a: Vec<u8> = Vec::new();
                let b = vec![0u8; 4];
                let c = Box::new(4u32);
                drop((a, b, c));
                xs.to_vec()
            }
            // marnet-lint: allow(hot-path-alloc): constructor runs once per sim, not per event
            fn cold() -> Vec<u8> { Vec::new() }
        ";
        let d = scan(src, false, true, false);
        assert_eq!(d.len(), 4, "{d:?}");
        assert!(d.iter().all(|d| d.rule == Rule::HotPathAlloc));
        // Without hot-path scope the family stays silent.
        assert!(scan(src, true, false, false).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let d = scan("fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }", false, true, false);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn array_literals_and_attributes_are_not_indexing() {
        let src = "
            #[derive(Debug)]
            struct S;
            fn f() -> [u8; 2] { let buf: [u8; 2] = [0u8; 2]; buf }
        ";
        let d = scan(src, false, true, false);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn pragma_suppresses_and_stale_pragma_reports() {
        let src = "
            // marnet-lint: allow(wall-clock): measuring the host for a bench report
            fn f() { let t = Instant::now(); }
            // marnet-lint: allow(wall-clock): stale
            fn g() {}
        ";
        let d = scan(src, true, false, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::UnusedPragma);
    }

    #[test]
    fn reasonless_pragma_is_bad() {
        let src = "fn f() {} // marnet-lint: allow(env-read)";
        let d = scan(src, true, false, false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::BadPragma);
    }

    #[test]
    fn hygiene_checks_forbid_unsafe() {
        assert_eq!(scan("#![forbid(unsafe_code)]\n", false, false, true).len(), 0);
        let d = scan("//! docs only\n", false, false, true);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnsafeHygiene);
    }
}
