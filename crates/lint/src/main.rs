//! The `marnet-lint` CLI.
//!
//! ```text
//! marnet-lint [--root PATH] [--format text|json] [--deny-all]
//!             [--deny RULE] [--allow RULE] [--list-rules]
//!             [--call-graph PATH]
//! ```
//!
//! All rules are denied by default (strict by default); `--allow RULE`
//! downgrades one to report-only, `--deny RULE` re-enables it, and
//! `--deny-all` resets to the strict default (what CI passes, so the
//! gate survives accidental `--allow` creep in the invocation).
//!
//! Exit codes follow the workspace convention: 0 ok (no denied
//! findings), 1 findings, 2 usage error.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use marnet_lint::diag::ALL_RULES;
use marnet_lint::{find_workspace_root, lint_workspace, render_json, render_text, Rule};

const USAGE: &str = "usage: marnet-lint [--root PATH] [--format text|json] [--deny-all]
                   [--deny RULE] [--allow RULE] [--list-rules]
                   [--call-graph PATH]

--call-graph PATH writes the workspace call graph as JSON (`-` for
stdout); CI diffs it against the committed baseline.

exit codes: 0 ok, 1 findings, 2 usage error";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("marnet-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut denied: BTreeSet<Rule> = ALL_RULES.iter().copied().collect();
    let mut call_graph_out: Option<String> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value =
            |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(value("--root")?)),
            "--format" => {
                format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`\n{USAGE}")),
                }
            }
            "--deny-all" => denied = ALL_RULES.iter().copied().collect(),
            "--call-graph" => call_graph_out = Some(value("--call-graph")?),
            "--deny" => {
                denied.insert(parse_rule(&value("--deny")?)?);
            }
            "--allow" => {
                denied.remove(&parse_rule(&value("--allow")?)?);
            }
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{rule}: {}", rule.rationale());
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or_else(|| "no workspace Cargo.toml above the current directory".to_string())?
        }
    };
    if !root.join("Cargo.toml").is_file() {
        return Err(format!("{} has no Cargo.toml", root.display()));
    }

    let report = lint_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    if let Some(path) = call_graph_out {
        let json = report.call_graph.render_json();
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "call graph: {} fns, {} call edges -> {path}",
                report.call_graph.fns.len(),
                report.call_graph.edges.len()
            );
        }
    }
    match format {
        Format::Text => {
            print!("{}", render_text(&report.findings));
            eprintln!(
                "scanned {} files across {} crates",
                report.files_scanned, report.crates_checked
            );
        }
        Format::Json => print!("{}", render_json(&report.findings)),
    }

    let denied_hits = report.findings.iter().filter(|d| denied.contains(&d.rule)).count();
    if denied_hits > 0 {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn parse_rule(name: &str) -> Result<Rule, String> {
    Rule::from_name(name).ok_or_else(|| {
        let known: Vec<&str> = ALL_RULES.iter().map(|r| r.name()).collect();
        format!("unknown rule `{name}` (known: {})\n{USAGE}", known.join(", "))
    })
}
