//! The suppression pragma: `// marnet-lint: allow(<rule>): <reason>`.
//!
//! Suppressions are part of the audit trail, so the grammar is strict: a
//! plain `//` comment (doc comments are documentation, not
//! configuration), the literal `marnet-lint:` marker, `allow(<rule>)`
//! with a known rule name, and a non-empty reason after the second
//! colon. Anything that starts with the marker but does not parse is
//! itself a finding ([`crate::diag::Rule::BadPragma`]) — a typo must not
//! silently fail to suppress.
//!
//! A pragma suppresses findings of its rule on its own line and on the
//! line directly below it, so both placements read naturally:
//!
//! ```text
//! let t0 = Instant::now(); // marnet-lint: allow(wall-clock): bench timer
//! // marnet-lint: allow(wall-clock): bench timer measures host elapsed
//! let t1 = Instant::now();
//! ```

use crate::diag::Rule;
use crate::tokens::LineComment;

/// A parsed suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// The rule being suppressed.
    pub rule: Rule,
    /// The (non-empty) justification.
    pub reason: String,
    /// 1-based line the pragma comment sits on.
    pub line: usize,
}

/// A comment that tried to be a pragma and failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
}

const MARKER: &str = "marnet-lint:";

/// Extracts pragmas (and malformed pragma attempts) from the line
/// comments of one file.
pub fn collect(comments: &[LineComment]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        // Strip doc-comment sigils so `/// marnet-lint: …` is diagnosed
        // as a doc-comment pragma rather than silently ignored.
        let body = c.text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        if c.doc {
            errors.push(PragmaError {
                message: "pragma in a doc comment has no effect; use a plain `//` comment".into(),
                line: c.line,
            });
            continue;
        }
        match parse_body(rest) {
            Ok((rule, reason)) => pragmas.push(Pragma { rule, reason, line: c.line }),
            Err(message) => errors.push(PragmaError { message, line: c.line }),
        }
    }
    (pragmas, errors)
}

/// Parses `allow(<rule>): <reason>` (the part after the marker).
fn parse_body(rest: &str) -> Result<(Rule, String), String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>): <reason>` after `marnet-lint:`".into());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `allow(` in pragma".into());
    };
    let rule_name = rest[..close].trim();
    let Some(rule) = Rule::from_name(rule_name) else {
        return Err(format!("unknown rule `{rule_name}` in pragma"));
    };
    let after = rest[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err("pragma requires a reason: `allow(<rule>): <reason>`".into());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("pragma reason must not be empty".into());
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(text: &str, line: usize) -> LineComment {
        LineComment { text: text.into(), line, doc: false }
    }

    #[test]
    fn well_formed_pragma_parses() {
        let (p, e) =
            collect(&[comment(" marnet-lint: allow(wall-clock): bench timers are host-side", 7)]);
        assert!(e.is_empty());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rule, Rule::WallClock);
        assert_eq!(p[0].reason, "bench timers are host-side");
        assert_eq!(p[0].line, 7);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let (p, e) = collect(&[
            comment(" marnet-lint: allow(wall-clock)", 1),
            comment(" marnet-lint: allow(wall-clock):   ", 2),
        ]);
        assert!(p.is_empty());
        assert_eq!(e.len(), 2);
        assert!(e[0].message.contains("requires a reason"));
        assert!(e[1].message.contains("must not be empty"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let (p, e) = collect(&[comment(" marnet-lint: allow(warp-drive): because", 3)]);
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("warp-drive"));
    }

    #[test]
    fn doc_comments_cannot_carry_pragmas() {
        let (p, e) = collect(&[LineComment {
            text: "/ marnet-lint: allow(env-read): nope".into(),
            line: 4,
            doc: true,
        }]);
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let (p, e) = collect(&[comment(" just a note about HashMap", 1)]);
        assert!(p.is_empty() && e.is_empty());
    }
}
