//! A conservative intra-workspace call graph, built from the same lossy
//! token streams the rules scan (see [`crate::tokens`]).
//!
//! The graph exists so rule families whose scope is a *set of entry
//! points* — panic-safety in the event-core hot path, allocation
//! discipline in the pooled modules, seeded randomness in sim-facing
//! code — can follow calls out of those entry points and audit the
//! helpers they lean on, instead of trusting a hand-maintained file
//! list. `marnet-lint --call-graph PATH` emits the graph as a stable
//! JSON artifact that CI diffs against the committed baseline.
//!
//! ## Soundness model (token-level, no type information)
//!
//! Definitions are `fn name` tokens, qualified by the crate, the file's
//! module path, and any enclosing `mod` / `impl` / `trait` blocks (the
//! impl'd *type name* stands in for the impl block, so `SimCtx::push`
//! resolves like a path). Call sites come in three kinds, decreasingly
//! precise:
//!
//! * **direct** — a bare `name(…)`: resolved to the same-file definition
//!   with the longest shared module prefix (so a shadowing local `fn`
//!   wins over a sibling module's), else a unique same-crate match,
//!   else a unique workspace match, else every same-crate candidate
//!   (over-approximation, never silence).
//! * **path** — `a::b::name(…)`: resolved to every definition whose
//!   qualified path ends with those segments (`crate`/`self`/`super`
//!   prefixes are stripped; `Self::` resolves within the caller's
//!   module first).
//! * **method** — `recv.name(…)`: the receiver's type is unknown, so
//!   the edge conservatively targets *every* workspace `fn` of that
//!   name. Reachability propagation only follows a method edge when the
//!   name is unambiguous (exactly one definition) *and* the callee sits
//!   in the caller's crate — a workspace-unique name is still usually a
//!   std-trait method at the call site (`.collect()` resolves to
//!   `Iterator::collect`, not a stray workspace `fn collect`), and the
//!   same-crate guard keeps that noise out. The trade is a little
//!   completeness for not marking the whole workspace reachable through
//!   `push`/`new`-style names; the edge itself is still in the graph
//!   and the JSON artifact.
//!
//! Calls that resolve to no workspace definition (std, dependencies,
//! tuple-struct constructors, enum variants) produce no edge. Test-only
//! definitions (`#[cfg(test)]` / `#[test]` ranges) are excluded from
//! roots and never traversed: the invariants protect the simulation,
//! not its harness.

use std::collections::{BTreeMap, BTreeSet};

use crate::tokens::{Token, TokenKind, TokenStream};

/// Schema version of the JSON artifact emitted by [`CallGraph::render_json`].
pub const CALLGRAPH_SCHEMA_VERSION: u32 = 1;

/// One function definition discovered in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Fully qualified path: crate, file modules, `mod`/`impl`/`trait`
    /// segments, then the name (e.g. `sim::engine::SimCtx::push`).
    pub path: String,
    /// Workspace-relative file (forward slashes).
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based first and last line of the body (equal to `line` for
    /// bodyless trait signatures).
    pub span: (usize, usize),
    /// Token-index range of the body within the file's stream
    /// (empty for bodyless signatures).
    pub tok_span: (usize, usize),
    /// Index of the file in the builder's input (callers map this back
    /// to the token stream for span-scoped scanning).
    pub file_idx: usize,
    /// True when the definition sits inside a `#[cfg(test)]` / `#[test]`
    /// range; test definitions are never roots and never traversed.
    pub is_test: bool,
}

/// How a call site was resolved (see the module docs for precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Bare `name(…)` resolved by module proximity.
    Direct,
    /// Qualified `a::b::name(…)` resolved by path suffix.
    Path,
    /// `recv.name(…)` resolved to every definition of that name.
    Method,
}

impl EdgeKind {
    /// Wire name used in the JSON artifact.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Direct => "direct",
            EdgeKind::Path => "path",
            EdgeKind::Method => "method",
        }
    }
}

/// One resolved call: `fns[from]` calls `fns[to]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Caller index into [`CallGraph::fns`].
    pub from: usize,
    /// Callee index into [`CallGraph::fns`].
    pub to: usize,
    /// Resolution precision.
    pub kind: EdgeKind,
    /// 1-based line of the call site.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every discovered definition, in (file, line) order.
    pub fns: Vec<FnDef>,
    /// Every resolved call, deduplicated.
    pub edges: Vec<Edge>,
    /// Number of definitions sharing each name (method-edge ambiguity).
    name_counts: BTreeMap<String, usize>,
    /// Adjacency: outgoing edge indices per function.
    out: Vec<Vec<usize>>,
}

/// One file handed to [`CallGraph::build`]: lint crate name,
/// workspace-relative path, and its token stream.
pub struct FileInput<'a> {
    /// Short crate name (`sim`, not `marnet-sim`).
    pub crate_name: &'a str,
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// The file's token stream.
    pub stream: &'a TokenStream,
}

impl std::fmt::Debug for FileInput<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileInput").field("rel_path", &self.rel_path).finish()
    }
}

/// Rust keywords that can precede `(` without being a call.
const NON_CALL_WORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "break", "continue", "move", "in", "let",
    "else", "as", "fn", "where", "await", "unsafe", "dyn", "impl", "ref", "mut",
];

impl CallGraph {
    /// Builds the graph over every input file: collect definitions, then
    /// resolve call sites. Deterministic for a given input order.
    pub fn build(files: &[FileInput<'_>]) -> CallGraph {
        let mut g = CallGraph::default();
        for (file_idx, f) in files.iter().enumerate() {
            collect_defs(f, file_idx, &mut g.fns);
        }
        for def in &g.fns {
            *g.name_counts.entry(def.name.clone()).or_insert(0) += 1;
        }
        let by_name: BTreeMap<&str, Vec<usize>> = {
            let mut m: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
            for (i, d) in g.fns.iter().enumerate() {
                m.entry(d.name.as_str()).or_default().push(i);
            }
            m
        };
        let mut edges: BTreeSet<Edge> = BTreeSet::new();
        for (file_idx, f) in files.iter().enumerate() {
            collect_calls(f, file_idx, &g.fns, &by_name, &mut edges);
        }
        g.edges = edges.into_iter().collect();
        g.out = vec![Vec::new(); g.fns.len()];
        for (i, e) in g.edges.iter().enumerate() {
            g.out[e.from].push(i);
        }
        g
    }

    /// True when `name` has exactly one definition workspace-wide (the
    /// condition under which reachability follows a method edge).
    pub fn name_is_unique(&self, name: &str) -> bool {
        self.name_counts.get(name).copied() == Some(1)
    }

    /// The set of functions reachable from `roots` following every edge
    /// `follow` admits. Cycle-safe (visited set), never traverses into
    /// test definitions, roots are included in the result. Returns, per
    /// reached function, the index of the first root that discovered it
    /// (a witness for diagnostics).
    pub fn reachable(
        &self,
        roots: &[usize],
        follow: impl Fn(&Edge) -> bool,
    ) -> BTreeMap<usize, usize> {
        let mut origin: BTreeMap<usize, usize> = BTreeMap::new();
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for &r in roots {
            if !self.fns[r].is_test && !origin.contains_key(&r) {
                origin.insert(r, r);
                stack.push((r, r));
            }
        }
        while let Some((node, root)) = stack.pop() {
            for &ei in &self.out[node] {
                let e = &self.edges[ei];
                if self.fns[e.to].is_test || origin.contains_key(&e.to) || !follow(e) {
                    continue;
                }
                origin.insert(e.to, root);
                stack.push((e.to, root));
            }
        }
        origin
    }

    /// The default propagation policy: follow direct and path edges
    /// always, method edges only when the callee name is unambiguous
    /// *and* caller and callee share a crate. The same-crate guard
    /// matters because a method name can be workspace-unique as a
    /// *definition* yet ubiquitous as a *call*: `.collect()` in `sim`
    /// resolves to `Iterator::collect`, not to the one workspace fn
    /// that happens to be named `collect` in another crate.
    pub fn follows_for_propagation(&self, e: &Edge) -> bool {
        match e.kind {
            EdgeKind::Direct | EdgeKind::Path => true,
            EdgeKind::Method => {
                self.name_is_unique(&self.fns[e.to].name)
                    && crate_of(&self.fns[e.from].path) == crate_of(&self.fns[e.to].path)
            }
        }
    }

    /// Renders the graph as a stable JSON artifact: nodes sorted by
    /// qualified path, edges by (caller, callee, kind), both
    /// deduplicated, no line numbers (the artifact is committed and
    /// diffed in CI; lines would churn on every edit).
    pub fn render_json(&self) -> String {
        let mut nodes: Vec<(String, &str)> = self
            .fns
            .iter()
            .filter(|d| !d.is_test)
            .map(|d| (d.path.clone(), d.file.as_str()))
            .collect();
        nodes.sort();
        nodes.dedup();
        let mut edges: Vec<(String, String, &str)> = self
            .edges
            .iter()
            .filter(|e| !self.fns[e.from].is_test && !self.fns[e.to].is_test)
            .map(|e| (self.fns[e.from].path.clone(), self.fns[e.to].path.clone(), e.kind.name()))
            .collect();
        edges.sort();
        edges.dedup();

        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema_version\": {CALLGRAPH_SCHEMA_VERSION},\n  \"nodes\": ["
        ));
        for (i, (path, file)) in nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {{\"path\": \"{path}\", \"file\": \"{file}\"}}"));
        }
        out.push_str(if nodes.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"edges\": [");
        for (i, (from, to, kind)) in edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"from\": \"{from}\", \"to\": \"{to}\", \"kind\": \"{kind}\"}}"
            ));
        }
        out.push_str(if edges.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str(&format!("  \"fns\": {}, \"calls\": {}\n}}\n", nodes.len(), edges.len()));
        out
    }
}

/// The crate segment of a qualified path (`sim::engine::push` → `sim`).
fn crate_of(path: &str) -> &str {
    path.split("::").next().unwrap_or(path)
}

/// Module segments derived from a file's path: `crates/sim/src/engine.rs`
/// → `["sim", "engine"]`, `lib.rs`/`main.rs`/`mod.rs` add no segment.
fn file_modules(crate_name: &str, rel_path: &str) -> Vec<String> {
    let mut mods = vec![crate_name.to_string()];
    if let Some(idx) = rel_path.find("/src/") {
        let tail = &rel_path[idx + 5..];
        for seg in tail.split('/') {
            let seg = seg.strip_suffix(".rs").unwrap_or(seg);
            if !matches!(seg, "lib" | "main" | "mod" | "bin") && !seg.is_empty() {
                mods.push(seg.to_string());
            }
        }
    }
    mods
}

/// Collects every `fn` definition in one file, tracking enclosing
/// `mod`/`impl`/`trait` blocks by brace depth.
fn collect_defs(f: &FileInput<'_>, file_idx: usize, out: &mut Vec<FnDef>) {
    let toks = &f.stream.tokens;
    let base = file_modules(f.crate_name, f.rel_path);
    let test_ranges = crate::rules::test_line_ranges(toks);
    let in_test = |line: usize| test_ranges.iter().any(|r| r.contains(&line));

    // (segment, brace depth the block opened at).
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                while stack.last().is_some_and(|(_, d)| *d > depth) {
                    stack.pop();
                }
            }
            "mod" if t.kind == TokenKind::Word => {
                // `mod name {` opens a segment; `mod name;` does not.
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Word) {
                    if toks.get(i + 2).is_some_and(|b| b.text == "{") {
                        stack.push((name.text.clone(), depth + 1));
                        depth += 1;
                        i += 3;
                        continue;
                    }
                }
            }
            "impl" | "trait" if t.kind == TokenKind::Word => {
                if let Some((seg, next)) = impl_segment(toks, i) {
                    stack.push((seg, depth + 1));
                    depth += 1;
                    i = next;
                    continue;
                }
            }
            "fn" if t.kind == TokenKind::Word => {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Word) {
                    let (tok_span, end_line, next) = fn_body(toks, i + 2);
                    let mut path: Vec<&str> = base.iter().map(String::as_str).collect();
                    path.extend(stack.iter().map(|(s, _)| s.as_str()));
                    path.push(&name.text);
                    out.push(FnDef {
                        name: name.text.clone(),
                        path: path.join("::"),
                        file: f.rel_path.to_string(),
                        line: t.line,
                        span: (t.line, end_line.max(t.line)),
                        tok_span,
                        file_idx,
                        is_test: in_test(t.line),
                    });
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Extracts the type segment of an `impl`/`trait` block starting at
/// `toks[at]`, returning `(segment, index just past the opening brace)`.
/// For `impl Trait for Type` the segment is `Type`; generics are
/// skipped. Returns `None` for bodyless forms (e.g. `impl Foo;`).
fn impl_segment(toks: &[Token], at: usize) -> Option<(String, usize)> {
    let mut angle = 0usize;
    let mut after_for = false;
    let mut first: Option<&str> = None;
    let mut forred: Option<&str> = None;
    let mut j = at + 1;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "<" => angle += 1,
            ">" if angle > 0 => angle -= 1,
            "{" if angle == 0 => {
                let seg = forred.or(first)?;
                return Some((seg.to_string(), j + 1));
            }
            ";" if angle == 0 => return None,
            "for" if angle == 0 => after_for = true,
            "where" if angle == 0 => {
                // Segments are settled once the where clause starts.
                after_for = false;
            }
            _ if t.kind == TokenKind::Word && angle == 0 => {
                if after_for {
                    if forred.is_none() {
                        forred = Some(&t.text);
                    }
                } else if first.is_none() || after_for {
                    if first.is_none() {
                        first = Some(&t.text);
                    }
                } else {
                    // `impl a::b::Type` — keep the last path segment.
                    if toks.get(j - 1).is_some_and(|p| p.text == "::") {
                        first = Some(&t.text);
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Finds the body of a `fn` whose signature starts at `toks[from]`
/// (just past the name). Returns the body token span, its last line,
/// and the index to resume scanning from. Bodyless signatures (trait
/// methods ending in `;`) return an empty span.
fn fn_body(toks: &[Token], from: usize) -> ((usize, usize), usize, usize) {
    let mut j = from;
    let mut angle = 0usize;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => angle += 1,
            ">" if angle > 0 && !toks[j - 1].text.starts_with('-') => angle -= 1,
            ";" if angle == 0 => return ((j, j), toks[j].line, j + 1),
            "{" if angle == 0 => {
                let start = j;
                let mut d = 1usize;
                j += 1;
                while j < toks.len() && d > 0 {
                    match toks[j].text.as_str() {
                        "{" => d += 1,
                        "}" => d -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let end_line = toks.get(j.saturating_sub(1)).map_or(0, |t| t.line);
                return ((start, j), end_line, j);
            }
            _ => {}
        }
        j += 1;
    }
    ((from, from), toks.last().map_or(0, |t| t.line), toks.len())
}

/// Collects and resolves every call site in one file.
fn collect_calls(
    f: &FileInput<'_>,
    file_idx: usize,
    fns: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    edges: &mut BTreeSet<Edge>,
) {
    let toks = &f.stream.tokens;
    // Definitions in this file, for innermost-enclosing-fn attribution.
    let local: Vec<usize> = (0..fns.len()).filter(|&i| fns[i].file_idx == file_idx).collect();
    let enclosing = |tok_idx: usize| -> Option<usize> {
        local
            .iter()
            .copied()
            .filter(|&i| {
                let (s, e) = fns[i].tok_span;
                s < tok_idx && tok_idx < e
            })
            .min_by_key(|&i| {
                let (s, e) = fns[i].tok_span;
                e - s
            })
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Word
            || toks.get(i + 1).is_none_or(|n| n.text != "(")
            || NON_CALL_WORDS.contains(&t.text.as_str())
        {
            continue;
        }
        let Some(caller) = enclosing(i) else { continue };
        let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
        let (targets, kind) = if prev == Some(".") {
            (by_name.get(t.text.as_str()).cloned().unwrap_or_default(), EdgeKind::Method)
        } else if prev == Some("::") {
            let segs = path_segments(toks, i);
            (resolve_path(&segs, fns, by_name, &fns[caller]), EdgeKind::Path)
        } else if prev == Some("fn") {
            continue; // the definition itself
        } else {
            (resolve_bare(&t.text, fns, by_name, &fns[caller]), EdgeKind::Direct)
        };
        for to in targets {
            if to != caller {
                edges.insert(Edge { from: caller, to, kind, line: t.line });
            }
        }
    }
}

/// Walks back from the name at `toks[i]` collecting the `a::b::name`
/// segment list (in source order).
fn path_segments(toks: &[Token], i: usize) -> Vec<&str> {
    let mut segs = vec![toks[i].text.as_str()];
    let mut j = i;
    while j >= 2 && toks[j - 1].text == "::" && toks[j - 2].kind == TokenKind::Word {
        segs.push(toks[j - 2].text.as_str());
        j -= 2;
    }
    segs.reverse();
    segs
}

/// Resolves a qualified call by path suffix (see module docs).
fn resolve_path(
    segs: &[&str],
    fns: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnDef,
) -> Vec<usize> {
    let stripped: Vec<&str> =
        segs.iter().copied().skip_while(|s| matches!(*s, "crate" | "self" | "super")).collect();
    let (is_self, stripped) = match stripped.split_first() {
        Some((&"Self", rest)) if !rest.is_empty() => (true, rest.to_vec()),
        _ => (false, stripped),
    };
    let Some((&name, quals)) = stripped.split_last() else {
        return Vec::new();
    };
    let Some(cands) = by_name.get(name) else {
        return Vec::new();
    };
    if is_self {
        // `Self::x` — same impl block, i.e. the caller's path minus the
        // fn name plus `x`; fall back to same-file matches.
        let prefix = caller.path.rsplit_once("::").map_or("", |(p, _)| p);
        let same_impl: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| fns[c].path.rsplit_once("::").map_or("", |(p, _)| p) == prefix)
            .collect();
        if !same_impl.is_empty() {
            return same_impl;
        }
        return cands.iter().copied().filter(|&c| fns[c].file == caller.file).collect();
    }
    cands
        .iter()
        .copied()
        .filter(|&c| {
            let parts: Vec<&str> = fns[c].path.split("::").collect();
            let parts = &parts[..parts.len() - 1]; // drop the fn name (matched already)
            quals.iter().rev().zip(parts.iter().rev()).all(|(a, b)| a == b)
                && quals.len() <= parts.len() + 1
        })
        .collect()
}

/// Resolves a bare call by module proximity (see module docs).
fn resolve_bare(
    name: &str,
    fns: &[FnDef],
    by_name: &BTreeMap<&str, Vec<usize>>,
    caller: &FnDef,
) -> Vec<usize> {
    let Some(cands) = by_name.get(name) else {
        return Vec::new();
    };
    // Same file: the candidate sharing the longest module prefix with the
    // caller wins (shadowing), ties are kept (over-approximation).
    let same_file: Vec<usize> =
        cands.iter().copied().filter(|&c| fns[c].file == caller.file).collect();
    if !same_file.is_empty() {
        let score = |c: usize| {
            fns[c].path.split("::").zip(caller.path.split("::")).take_while(|(a, b)| a == b).count()
        };
        let best = same_file.iter().copied().map(score).max().unwrap_or(0);
        return same_file.into_iter().filter(|&c| score(c) == best).collect();
    }
    let caller_crate = caller.path.split("::").next().unwrap_or_default();
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| fns[c].path.split("::").next() == Some(caller_crate))
        .collect();
    if same_crate.len() == 1 {
        return same_crate;
    }
    if same_crate.is_empty() && cands.len() == 1 {
        return cands.clone();
    }
    // Ambiguous: every same-crate candidate (conservative).
    same_crate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    fn graph(files: &[(&str, &str, &str)]) -> (CallGraph, Vec<TokenStream>) {
        let streams: Vec<TokenStream> = files.iter().map(|(_, _, src)| tokenize(src)).collect();
        let inputs: Vec<FileInput<'_>> = files
            .iter()
            .zip(&streams)
            .map(|((krate, path, _), stream)| FileInput {
                crate_name: krate,
                rel_path: path,
                stream,
            })
            .collect();
        (CallGraph::build(&inputs), streams)
    }

    fn idx(g: &CallGraph, path: &str) -> usize {
        g.fns.iter().position(|d| d.path == path).unwrap_or_else(|| {
            panic!("no fn `{path}` in {:?}", g.fns.iter().map(|d| &d.path).collect::<Vec<_>>())
        })
    }

    fn has_edge(g: &CallGraph, from: &str, to: &str, kind: EdgeKind) -> bool {
        let (f, t) = (idx(g, from), idx(g, to));
        g.edges.iter().any(|e| e.from == f && e.to == t && e.kind == kind)
    }

    #[test]
    fn defs_are_qualified_by_mod_impl_and_file() {
        let src = "
            pub fn top() {}
            mod inner { pub fn nested() {} }
            struct S;
            impl S { fn method(&self) {} }
            impl std::fmt::Display for S { fn fmt(&self) {} }
            trait T { fn provided() {} fn required(); }
        ";
        let (g, _) = graph(&[("sim", "crates/sim/src/engine.rs", src)]);
        let paths: Vec<&str> = g.fns.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "sim::engine::top",
                "sim::engine::inner::nested",
                "sim::engine::S::method",
                "sim::engine::S::fmt",
                "sim::engine::T::provided",
                "sim::engine::T::required",
            ]
        );
        // The bodyless trait signature has an empty span.
        let req = &g.fns[idx(&g, "sim::engine::T::required")];
        assert_eq!(req.tok_span.0, req.tok_span.1);
    }

    #[test]
    fn direct_path_and_method_calls_resolve() {
        let a = "
            pub fn helper() {}
            pub struct Q;
            impl Q { pub fn push(&mut self) { helper(); } }
        ";
        let b = "
            pub fn driver(q: &mut crate::q::Q) {
                crate::q::helper();
                q.push();
            }
        ";
        let (g, _) =
            graph(&[("sim", "crates/sim/src/q.rs", a), ("sim", "crates/sim/src/engine.rs", b)]);
        assert!(has_edge(&g, "sim::q::Q::push", "sim::q::helper", EdgeKind::Direct));
        assert!(has_edge(&g, "sim::engine::driver", "sim::q::helper", EdgeKind::Path));
        assert!(has_edge(&g, "sim::engine::driver", "sim::q::Q::push", EdgeKind::Method));
    }

    #[test]
    fn shadowed_names_resolve_to_the_nearest_module() {
        let src = "
            pub fn f() {}
            mod a { pub fn f() {} pub fn caller() { f(); } }
        ";
        let (g, _) = graph(&[("sim", "crates/sim/src/lib.rs", src)]);
        assert!(has_edge(&g, "sim::a::caller", "sim::a::f", EdgeKind::Direct));
        assert!(!has_edge(&g, "sim::a::caller", "sim::f", EdgeKind::Direct));
    }

    #[test]
    fn method_calls_are_conservative_over_all_same_named_fns() {
        let src = "
            struct A; struct B;
            impl A { fn go(&self) {} }
            impl B { fn go(&self) {} }
            fn drive(a: &A) { a.go(); }
        ";
        let (g, _) = graph(&[("sim", "crates/sim/src/lib.rs", src)]);
        // No type info: the method edge targets both `go`s.
        assert!(has_edge(&g, "sim::drive", "sim::A::go", EdgeKind::Method));
        assert!(has_edge(&g, "sim::drive", "sim::B::go", EdgeKind::Method));
        // ...but the propagation policy refuses to follow the ambiguous name.
        let ambiguous = g.edges.iter().find(|e| e.kind == EdgeKind::Method).unwrap();
        assert!(!g.follows_for_propagation(ambiguous));
    }

    #[test]
    fn cycles_terminate_and_reach_both_ways() {
        let src = "
            pub fn ping() { pong(); }
            pub fn pong() { ping(); }
            pub fn lonely() {}
        ";
        let (g, _) = graph(&[("sim", "crates/sim/src/lib.rs", src)]);
        let reached = g.reachable(&[idx(&g, "sim::ping")], |_| true);
        assert!(reached.contains_key(&idx(&g, "sim::pong")));
        assert!(reached.contains_key(&idx(&g, "sim::ping")));
        assert!(!reached.contains_key(&idx(&g, "sim::lonely")));
    }

    #[test]
    fn test_definitions_are_invisible_to_reachability_and_json() {
        let src = "
            pub fn entry() { helper(); }
            pub fn helper() {}
            #[cfg(test)]
            mod tests {
                fn t_helper() { super::helper(); }
            }
        ";
        let (g, _) = graph(&[("sim", "crates/sim/src/lib.rs", src)]);
        assert!(g.fns[idx(&g, "sim::tests::t_helper")].is_test);
        let reached = g.reachable(&[idx(&g, "sim::tests::t_helper")], |_| true);
        assert!(reached.is_empty(), "test fns are never roots");
        assert!(!g.render_json().contains("t_helper"));
    }

    #[test]
    fn cross_crate_method_edges_are_not_followed() {
        // `collect` is workspace-unique as a *definition*, but the method
        // call in `sim` is really `Iterator::collect`; the same-crate
        // guard must refuse to follow it into `lint`.
        let a = "pub fn collect() {}";
        let b = "pub fn run(it: I) { it.collect(); }";
        let (g, _) = graph(&[
            ("lint", "crates/lint/src/pragma.rs", a),
            ("sim", "crates/sim/src/engine.rs", b),
        ]);
        assert!(has_edge(&g, "sim::engine::run", "lint::pragma::collect", EdgeKind::Method));
        let e = g.edges.iter().find(|e| e.kind == EdgeKind::Method).unwrap();
        assert!(!g.follows_for_propagation(e), "cross-crate method edge must not propagate");
        // The same unique name within one crate is still followed.
        let c = "pub fn drain_all() {} pub fn run(q: Q) { q.drain_all(); }";
        let (g2, _) = graph(&[("sim", "crates/sim/src/engine.rs", c)]);
        let e2 = g2.edges.iter().find(|e| e.kind == EdgeKind::Method).unwrap();
        assert!(g2.follows_for_propagation(e2));
    }

    /// Property: reachability is monotone in the edge set. Randomized
    /// (seeded LCG, fully deterministic): generate a call graph, add one
    /// more call to some function body, and check the reachable set
    /// never shrinks. Exercises cycles, self-calls, and dead code.
    #[test]
    fn reachability_is_monotone_under_edge_addition() {
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move |bound: usize| {
            // Deterministic xorshift — no host entropy in tests either.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as usize
        };
        for _trial in 0..25 {
            let n = 3 + next(6); // 3..=8 functions
            let mut calls: Vec<Vec<usize>> =
                (0..n).map(|_| (0..next(3)).map(|_| next(n)).collect()).collect();
            let render = |calls: &[Vec<usize>]| {
                let mut src = String::new();
                for (i, cs) in calls.iter().enumerate() {
                    src.push_str(&format!("pub fn f{i}() {{ "));
                    for c in cs {
                        src.push_str(&format!("f{c}(); "));
                    }
                    src.push_str("}\n");
                }
                src
            };
            let before = render(&calls);
            let (g1, _) = graph(&[("sim", "crates/sim/src/lib.rs", &before)]);
            let roots = [idx(&g1, "sim::f0")];
            let r1: BTreeSet<String> = g1
                .reachable(&roots, |e| g1.follows_for_propagation(e))
                .keys()
                .map(|&d| g1.fns[d].path.clone())
                .collect();

            calls[next(n)].push(next(n));
            let after = render(&calls);
            let (g2, _) = graph(&[("sim", "crates/sim/src/lib.rs", &after)]);
            let roots2 = [idx(&g2, "sim::f0")];
            let r2: BTreeSet<String> = g2
                .reachable(&roots2, |e| g2.follows_for_propagation(e))
                .keys()
                .map(|&d| g2.fns[d].path.clone())
                .collect();
            assert!(
                r1.is_subset(&r2),
                "adding an edge shrank reachability:\nbefore:\n{before}\nafter:\n{after}\
                 \nreached before: {r1:?}\nreached after: {r2:?}"
            );
        }
    }

    #[test]
    fn json_is_stable_and_counts_match() {
        let src = "pub fn a() { b(); } pub fn b() {}";
        let (g, _) = graph(&[("sim", "crates/sim/src/lib.rs", src)]);
        let json = g.render_json();
        assert!(json.starts_with("{\n  \"schema_version\": 1"));
        assert!(json.contains("\"path\": \"sim::a\""));
        assert!(json.contains("\"from\": \"sim::a\", \"to\": \"sim::b\", \"kind\": \"direct\""));
        assert!(json.ends_with("\"fns\": 2, \"calls\": 1\n}\n"));
        assert_eq!(json, g.render_json(), "rendering is deterministic");
    }
}
