//! # marnet-lint — workspace determinism & invariant auditor
//!
//! The whole reproduction rests on one promise: the discrete-event
//! simulator is *deterministic*, so lab artifacts are byte-identical at
//! any `--threads` and every Table II / sweep number is reproducible
//! from its spec hash. This crate makes that promise — and the
//! structural invariants that support it — statically checked instead of
//! tribal knowledge. It is a self-contained pass over the workspace's
//! own Rust sources: a hand-rolled lossy tokenizer (the build is
//! offline, so no `syn`; see [`tokens`]) feeding a rule engine that
//! emits machine-readable JSON plus human `file:line` output.
//!
//! The rules (each individually deny-able; see DESIGN.md §11):
//!
//! | rule             | protects                                          |
//! |------------------|---------------------------------------------------|
//! | `wall-clock`     | results are a function of `SimTime` only          |
//! | `thread-id`      | artifacts byte-identical at any `--threads`       |
//! | `env-read`       | runs reproducible from the spec hash              |
//! | `map-iter`       | no hasher-dependent order reaches an artifact     |
//! | `panic-path`     | the event-core hot path degrades, never aborts    |
//! | `hot-path-alloc` | pooled hot paths allocate ~zero per event         |
//! | `float-order`    | no NaN-undefined or hasher-ordered float result   |
//! | `layering`       | the crate DAG (`sim` reusable, `telemetry` leaf)  |
//! | `unsafe-hygiene` | every determinism argument is a safe-Rust one     |
//! | `bad-pragma`     | suppressions carry an auditable reason            |
//! | `unused-pragma`  | stale suppressions cannot linger                  |
//!
//! Legitimate exceptions are suppressed inline with a reasoned pragma:
//!
//! ```text
//! // marnet-lint: allow(wall-clock): benchmark timer measures the host
//! let t0 = Instant::now();
//! ```
//!
//! The pass is call-graph aware: a conservative intra-workspace call
//! graph (see [`callgraph`]) lets the entry-point-scoped families
//! (`panic-path`, `hot-path-alloc`, `unseeded-rng`) follow calls out of
//! their file lists and audit the helpers those entry points lean on.
//! `marnet-lint --call-graph PATH` exports the graph as a stable JSON
//! artifact that CI diffs against the committed baseline.
//!
//! Run it with `cargo run -p marnet-lint -- --deny-all` (exit codes:
//! 0 clean, 1 findings, 2 usage error); `tests/workspace_clean.rs` runs
//! the same pass in `cargo test`, so CI fails on any undocumented
//! violation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod diag;
pub mod layering;
pub mod pragma;
pub mod rules;
pub mod tokens;
pub mod workspace;

pub use callgraph::{CallGraph, EdgeKind};
pub use diag::{render_json, render_text, Diagnostic, Rule, ALL_RULES};
pub use rules::{scan_file, FileScope};
pub use workspace::{find_workspace_root, lint_workspace, Report, HOT_ALLOC, HOT_PATH, SIM_FACING};
