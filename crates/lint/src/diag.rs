//! Diagnostics: the rule identifiers and the machine/human renderings.
//!
//! The JSON encoding is hand-rolled (two dozen lines) so the auditor
//! stays dependency-free; the schema is versioned and the goldens in
//! `tests/goldens.rs` pin it byte-for-byte.

use std::fmt;

/// JSON schema version emitted by [`render_json`]. v2 added the
/// `float-order` rule and call-graph-propagated findings (which carry a
/// "reachable from" witness in their message).
pub const SCHEMA_VERSION: u32 = 2;

/// Every rule the pass knows, with its kebab-case wire name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`, any
    /// `std::time` path) in sim-facing crates.
    WallClock,
    /// `thread::current()` (thread identity) in sim-facing crates.
    ThreadId,
    /// `std::env` reads in sim-facing crates.
    EnvRead,
    /// Iteration over a default-hasher `HashMap`/`HashSet` in sim-facing
    /// crates (construction and point lookups stay legal).
    MapIter,
    /// Unseeded randomness (`thread_rng`, `from_entropy`, `OsRng`,
    /// `rand::random`) in sim-facing crates; all randomness must flow
    /// from `derive_rng(seed, label)` substreams.
    UnseededRng,
    /// Order-sensitive float operations in sim-facing crates: a sort /
    /// min / max comparator built on `partial_cmp` (NaN makes the order
    /// undefined), or float accumulation over default-hasher map
    /// iteration (the sum depends on visitation order).
    FloatOrder,
    /// `unwrap()`/`expect()`/`panic!`-family/slice-indexing in the
    /// event-core hot-path modules.
    PanicPath,
    /// Fresh heap allocation (`Vec::new`, `vec!`, `Box::new`, `.to_vec()`)
    /// in the event-core hot-path modules, which recycle buffers through
    /// pools and scratch vectors.
    HotPathAlloc,
    /// A crate dependency that violates the workspace layering DAG.
    Layering,
    /// A crate root missing `#![forbid(unsafe_code)]`.
    UnsafeHygiene,
    /// A `marnet-lint` pragma that does not parse or lacks a reason.
    BadPragma,
    /// A well-formed pragma that suppressed nothing (stale after a fix).
    UnusedPragma,
}

/// All rules, in reporting order.
pub const ALL_RULES: &[Rule] = &[
    Rule::WallClock,
    Rule::ThreadId,
    Rule::EnvRead,
    Rule::MapIter,
    Rule::UnseededRng,
    Rule::FloatOrder,
    Rule::PanicPath,
    Rule::HotPathAlloc,
    Rule::Layering,
    Rule::UnsafeHygiene,
    Rule::BadPragma,
    Rule::UnusedPragma,
];

impl Rule {
    /// The kebab-case name used in pragmas, CLI flags, and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Rule::WallClock => "wall-clock",
            Rule::ThreadId => "thread-id",
            Rule::EnvRead => "env-read",
            Rule::MapIter => "map-iter",
            Rule::UnseededRng => "unseeded-rng",
            Rule::FloatOrder => "float-order",
            Rule::PanicPath => "panic-path",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::Layering => "layering",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::BadPragma => "bad-pragma",
            Rule::UnusedPragma => "unused-pragma",
        }
    }

    /// Parses a kebab-case rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// One-line rationale: the paper-level invariant the rule protects.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::WallClock => {
                "sim results must depend only on SimTime; a wall-clock read makes \
                 Table II / sweep numbers vary run to run"
            }
            Rule::ThreadId => {
                "artifacts are byte-identical at any --threads; thread identity \
                 leaks the schedule into results"
            }
            Rule::EnvRead => "environment reads make a run irreproducible from its spec hash",
            Rule::MapIter => {
                "default-hasher iteration order varies per process; any order \
                 reaching an artifact breaks byte-identical replication"
            }
            Rule::UnseededRng => {
                "fault schedules and every other stochastic input must come from \
                 derive_rng substreams; OS entropy makes trials unreplayable"
            }
            Rule::FloatOrder => {
                "float comparisons via partial_cmp and float sums over hashed maps \
                 make artifact bytes depend on NaN handling and visitation order; \
                 use total_cmp and ordered containers"
            }
            Rule::PanicPath => {
                "the event-core hot path must degrade, not abort: a panic mid-run \
                 loses the trial and poisons parallel replication"
            }
            Rule::HotPathAlloc => {
                "the event-core modules recycle payloads and scratch buffers; a \
                 fresh allocation per event regresses allocs/event and the \
                 perf-matrix ratchet"
            }
            Rule::Layering => {
                "the dependency DAG keeps sim reusable and telemetry leaf-like so \
                 recorder-off stays zero-overhead"
            }
            Rule::UnsafeHygiene => {
                "#![forbid(unsafe_code)] keeps every determinism argument a \
                 safe-Rust argument"
            }
            Rule::BadPragma => "suppressions must carry an auditable reason",
            Rule::UnusedPragma => "stale suppressions hide future violations",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, anchored to a workspace-relative file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line (0 for whole-file findings such as layering).
    pub line: usize,
    /// Human-readable description of this occurrence.
    pub message: String,
}

impl Diagnostic {
    /// Sort key: file path *bytes*, then line, then rule — a
    /// deterministic report order independent of scan order, locale, and
    /// platform collation (paths are already normalized to forward
    /// slashes, so byte order is identical on every host).
    fn key(&self) -> (&[u8], usize, Rule) {
        (self.file.as_bytes(), self.line, self.rule)
    }
}

/// Sorts diagnostics into canonical reporting order.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.key().cmp(&b.key()));
}

/// Escapes a string for JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as one stable JSON document.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"findings\": ["));
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            d.rule,
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    if diags.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str(&format!("  \"total\": {}\n}}\n", diags.len()));
    out
}

/// Renders findings for humans, one `file:line` anchor per line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        if d.line == 0 {
            out.push_str(&format!("{}: [{}] {}\n", d.file, d.rule, d.message));
        } else {
            out.push_str(&format!("{}:{}: [{}] {}\n", d.file, d.line, d.rule, d.message));
        }
    }
    out.push_str(&format!("{} finding(s)\n", diags.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for &r in ALL_RULES {
            assert_eq!(Rule::from_name(r.name()), Some(r));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut d = vec![
            Diagnostic {
                rule: Rule::WallClock,
                file: "b.rs".into(),
                line: 2,
                message: "say \"hi\"\n".into(),
            },
            Diagnostic { rule: Rule::EnvRead, file: "a.rs".into(), line: 9, message: "m".into() },
        ];
        sort(&mut d);
        let json = render_json(&d);
        assert!(json.starts_with("{\n  \"schema_version\": 2"));
        assert!(json.contains("\\\"hi\\\"\\n"));
        let a = json.find("a.rs").unwrap();
        let b = json.find("b.rs").unwrap();
        assert!(a < b, "sorted by file");
        assert!(json.ends_with("\"total\": 2\n}\n"));
    }

    #[test]
    fn empty_report_renders() {
        assert!(render_json(&[]).contains("\"total\": 0"));
        assert_eq!(render_text(&[]), "0 finding(s)\n");
    }
}
