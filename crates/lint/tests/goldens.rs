//! Golden diagnostics over the fixture workspace in `tests/fixtures/ws`.
//!
//! The fixture seeds exactly one violation per rule; these tests pin the
//! JSON report byte-for-byte (the schema is a machine interface — CI and
//! external tooling parse it) and the `file:line` anchors of the text
//! rendering.

use std::path::PathBuf;

use marnet_lint::{lint_workspace, render_json, render_text, ALL_RULES};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn every_rule_fires_exactly_once_in_the_fixture() {
    let report = lint_workspace(&fixture_root()).expect("fixture scan");
    for &rule in ALL_RULES {
        let n = report.findings.iter().filter(|d| d.rule == rule).count();
        assert_eq!(n, 1, "rule `{rule}` should fire exactly once, got {n}");
    }
    assert_eq!(report.findings.len(), ALL_RULES.len());
    assert_eq!(report.crates_checked, 1);
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn json_report_matches_golden_byte_for_byte() {
    let report = lint_workspace(&fixture_root()).expect("fixture scan");
    let expected = concat!(
        "{\n",
        "  \"schema_version\": 2,\n",
        "  \"findings\": [\n",
        "    {\"rule\": \"layering\", \"file\": \"crates/sim/Cargo.toml\", \"line\": 10, \"message\": \"`sim` must not depend on `marnet-bench`; allowed: [telemetry]\"},\n",
        "    {\"rule\": \"panic-path\", \"file\": \"crates/sim/src/engine.rs\", \"line\": 6, \"message\": \"`.unwrap()` in an event-core hot-path module can abort a trial mid-run\"},\n",
        "    {\"rule\": \"hot-path-alloc\", \"file\": \"crates/sim/src/engine.rs\", \"line\": 10, \"message\": \"`Vec::new` in a pooled hot-path module; recycle through a pool or scratch buffer (or pragma a cold path)\"},\n",
        "    {\"rule\": \"unsafe-hygiene\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 1, \"message\": \"crate root is missing `#![forbid(unsafe_code)]`\"},\n",
        "    {\"rule\": \"wall-clock\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 6, \"message\": \"`Instant::now()` reads the wall clock\"},\n",
        "    {\"rule\": \"thread-id\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 11, \"message\": \"`thread::current()` leaks the host schedule into sim state\"},\n",
        "    {\"rule\": \"env-read\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 15, \"message\": \"`std::env` read in a sim-facing crate; runs must be a function of the spec\"},\n",
        "    {\"rule\": \"map-iter\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 20, \"message\": \"iteration over default-hasher map `counts` (`.values()`); order depends on hasher state — use BTreeMap/FxHashMap or sort the drain\"},\n",
        "    {\"rule\": \"bad-pragma\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 24, \"message\": \"pragma requires a reason: `allow(<rule>): <reason>`\"},\n",
        "    {\"rule\": \"unused-pragma\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 28, \"message\": \"pragma `allow(env-read)` suppresses nothing here; remove it\"},\n",
        "    {\"rule\": \"unseeded-rng\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 34, \"message\": \"`thread_rng` draws OS entropy; use derive_rng(seed, label) so the trial replays byte-identically\"},\n",
        "    {\"rule\": \"float-order\", \"file\": \"crates/sim/src/lib.rs\", \"line\": 39, \"message\": \"`sort_by` comparator uses `partial_cmp`; NaN yields None and the produced order becomes input-order dependent — use `total_cmp`\"}\n",
        "  ],\n",
        "  \"total\": 12\n",
        "}\n",
    );
    assert_eq!(render_json(&report.findings), expected);
}

#[test]
fn text_report_anchors_every_finding() {
    let report = lint_workspace(&fixture_root()).expect("fixture scan");
    let text = render_text(&report.findings);
    assert!(text.contains("crates/sim/Cargo.toml:10: [layering]"), "{text}");
    assert!(text.contains("crates/sim/src/engine.rs:6: [panic-path]"), "{text}");
    assert!(text.contains("crates/sim/src/engine.rs:10: [hot-path-alloc]"), "{text}");
    assert!(text.contains("crates/sim/src/lib.rs:1: [unsafe-hygiene]"), "{text}");
    assert!(text.contains("crates/sim/src/lib.rs:39: [float-order]"), "{text}");
    assert!(text.ends_with("12 finding(s)\n"), "{text}");
}
