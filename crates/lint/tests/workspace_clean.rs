//! The repo lints itself: `cargo test` fails on any undocumented
//! violation anywhere in the workspace, which is the same gate CI runs
//! via `cargo run -p marnet-lint -- --deny-all --format json`.

use std::path::PathBuf;

use marnet_lint::{lint_workspace, render_text};

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("scan workspace");
    assert!(
        report.findings.is_empty(),
        "undocumented lint findings — fix them or add a reasoned \
         `// marnet-lint: allow(rule): <reason>` pragma:\n{}",
        render_text(&report.findings)
    );
    // Sanity-check the walker actually saw the workspace (an empty scan
    // would also report zero findings).
    assert!(report.crates_checked >= 10, "only {} crates checked", report.crates_checked);
    assert!(report.files_scanned >= 50, "only {} files scanned", report.files_scanned);
}
