//! Property tests for the tokenizer's core guarantee: text inside string
//! literals, raw strings, char literals, and comments NEVER reaches the
//! rule engine. `"Instant::now()"` in a log message must not count as a
//! wall-clock read, whatever surrounds it.
//!
//! The vendored proptest stand-in has no string strategies, so sources
//! are assembled in the test body from drawn indices into snippet /
//! padding / container tables.

use marnet_lint::{scan_file, FileScope};
use proptest::prelude::*;

/// Text that would violate a determinism rule if it were code.
const SNIPPETS: &[&str] = &[
    "Instant::now()",
    "SystemTime::now()",
    "std::time::Duration::from_secs(1)",
    "thread::current()",
    "std::env::var(\"HOME\")",
    "let m: HashMap<u64, u64> = HashMap::new(); m.values()",
];

/// Padding that exercises tokenizer edge cases (quotes, escapes, hashes).
/// Kept free of `*/` and `"#` so block comments and `r#` raw strings stay
/// well-formed containers.
const PADS: &[&str] = &["", " ", "xx", "'", "#", "->", "0e5", "::"];

fn determinism_scope() -> FileScope {
    FileScope {
        rel_path: "crates/sim/src/fake.rs".into(),
        determinism: true,
        panic_path: true,
        hot_alloc: true,
        hygiene: false,
    }
}

/// Wraps `inner` in the chosen container so it is literal/comment text.
fn contain(which: usize, inner: &str) -> String {
    match which % 4 {
        0 => format!("// {inner}\npub fn f() {{}}\n"),
        1 => format!("/* {inner} */\npub fn f() {{}}\n"),
        2 => format!("pub fn f() -> usize {{\n    let s = r#\"{inner}\"#;\n    s.len()\n}}\n"),
        // A normal string literal; snippets contain `"` only escaped-safe
        // content, so escape what needs escaping.
        _ => {
            let escaped = inner.replace('\\', "\\\\").replace('"', "\\\"");
            format!("pub fn f() -> usize {{\n    let s = \"{escaped}\";\n    s.len()\n}}\n")
        }
    }
}

proptest! {
    /// Dangerous text inside any literal/comment container, with
    /// arbitrary padding on both sides, never produces a finding.
    #[test]
    fn contained_snippets_never_fire(
        si in 0usize..6,
        pre in 0usize..8,
        post in 0usize..8,
        which in 0usize..4,
    ) {
        let inner = format!("{}{}{}", PADS[pre], SNIPPETS[si], PADS[post]);
        let src = contain(which, &inner);
        let findings = scan_file(&src, &determinism_scope());
        prop_assert!(
            findings.is_empty(),
            "expected no findings for contained text, got {findings:?} in:\n{src}"
        );
    }

    /// Positive control: the same snippet as code DOES fire, so the
    /// property above is not vacuously true because the scanner is blind.
    #[test]
    fn uncontained_snippets_do_fire(si in 0usize..6, pad in 0usize..8) {
        // Padding rides in a comment so it cannot corrupt the code path.
        let src = format!("pub fn f() {{ /* {} */ {}; }}\n", PADS[pad], SNIPPETS[si]);
        let findings = scan_file(&src, &determinism_scope());
        prop_assert!(!findings.is_empty(), "expected a finding for:\n{src}");
    }

    /// A pragma comment mentioning a rule name never suppresses anything
    /// in a different file region: unrelated comments are inert.
    #[test]
    fn plain_comments_about_rules_are_inert(si in 0usize..6, which in 0usize..2) {
        let note = if which == 0 {
            "// note: wall-clock and map-iter are checked by marnet-lint\n"
        } else {
            "// HashMap iteration order discussion, see DESIGN.md §11\n"
        };
        let src = format!("{note}pub fn f() {{ {}; }}\n", SNIPPETS[si]);
        let findings = scan_file(&src, &determinism_scope());
        // The code still fires; the comment neither adds nor removes.
        prop_assert!(!findings.is_empty());
        prop_assert!(findings.iter().all(|d| d.line >= 2), "{findings:?}");
    }
}
