//! `marnet-lint` exit codes: the workspace CLI convention is 0 ok,
//! 1 findings, 2 usage error.

use std::path::PathBuf;
use std::process::Command;

fn lint_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_marnet-lint"))
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn clean_workspace_exits_zero() {
    let st = lint_bin()
        .args(["--deny-all", "--format", "json", "--root"])
        .arg(repo_root())
        .status()
        .expect("run");
    assert_eq!(st.code(), Some(0), "the tree at HEAD must lint clean");
}

#[test]
fn seeded_violations_exit_one() {
    let st = lint_bin().arg("--root").arg(fixture_root()).status().expect("run");
    assert_eq!(st.code(), Some(1));
}

#[test]
fn allowing_every_fixture_rule_exits_zero() {
    let mut cmd = lint_bin();
    cmd.arg("--root").arg(fixture_root());
    for rule in [
        "wall-clock",
        "thread-id",
        "env-read",
        "map-iter",
        "unseeded-rng",
        "float-order",
        "panic-path",
        "hot-path-alloc",
        "layering",
        "unsafe-hygiene",
        "bad-pragma",
        "unused-pragma",
    ] {
        cmd.args(["--allow", rule]);
    }
    assert_eq!(cmd.status().expect("run").code(), Some(0));
}

#[test]
fn usage_errors_exit_two() {
    // Unknown flag.
    assert_eq!(lint_bin().arg("--frob").status().expect("run").code(), Some(2));
    // Unknown rule name.
    let st = lint_bin().args(["--deny", "warp-drive"]).status().expect("run");
    assert_eq!(st.code(), Some(2));
    // Dangling flag value.
    assert_eq!(lint_bin().arg("--root").status().expect("run").code(), Some(2));
    // Root without a manifest.
    let st = lint_bin().args(["--root", "/nonexistent"]).status().expect("run");
    assert_eq!(st.code(), Some(2));
}
