//! Fixture hot-path module (`crates/sim/src/engine.rs` is in the
//! panic-safety and allocation-discipline sets): one seeded `.unwrap()`
//! violation and one seeded `Vec::new` violation.

pub fn pop(v: &mut Vec<u64>) -> u64 {
    v.pop().unwrap()
}

pub fn fresh() -> Vec<u64> {
    Vec::new()
}
