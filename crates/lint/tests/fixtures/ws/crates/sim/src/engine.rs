//! Fixture hot-path module (`crates/sim/src/engine.rs` is in the
//! panic-safety set): one seeded `.unwrap()` violation.

pub fn pop(v: &mut Vec<u64>) -> u64 {
    v.pop().unwrap()
}
