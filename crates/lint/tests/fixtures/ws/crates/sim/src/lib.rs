//! Fixture crate root: exactly one seeded violation per source-level
//! determinism rule, plus the missing `#![forbid(unsafe_code)]` that
//! seeds the hygiene finding at line 1. Never compiled — only scanned.

pub fn wall_clock() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn thread_identity() -> String {
    format!("{:?}", thread::current().id())
}

pub fn env_read() -> Option<String> {
    std::env::var("MARNET_SEED").ok()
}

pub fn map_iteration() -> u64 {
    let counts: HashMap<u64, u64> = HashMap::new();
    counts.values().sum()
}

pub fn bad_pragma() -> u64 {
    // marnet-lint: allow(wall-clock)
    0
}

// marnet-lint: allow(env-read): nothing below reads the environment
pub fn stale() -> u64 {
    0
}

pub fn unseeded() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn float_sort(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
