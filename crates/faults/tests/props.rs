//! Property-based chaos tests: arbitrary fault schedules replayed against
//! live traffic must never panic or wedge the simulator, must hand every
//! link back at its baseline parameters once the horizon passes (the
//! compiler's clamping contract), and must preserve packet conservation —
//! every packet offered to a link is delivered, dropped for an attributed
//! reason, or still sitting in the transmit queue.
//!
//! Edge-crash faults are exercised by the `marnet-bench` fault scenarios
//! (they need a live edge server); here the process mix covers the six
//! link-level fault families.

use marnet_faults::{FaultInjector, FaultPhase, FaultSpec};
use marnet_sim::engine::{Actor, Event, SimCtx, Simulator};
use marnet_sim::link::{Bandwidth, LinkId, LinkParams, LinkStats, LossModel};
use marnet_sim::packet::Packet;
use marnet_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Baseline link parameters every schedule must restore by the horizon.
const BASE_RATE_MBPS: f64 = 10.0;
const BASE_DELAY_MS: u64 = 5;
/// Fault schedules are compiled against this horizon; the simulation runs
/// one extra second beyond it so queues drain at baseline rate.
const HORIZON_MS: u64 = 4_000;
const DRAIN_MS: u64 = 1_000;

/// One randomly drawn fault process, in milliseconds so shrinking stays
/// readable. Converted onto a concrete link via [`apply`].
#[derive(Debug, Clone)]
enum Proc {
    Outage { at_ms: u64, dur_ms: u64 },
    Flaps { mean_up_ms: u64, mean_down_ms: u64 },
    HandoverGaps { mean_interval_ms: u64, gap_ms: u64 },
    LossBurst { at_ms: u64, dur_ms: u64, permille: u32 },
    RandomLossBursts { mean_interval_ms: u64, mean_dur_ms: u64, permille: u32 },
    LatencySpike { at_ms: u64, dur_ms: u64, delay_ms: u64 },
    RateCut { at_ms: u64, dur_ms: u64, kbps: u32 },
}

fn proc_strategy() -> impl Strategy<Value = Proc> {
    prop_oneof![
        (0u64..5_000, 1u64..2_000).prop_map(|(at_ms, dur_ms)| Proc::Outage { at_ms, dur_ms }),
        (20u64..1_500, 10u64..500)
            .prop_map(|(mean_up_ms, mean_down_ms)| Proc::Flaps { mean_up_ms, mean_down_ms }),
        (50u64..2_000, 5u64..300)
            .prop_map(|(mean_interval_ms, gap_ms)| Proc::HandoverGaps { mean_interval_ms, gap_ms }),
        (0u64..5_000, 1u64..2_000, 1u32..950)
            .prop_map(|(at_ms, dur_ms, permille)| Proc::LossBurst { at_ms, dur_ms, permille }),
        (50u64..2_000, 5u64..500, 1u32..950).prop_map(
            |(mean_interval_ms, mean_dur_ms, permille)| {
                Proc::RandomLossBursts { mean_interval_ms, mean_dur_ms, permille }
            }
        ),
        (0u64..5_000, 1u64..2_000, 1u64..250)
            .prop_map(|(at_ms, dur_ms, delay_ms)| Proc::LatencySpike { at_ms, dur_ms, delay_ms }),
        (0u64..5_000, 1u64..2_000, 100u32..5_000).prop_map(|(at_ms, dur_ms, kbps)| Proc::RateCut {
            at_ms,
            dur_ms,
            kbps
        }),
    ]
}

/// A random plan: up to six processes, each targeting one of the two links.
fn plan_strategy() -> impl Strategy<Value = Vec<(Proc, usize)>> {
    prop::collection::vec((proc_strategy(), 0usize..2), 0..6)
}

/// Lowers the drawn plan onto a [`FaultSpec`] against the two bench links.
fn apply(plan: &[(Proc, usize)], links: &[LinkId; 2]) -> FaultSpec {
    let base_delay = SimDuration::from_millis(BASE_DELAY_MS);
    let base_rate = Bandwidth::from_mbps(BASE_RATE_MBPS);
    let mut spec = FaultSpec::new();
    for (proc, which) in plan {
        let l = links[*which];
        spec = match *proc {
            Proc::Outage { at_ms, dur_ms } => {
                spec.outage(vec![l], SimTime::from_millis(at_ms), SimDuration::from_millis(dur_ms))
            }
            Proc::Flaps { mean_up_ms, mean_down_ms } => spec.flaps(
                vec![l],
                SimDuration::from_millis(mean_up_ms),
                SimDuration::from_millis(mean_down_ms),
            ),
            Proc::HandoverGaps { mean_interval_ms, gap_ms } => spec.handover_gaps(
                vec![l],
                SimDuration::from_millis(mean_interval_ms),
                SimDuration::from_millis(gap_ms),
            ),
            Proc::LossBurst { at_ms, dur_ms, permille } => spec.loss_burst(
                l,
                SimTime::from_millis(at_ms),
                SimDuration::from_millis(dur_ms),
                LossModel::Bernoulli { p: f64::from(permille) / 1000.0 },
                LossModel::None,
            ),
            Proc::RandomLossBursts { mean_interval_ms, mean_dur_ms, permille } => spec
                .random_loss_bursts(
                    l,
                    SimDuration::from_millis(mean_interval_ms),
                    SimDuration::from_millis(mean_dur_ms),
                    LossModel::Bernoulli { p: f64::from(permille) / 1000.0 },
                    LossModel::None,
                ),
            Proc::LatencySpike { at_ms, dur_ms, delay_ms } => spec.latency_spike(
                l,
                SimTime::from_millis(at_ms),
                SimDuration::from_millis(dur_ms),
                SimDuration::from_millis(delay_ms),
                base_delay,
            ),
            Proc::RateCut { at_ms, dur_ms, kbps } => spec.rate_cut(
                l,
                SimTime::from_millis(at_ms),
                SimDuration::from_millis(dur_ms),
                Bandwidth::from_kbps(f64::from(kbps)),
                base_rate,
            ),
        };
    }
    spec
}

/// Timer-driven source: a 500-byte packet on each link every 2 ms until
/// `until`, whatever the fault layer is doing to those links.
struct Source {
    links: [LinkId; 2],
    until: SimTime,
}

impl Actor for Source {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) && ctx.now() < self.until {
            for l in self.links {
                let id = ctx.next_packet_id();
                ctx.transmit(l, Packet::new(id, 1, 500, ctx.now()));
            }
            ctx.schedule_timer(SimDuration::from_millis(2), 0);
        }
    }
}

/// Passive receiver; delivery is accounted by the link-level counters.
struct Sink;

impl Actor for Sink {
    fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
}

/// Builds the two-link topology, replays the plan's compiled schedule
/// against live traffic, and returns the per-link end state:
/// `(stats, queued_packets, up, delay, rate)`.
#[allow(clippy::type_complexity)]
fn run_chaos(
    plan: &[(Proc, usize)],
    seed: u64,
) -> Vec<(LinkStats, usize, bool, SimDuration, Bandwidth)> {
    let mut sim = Simulator::new(seed);
    let a = sim.add_actor(Sink);
    let b = sim.add_actor(Sink);
    let params = || {
        LinkParams::new(
            Bandwidth::from_mbps(BASE_RATE_MBPS),
            SimDuration::from_millis(BASE_DELAY_MS),
        )
    };
    let links = [sim.add_link(a, b, params()), sim.add_link(a, b, params())];
    let horizon = SimTime::from_millis(HORIZON_MS);
    sim.add_actor(Source { links, until: horizon });
    let sched = apply(plan, &links).compile(seed, horizon);
    sim.add_actor(FaultInjector::new(sched));
    sim.run_until(SimTime::from_millis(HORIZON_MS + DRAIN_MS));
    links
        .iter()
        .map(|&l| {
            let ctx = sim.ctx();
            (
                ctx.link_stats(l),
                ctx.link_queue_len(l).0,
                ctx.link_is_up(l),
                ctx.link_delay(l),
                ctx.link_rate(l),
            )
        })
        .collect()
}

proptest! {
    // Each case runs a full 5-simulated-second, two-link simulation (twice
    // for the determinism property); the default case count keeps the dev
    // cycle fast and CI's chaos-smoke job raises it via PROPTEST_CASES.

    /// Any random fault plan against live traffic completes without panics,
    /// restores both links to their baseline by the horizon, and conserves
    /// packets: offered = delivered + attributed drops + still queued.
    #[test]
    fn chaos_runs_complete_restore_links_and_conserve_packets(
        plan in plan_strategy(),
        seed in 0u64..1 << 32,
    ) {
        let end = run_chaos(&plan, seed);
        for (i, (stats, queued, up, delay, rate)) in end.iter().enumerate() {
            prop_assert!(up, "link {i} still down after the horizon");
            prop_assert_eq!(
                *delay,
                SimDuration::from_millis(BASE_DELAY_MS),
                "link {} delay not restored", i
            );
            prop_assert_eq!(
                *rate,
                Bandwidth::from_mbps(BASE_RATE_MBPS),
                "link {} rate not restored", i
            );
            prop_assert!(stats.offered_packets > 0, "source never offered traffic");
            prop_assert_eq!(
                stats.offered_packets,
                stats.delivered_packets
                    + stats.drops_queue
                    + stats.drops_aqm
                    + stats.drops_loss
                    + stats.drops_down
                    + *queued as u64,
                "packet conservation violated on link {}: {:?} (+{} queued)",
                i, stats, queued
            );
        }
    }

    /// The whole pipeline — compile, inject, simulate — is a pure function
    /// of `(plan, seed)`: replaying it gives bit-identical link counters.
    #[test]
    fn chaos_runs_are_deterministic(
        plan in plan_strategy(),
        seed in 0u64..1 << 32,
    ) {
        prop_assert_eq!(run_chaos(&plan, seed), run_chaos(&plan, seed));
    }
}

proptest! {
    /// Compiled schedules are well-formed for any plan: time-sorted, every
    /// event inside `[0, horizon]`, onsets and clears paired one-to-one,
    /// and each clear closing an episode that began at or before it.
    #[test]
    fn compiled_schedules_are_sorted_clamped_and_paired(
        plan in plan_strategy(),
        seed in 0u64..1 << 32,
    ) {
        let mut sim = Simulator::new(seed);
        let a = sim.add_actor(Sink);
        let b = sim.add_actor(Sink);
        let params = LinkParams::new(
            Bandwidth::from_mbps(BASE_RATE_MBPS),
            SimDuration::from_millis(BASE_DELAY_MS),
        );
        let links = [sim.add_link(a, b, params.clone()), sim.add_link(a, b, params)];
        let horizon = SimTime::from_millis(HORIZON_MS);
        let spec = apply(&plan, &links);
        let sched = spec.compile(seed, horizon);
        prop_assert_eq!(&sched, &spec.compile(seed, horizon), "compile is not deterministic");

        let mut onsets = 0usize;
        let mut clears = 0usize;
        let mut prev = SimTime::ZERO;
        for ev in sched.events() {
            prop_assert!(ev.at >= prev, "schedule not time-sorted");
            prop_assert!(ev.at <= horizon, "event past the horizon");
            prev = ev.at;
            match ev.phase {
                FaultPhase::Onset => onsets += 1,
                FaultPhase::Clear { onset } => {
                    clears += 1;
                    prop_assert!(onset <= ev.at, "clear precedes its own onset");
                    prop_assert!(onset < horizon, "episode begins at/after the horizon");
                }
            }
        }
        // No edge-crash processes in the plan, so every onset has a clear.
        prop_assert_eq!(onsets, clears, "unpaired fault episode");
    }
}
