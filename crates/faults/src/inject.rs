//! The [`FaultInjector`] actor: walks a compiled [`FaultSchedule`] and
//! applies each transition to the running simulation, emitting a
//! flight-recorder event (`fault-inject` / `fault-clear`) per transition so
//! `marnet-trace` can reconstruct the outage timeline.

use crate::schedule::{FaultAction, FaultEvent, FaultPhase, FaultSchedule};
use marnet_sim::engine::{Actor, Event, SimCtx};
use marnet_sim::packet::Payload;
use marnet_sim::time::SimDuration;
use marnet_telemetry::event::{component, TraceEvent};

/// Message the injector sends to an edge server's wrapper actor to make it
/// crash. The wrapper (see `marnet-edge`'s session module) goes dark for
/// `down_for`, then restarts — dropping its session/object-DB state first
/// when `lose_state` is set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeFault {
    /// How long the server stays down before restarting.
    pub down_for: SimDuration,
    /// Whether session and cache state is lost across the restart.
    pub lose_state: bool,
}

/// Actor that replays a [`FaultSchedule`] against the simulation.
///
/// Add it to the simulator alongside the workload actors; it wakes exactly
/// at each scheduled transition (timer tag 0) and applies the action via
/// the [`SimCtx`] link setters or an [`EdgeFault`] message.
#[derive(Debug)]
pub struct FaultInjector {
    schedule: FaultSchedule,
    next: usize,
}

impl FaultInjector {
    /// Creates an injector replaying `schedule`.
    pub fn new(schedule: FaultSchedule) -> Self {
        FaultInjector { schedule, next: 0 }
    }

    fn apply(&mut self, ctx: &mut SimCtx) {
        while self.next < self.schedule.events().len() {
            let ev = self.schedule.events()[self.next];
            if ev.at > ctx.now() {
                ctx.schedule_timer(ev.at - ctx.now(), 0);
                return;
            }
            self.perform(ctx, ev);
            self.next += 1;
        }
    }

    fn perform(&mut self, ctx: &mut SimCtx, ev: FaultEvent) {
        let (target, param) = match ev.action {
            FaultAction::LinkUp { link, up } => {
                ctx.set_link_up(link, up);
                (u64::from(component::link(link.index())), u64::from(up))
            }
            FaultAction::LinkLoss { link, loss } => {
                ctx.set_link_loss(link, loss);
                let permille = match loss {
                    marnet_sim::link::LossModel::None => 0,
                    marnet_sim::link::LossModel::Bernoulli { p } => (p * 1000.0) as u64,
                    marnet_sim::link::LossModel::GilbertElliott { loss_in_bad, .. } => {
                        (loss_in_bad * 1000.0) as u64
                    }
                };
                (u64::from(component::link(link.index())), permille)
            }
            FaultAction::LinkDelay { link, delay } => {
                ctx.set_link_delay(link, delay);
                (u64::from(component::link(link.index())), delay.as_nanos())
            }
            FaultAction::LinkRate { link, rate } => {
                ctx.set_link_rate(link, rate);
                (u64::from(component::link(link.index())), rate.as_bps())
            }
            FaultAction::EdgeCrash { server, down_for, lose_state } => {
                ctx.send_message(server, Payload::new(EdgeFault { down_for, lose_state }));
                (server.index() as u64, down_for.as_nanos())
            }
        };
        let t = ctx.now().as_nanos();
        let comp = component::actor(ctx.self_id().index());
        let code = ev.kind.code();
        match ev.phase {
            FaultPhase::Onset => {
                ctx.trace_with(|| TraceEvent::fault_inject(t, comp, code, target, param));
            }
            FaultPhase::Clear { onset } => {
                let dur = (ev.at - onset).as_nanos();
                ctx.trace_with(|| TraceEvent::fault_clear(t, comp, code, target, dur));
            }
        }
    }
}

impl Actor for FaultInjector {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            self.apply(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultSpec;
    use marnet_sim::engine::Simulator;
    use marnet_sim::link::{Bandwidth, LinkParams, LossModel};
    use marnet_sim::time::SimTime;
    use marnet_telemetry::event::TraceKind;

    struct Idle;
    impl Actor for Idle {
        fn on_event(&mut self, _: &mut SimCtx, _: Event) {}
    }

    #[test]
    fn injector_applies_outage_and_restores() {
        let mut sim = Simulator::new(9);
        let a = sim.add_actor(Idle);
        let b = sim.add_actor(Idle);
        let l = sim.add_link(
            a,
            b,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(5)),
        );
        let sched = FaultSpec::new()
            .outage(vec![l], SimTime::from_secs(1), SimDuration::from_millis(500))
            .compile(9, SimTime::from_secs(5));
        sim.add_actor(FaultInjector::new(sched));
        sim.run_until(SimTime::from_millis(1100));
        assert!(!sim.ctx().link_is_up(l), "link should be down during outage");
        sim.run_until(SimTime::from_secs(2));
        assert!(sim.ctx().link_is_up(l), "link should recover after outage");
    }

    #[test]
    fn injector_swaps_loss_and_delay_and_rate() {
        let mut sim = Simulator::new(10);
        let a = sim.add_actor(Idle);
        let b = sim.add_actor(Idle);
        let l = sim.add_link(
            a,
            b,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(5)),
        );
        let sched = FaultSpec::new()
            .loss_burst(
                l,
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                LossModel::Bernoulli { p: 0.3 },
                LossModel::None,
            )
            .latency_spike(
                l,
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                SimDuration::from_millis(80),
                SimDuration::from_millis(5),
            )
            .rate_cut(
                l,
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                Bandwidth::from_mbps(1.0),
                Bandwidth::from_mbps(10.0),
            )
            .compile(10, SimTime::from_secs(5));
        sim.add_actor(FaultInjector::new(sched));
        sim.run_until(SimTime::from_millis(1500));
        assert_eq!(sim.ctx().link_delay(l), SimDuration::from_millis(80));
        assert_eq!(sim.ctx().link_rate(l), Bandwidth::from_mbps(1.0));
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.ctx().link_delay(l), SimDuration::from_millis(5));
        assert_eq!(sim.ctx().link_rate(l), Bandwidth::from_mbps(10.0));
    }

    #[test]
    fn injector_emits_paired_trace_events() {
        let mut sim = Simulator::new(11);
        let a = sim.add_actor(Idle);
        let b = sim.add_actor(Idle);
        let l = sim.add_link(
            a,
            b,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(5)),
        );
        let sched = FaultSpec::new()
            .outage(vec![l], SimTime::from_secs(1), SimDuration::from_millis(500))
            .compile(11, SimTime::from_secs(5));
        sim.add_actor(FaultInjector::new(sched));
        sim.enable_flight_recorder(1024);
        sim.run_until(SimTime::from_secs(3));
        let trace = sim.take_trace();
        let injects: Vec<_> = trace.iter().filter(|e| e.kind == TraceKind::FaultInject).collect();
        let clears: Vec<_> = trace.iter().filter(|e| e.kind == TraceKind::FaultClear).collect();
        assert_eq!(injects.len(), 1);
        assert_eq!(clears.len(), 1);
        assert_eq!(injects[0].t, SimTime::from_secs(1).as_nanos());
        assert_eq!(clears[0].b, SimDuration::from_millis(500).as_nanos());
    }
}
