//! Fault taxonomy and the deterministic schedule compiler.
//!
//! A [`FaultSpec`] is a declarative list of fault *processes* — scripted
//! one-shots (an outage at t=2 s for 500 ms) and stochastic renewal
//! processes (link flaps, handover gaps, random loss bursts). Compiling a
//! spec lowers every process into a flat, time-sorted list of
//! [`FaultEvent`]s; all randomness comes from ChaCha12 substreams derived
//! from `(seed, process index, process tag)`, so the same spec and seed
//! always produce the same schedule regardless of thread count.

use marnet_sim::engine::ActorId;
use marnet_sim::link::{Bandwidth, LinkId, LossModel};
use marnet_sim::rng::derive_rng;
use marnet_sim::time::{SimDuration, SimTime};
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// What family of fault an event belongs to. The `u8` codes are stable and
/// appear as the `aux` byte of `fault-inject` / `fault-clear` trace events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultKind {
    /// A scripted one-shot link outage.
    Outage = 0,
    /// One down-spell of the two-state flap process.
    Flap = 1,
    /// A handover gap (short outage from the renewal gap process).
    HandoverGap = 2,
    /// A burst-loss episode (loss model swapped for the burst duration).
    LossBurst = 3,
    /// A latency spike (propagation delay raised for the spike duration).
    LatencySpike = 4,
    /// A rate cut (transmission rate lowered for the episode).
    RateCut = 5,
    /// An edge-server crash/restart cycle.
    EdgeCrash = 6,
}

impl FaultKind {
    /// The stable trace `aux` code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Stable lowercase name (for reports and docs).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Outage => "outage",
            FaultKind::Flap => "flap",
            FaultKind::HandoverGap => "handover-gap",
            FaultKind::LossBurst => "loss-burst",
            FaultKind::LatencySpike => "latency-spike",
            FaultKind::RateCut => "rate-cut",
            FaultKind::EdgeCrash => "edge-crash",
        }
    }
}

/// The concrete state change a fault event applies. Actions are absolute
/// (they carry the value to set, not a delta), which keeps the injector
/// stateless: the compiler pairs every onset with a clear action that
/// restores the captured baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Bring a link administratively up or down.
    LinkUp {
        /// The affected link.
        link: LinkId,
        /// The new administrative state.
        up: bool,
    },
    /// Replace a link's loss model.
    LinkLoss {
        /// The affected link.
        link: LinkId,
        /// The loss model to install.
        loss: LossModel,
    },
    /// Replace a link's one-way propagation delay.
    LinkDelay {
        /// The affected link.
        link: LinkId,
        /// The delay to install.
        delay: SimDuration,
    },
    /// Replace a link's transmission rate.
    LinkRate {
        /// The affected link.
        link: LinkId,
        /// The rate to install.
        rate: Bandwidth,
    },
    /// Crash an edge server: the injector sends [`crate::inject::EdgeFault`]
    /// to the server's wrapper actor, which goes dark and restarts itself.
    EdgeCrash {
        /// The wrapper actor hosting the server.
        server: ActorId,
        /// How long the server stays down.
        down_for: SimDuration,
        /// Whether session/object-DB state is lost across the restart.
        lose_state: bool,
    },
}

/// Whether an event starts a fault episode or ends one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// The fault begins.
    Onset,
    /// The fault ends; `onset` is when it began (for trace durations).
    Clear {
        /// Start of the episode this event closes.
        onset: SimTime,
    },
}

/// One scheduled fault transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the transition happens.
    pub at: SimTime,
    /// The fault family (trace `aux` code).
    pub kind: FaultKind,
    /// Onset or clear.
    pub phase: FaultPhase,
    /// The state change to apply.
    pub action: FaultAction,
}

/// One fault process in a [`FaultSpec`].
#[derive(Debug, Clone)]
enum FaultProcess {
    Outage {
        links: Vec<LinkId>,
        at: SimTime,
        duration: SimDuration,
    },
    Flaps {
        links: Vec<LinkId>,
        mean_up: SimDuration,
        mean_down: SimDuration,
    },
    HandoverGaps {
        links: Vec<LinkId>,
        mean_interval: SimDuration,
        gap: SimDuration,
    },
    LossBurst {
        link: LinkId,
        at: SimTime,
        duration: SimDuration,
        loss: LossModel,
        baseline: LossModel,
    },
    RandomLossBursts {
        link: LinkId,
        mean_interval: SimDuration,
        mean_duration: SimDuration,
        loss: LossModel,
        baseline: LossModel,
    },
    LatencySpike {
        link: LinkId,
        at: SimTime,
        duration: SimDuration,
        delay: SimDuration,
        baseline: SimDuration,
    },
    RateCut {
        link: LinkId,
        at: SimTime,
        duration: SimDuration,
        rate: Bandwidth,
        baseline: Bandwidth,
    },
    EdgeCrash {
        server: ActorId,
        at: SimTime,
        down_for: SimDuration,
        lose_state: bool,
    },
}

impl FaultProcess {
    fn tag(&self) -> &'static str {
        match self {
            FaultProcess::Outage { .. } => "outage",
            FaultProcess::Flaps { .. } => "flaps",
            FaultProcess::HandoverGaps { .. } => "handover",
            FaultProcess::LossBurst { .. } => "loss-burst",
            FaultProcess::RandomLossBursts { .. } => "loss-bursts",
            FaultProcess::LatencySpike { .. } => "latency-spike",
            FaultProcess::RateCut { .. } => "rate-cut",
            FaultProcess::EdgeCrash { .. } => "edge-crash",
        }
    }
}

/// Declarative fault plan: an ordered list of fault processes, compiled
/// into a [`FaultSchedule`] with [`FaultSpec::compile`].
#[derive(Debug, Clone, Default)]
pub struct FaultSpec {
    processes: Vec<FaultProcess>,
}

impl FaultSpec {
    /// An empty spec (compiles to an empty schedule).
    pub fn new() -> Self {
        FaultSpec::default()
    }

    /// Number of fault processes in the spec.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// `true` if the spec has no processes.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Scripted one-shot outage: `links` go down at `at` and come back
    /// `duration` later.
    #[must_use]
    pub fn outage(mut self, links: Vec<LinkId>, at: SimTime, duration: SimDuration) -> Self {
        self.processes.push(FaultProcess::Outage { links, at, duration });
        self
    }

    /// Two-state flap process: `links` alternate up-spells (exponential,
    /// mean `mean_up`) and down-spells (exponential, mean `mean_down`),
    /// starting up. The Gilbert up/down analogue of the link layer's
    /// Gilbert-Elliott packet-loss process.
    #[must_use]
    pub fn flaps(
        mut self,
        links: Vec<LinkId>,
        mean_up: SimDuration,
        mean_down: SimDuration,
    ) -> Self {
        self.processes.push(FaultProcess::Flaps { links, mean_up, mean_down });
        self
    }

    /// Handover-gap renewal process: every ~`mean_interval` (exponential)
    /// the links drop for a fixed `gap` — the §IV-A-4 association gap.
    #[must_use]
    pub fn handover_gaps(
        mut self,
        links: Vec<LinkId>,
        mean_interval: SimDuration,
        gap: SimDuration,
    ) -> Self {
        self.processes.push(FaultProcess::HandoverGaps { links, mean_interval, gap });
        self
    }

    /// Scripted burst-loss episode: `link`'s loss model becomes `loss` at
    /// `at` and reverts to `baseline` after `duration`.
    #[must_use]
    pub fn loss_burst(
        mut self,
        link: LinkId,
        at: SimTime,
        duration: SimDuration,
        loss: LossModel,
        baseline: LossModel,
    ) -> Self {
        self.processes.push(FaultProcess::LossBurst { link, at, duration, loss, baseline });
        self
    }

    /// Random burst-loss episodes on `link`: exponential inter-burst gaps
    /// (mean `mean_interval`) and burst lengths (mean `mean_duration`).
    #[must_use]
    pub fn random_loss_bursts(
        mut self,
        link: LinkId,
        mean_interval: SimDuration,
        mean_duration: SimDuration,
        loss: LossModel,
        baseline: LossModel,
    ) -> Self {
        self.processes.push(FaultProcess::RandomLossBursts {
            link,
            mean_interval,
            mean_duration,
            loss,
            baseline,
        });
        self
    }

    /// Scripted latency spike: `link`'s propagation delay becomes `delay`
    /// at `at` and reverts to `baseline` after `duration`.
    #[must_use]
    pub fn latency_spike(
        mut self,
        link: LinkId,
        at: SimTime,
        duration: SimDuration,
        delay: SimDuration,
        baseline: SimDuration,
    ) -> Self {
        self.processes.push(FaultProcess::LatencySpike { link, at, duration, delay, baseline });
        self
    }

    /// Scripted rate cut: `link`'s rate becomes `rate` at `at` and reverts
    /// to `baseline` after `duration`.
    #[must_use]
    pub fn rate_cut(
        mut self,
        link: LinkId,
        at: SimTime,
        duration: SimDuration,
        rate: Bandwidth,
        baseline: Bandwidth,
    ) -> Self {
        self.processes.push(FaultProcess::RateCut { link, at, duration, rate, baseline });
        self
    }

    /// Scripted edge-server crash at `at`: the wrapper actor `server` goes
    /// dark for `down_for`, losing session state if `lose_state`.
    #[must_use]
    pub fn edge_crash(
        mut self,
        server: ActorId,
        at: SimTime,
        down_for: SimDuration,
        lose_state: bool,
    ) -> Self {
        self.processes.push(FaultProcess::EdgeCrash { server, at, down_for, lose_state });
        self
    }

    /// Compiles the spec into a time-sorted schedule covering `[0, horizon)`.
    ///
    /// Every stochastic process draws from its own substream labelled
    /// `faults/{index}/{tag}`, so adding a process never perturbs the draws
    /// of existing ones. Episodes are clamped to the horizon: an onset at or
    /// past `horizon` is dropped, and a clear past `horizon` is pulled back
    /// to `horizon`, so no fault outlives the schedule (the conservation
    /// property tests rely on this).
    pub fn compile(&self, seed: u64, horizon: SimTime) -> FaultSchedule {
        let mut events: Vec<FaultEvent> = Vec::new();
        for (i, proc) in self.processes.iter().enumerate() {
            let mut rng = derive_rng(seed, &format!("faults/{i}/{}", proc.tag()));
            compile_process(proc, horizon, &mut rng, &mut events);
        }
        // Stable sort: ties keep spec order, so the schedule is a pure
        // function of (spec, seed, horizon).
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }
}

/// Exponential draw with the given mean, clamped away from zero.
fn exp_draw(rng: &mut ChaCha12Rng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    SimDuration::from_secs_f64((-u.ln() * mean.as_secs_f64()).max(1e-3))
}

/// Pushes an onset/clear pair for one episode, clamped to the horizon.
#[allow(clippy::too_many_arguments)]
fn push_episode(
    events: &mut Vec<FaultEvent>,
    kind: FaultKind,
    at: SimTime,
    duration: SimDuration,
    horizon: SimTime,
    onset: FaultAction,
    clear: FaultAction,
) {
    if at >= horizon {
        return;
    }
    let end = at.saturating_add(duration).min(horizon);
    events.push(FaultEvent { at, kind, phase: FaultPhase::Onset, action: onset });
    events.push(FaultEvent {
        at: end,
        kind,
        phase: FaultPhase::Clear { onset: at },
        action: clear,
    });
}

fn compile_process(
    proc: &FaultProcess,
    horizon: SimTime,
    rng: &mut ChaCha12Rng,
    events: &mut Vec<FaultEvent>,
) {
    match proc {
        FaultProcess::Outage { links, at, duration } => {
            for &l in links {
                push_episode(
                    events,
                    FaultKind::Outage,
                    *at,
                    *duration,
                    horizon,
                    FaultAction::LinkUp { link: l, up: false },
                    FaultAction::LinkUp { link: l, up: true },
                );
            }
        }
        FaultProcess::Flaps { links, mean_up, mean_down } => {
            let mut t = SimTime::ZERO;
            loop {
                t = t.saturating_add(exp_draw(rng, *mean_up));
                if t >= horizon {
                    break;
                }
                let down = exp_draw(rng, *mean_down);
                for &l in links {
                    push_episode(
                        events,
                        FaultKind::Flap,
                        t,
                        down,
                        horizon,
                        FaultAction::LinkUp { link: l, up: false },
                        FaultAction::LinkUp { link: l, up: true },
                    );
                }
                t = t.saturating_add(down);
            }
        }
        FaultProcess::HandoverGaps { links, mean_interval, gap } => {
            let mut t = SimTime::ZERO;
            loop {
                t = t.saturating_add(exp_draw(rng, *mean_interval));
                if t >= horizon {
                    break;
                }
                for &l in links {
                    push_episode(
                        events,
                        FaultKind::HandoverGap,
                        t,
                        *gap,
                        horizon,
                        FaultAction::LinkUp { link: l, up: false },
                        FaultAction::LinkUp { link: l, up: true },
                    );
                }
                t = t.saturating_add(*gap);
            }
        }
        FaultProcess::LossBurst { link, at, duration, loss, baseline } => {
            push_episode(
                events,
                FaultKind::LossBurst,
                *at,
                *duration,
                horizon,
                FaultAction::LinkLoss { link: *link, loss: *loss },
                FaultAction::LinkLoss { link: *link, loss: *baseline },
            );
        }
        FaultProcess::RandomLossBursts { link, mean_interval, mean_duration, loss, baseline } => {
            let mut t = SimTime::ZERO;
            loop {
                t = t.saturating_add(exp_draw(rng, *mean_interval));
                if t >= horizon {
                    break;
                }
                let burst = exp_draw(rng, *mean_duration);
                push_episode(
                    events,
                    FaultKind::LossBurst,
                    t,
                    burst,
                    horizon,
                    FaultAction::LinkLoss { link: *link, loss: *loss },
                    FaultAction::LinkLoss { link: *link, loss: *baseline },
                );
                t = t.saturating_add(burst);
            }
        }
        FaultProcess::LatencySpike { link, at, duration, delay, baseline } => {
            push_episode(
                events,
                FaultKind::LatencySpike,
                *at,
                *duration,
                horizon,
                FaultAction::LinkDelay { link: *link, delay: *delay },
                FaultAction::LinkDelay { link: *link, delay: *baseline },
            );
        }
        FaultProcess::RateCut { link, at, duration, rate, baseline } => {
            push_episode(
                events,
                FaultKind::RateCut,
                *at,
                *duration,
                horizon,
                FaultAction::LinkRate { link: *link, rate: *rate },
                FaultAction::LinkRate { link: *link, rate: *baseline },
            );
        }
        FaultProcess::EdgeCrash { server, at, down_for, lose_state } => {
            if *at >= horizon {
                return;
            }
            // The crash is a single event; the wrapper actor handles its
            // own restart timer, so no clear action is scheduled here.
            events.push(FaultEvent {
                at: *at,
                kind: FaultKind::EdgeCrash,
                phase: FaultPhase::Onset,
                action: FaultAction::EdgeCrash {
                    server: *server,
                    down_for: *down_for,
                    lose_state: *lose_state,
                },
            });
        }
    }
}

/// A compiled, time-sorted fault schedule, ready for [`crate::FaultInjector`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The scheduled events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total time at least one link-down episode is active (union of
    /// `LinkUp{up: false}` episodes), for reports.
    pub fn downtime(&self) -> SimDuration {
        let mut spans: Vec<(SimTime, SimTime)> = Vec::new();
        for ev in &self.events {
            if let (FaultPhase::Clear { onset }, FaultAction::LinkUp { up: true, .. }) =
                (ev.phase, ev.action)
            {
                spans.push((onset, ev.at));
            }
        }
        spans.sort();
        let mut total = SimDuration::ZERO;
        let mut cur: Option<(SimTime, SimTime)> = None;
        for (s, e) in spans {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    total += ce - cs;
                    cur = Some((s, e));
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(i: u32) -> LinkId {
        // LinkId's field is crate-private; round-trip through a simulator.
        let mut sim = marnet_sim::engine::Simulator::new(1);
        struct Idle;
        impl marnet_sim::engine::Actor for Idle {
            fn on_event(
                &mut self,
                _: &mut marnet_sim::engine::SimCtx,
                _: marnet_sim::engine::Event,
            ) {
            }
        }
        let a = sim.add_actor(Idle);
        let b = sim.add_actor(Idle);
        let mut last = None;
        for _ in 0..=i {
            last = Some(sim.add_link(
                a,
                b,
                marnet_sim::link::LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::ZERO),
            ));
        }
        last.unwrap()
    }

    #[test]
    fn compile_is_deterministic() {
        let l = link(0);
        let spec = FaultSpec::new()
            .flaps(vec![l], SimDuration::from_secs(5), SimDuration::from_millis(400))
            .handover_gaps(vec![l], SimDuration::from_secs(7), SimDuration::from_millis(300));
        let a = spec.compile(42, SimTime::from_secs(60));
        let b = spec.compile(42, SimTime::from_secs(60));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = spec.compile(43, SimTime::from_secs(60));
        assert_ne!(a, c, "different seeds must give different schedules");
    }

    #[test]
    fn substreams_are_insulated() {
        // Adding a later process must not perturb an earlier one's draws.
        let l = link(0);
        let base = FaultSpec::new().flaps(
            vec![l],
            SimDuration::from_secs(5),
            SimDuration::from_millis(400),
        );
        let extended = base.clone().handover_gaps(
            vec![l],
            SimDuration::from_secs(9),
            SimDuration::from_millis(250),
        );
        let a = base.compile(7, SimTime::from_secs(30));
        let b = extended.compile(7, SimTime::from_secs(30));
        let flaps_only: Vec<_> =
            b.events().iter().filter(|e| e.kind == FaultKind::Flap).copied().collect();
        assert_eq!(a.events(), flaps_only.as_slice());
    }

    #[test]
    fn episodes_are_clamped_to_horizon() {
        let l = link(0);
        let spec =
            FaultSpec::new().outage(vec![l], SimTime::from_secs(9), SimDuration::from_secs(100));
        let sched = spec.compile(1, SimTime::from_secs(10));
        assert_eq!(sched.len(), 2);
        assert_eq!(sched.events()[1].at, SimTime::from_secs(10));
        // Onsets past the horizon are dropped entirely.
        let late = FaultSpec::new()
            .outage(vec![l], SimTime::from_secs(20), SimDuration::from_secs(1))
            .compile(1, SimTime::from_secs(10));
        assert!(late.is_empty());
    }

    #[test]
    fn events_are_sorted_and_paired() {
        let l = link(0);
        let spec = FaultSpec::new()
            .outage(vec![l], SimTime::from_secs(2), SimDuration::from_millis(500))
            .loss_burst(
                l,
                SimTime::from_secs(1),
                SimDuration::from_secs(1),
                LossModel::Bernoulli { p: 0.5 },
                LossModel::None,
            );
        let sched = spec.compile(3, SimTime::from_secs(10));
        let times: Vec<_> = sched.events().iter().map(|e| e.at).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        let onsets = sched.events().iter().filter(|e| e.phase == FaultPhase::Onset).count();
        assert_eq!(onsets, 2);
        assert_eq!(sched.len(), 4);
    }

    #[test]
    fn downtime_unions_overlapping_outages() {
        let l0 = link(0);
        let sched = FaultSpec::new()
            .outage(vec![l0], SimTime::from_secs(1), SimDuration::from_secs(2))
            .outage(vec![l0], SimTime::from_secs(2), SimDuration::from_secs(2))
            .compile(1, SimTime::from_secs(10));
        assert_eq!(sched.downtime(), SimDuration::from_secs(3));
    }

    #[test]
    fn kind_codes_are_stable() {
        assert_eq!(FaultKind::Outage.code(), 0);
        assert_eq!(FaultKind::EdgeCrash.code(), 6);
        assert_eq!(FaultKind::LossBurst.name(), "loss-burst");
    }
}
