//! # marnet-faults — deterministic fault injection
//!
//! The paper's central claim is that MAR transport must *degrade gracefully
//! instead of stalling* when the network misbehaves. This crate supplies the
//! misbehaviour: a seeded, fully deterministic fault layer driven through the
//! simulator — link outages and flaps (a two-state up/down renewal process
//! plus scripted one-shot events), handover gaps, burst-loss episodes,
//! latency spikes, and edge-server crash/restart with configurable state
//! loss.
//!
//! Determinism contract (the same invariant as `marnet-lab`): a
//! [`FaultSpec`] compiles into a [`FaultSchedule`] using only ChaCha12
//! substreams derived from the trial seed and a per-process label, so the
//! schedule — and therefore every experiment artifact built on it — is
//! byte-identical at any `--threads`. Nothing in this crate may touch
//! wall-clock time or ambient randomness; `marnet-lint`'s determinism rules
//! (including `unseeded-rng`) audit this crate.
//!
//! * [`schedule`] — fault taxonomy, the spec builder and the compiler;
//! * [`inject`] — the [`FaultInjector`] actor that walks a schedule and
//!   applies it to a running simulation, emitting flight-recorder events
//!   for every transition.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod inject;
pub mod schedule;

pub use inject::{EdgeFault, FaultInjector};
pub use schedule::{FaultAction, FaultEvent, FaultKind, FaultPhase, FaultSchedule, FaultSpec};
