//! Request/response RTT probes — the instrument behind Table II.
//!
//! §IV-B of the paper measures the CloudRidAR platform's link RTT in four
//! scenarios by timing offload transactions. [`ProbeClient`] sends a request
//! of configurable size, [`ProbeServer`] replies (optionally after a
//! service delay), and the client records the full round-trip latency.

use crate::nic::{unwrap_packet, TxPath};
use marnet_sim::engine::{Actor, Event, SimCtx};
use marnet_sim::packet::Packet;
use marnet_sim::stats::Histogram;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_telemetry::{MetricsRegistry, TimeHistogram};
use std::cell::RefCell;
use std::rc::Rc;

/// Payload of a probe request/response.
#[derive(Debug, Clone)]
pub struct ProbeMessage {
    /// Probe sequence number.
    pub seq: u64,
    /// When the client emitted the request.
    pub sent_at: SimTime,
    /// `true` for server → client responses.
    pub is_response: bool,
}

/// Shared RTT samples collected by a [`ProbeClient`].
#[derive(Debug, Default)]
pub struct ProbeStats {
    /// Round-trip times in milliseconds.
    pub rtt_ms: Histogram,
    /// Requests sent.
    pub sent: u64,
    /// Responses received.
    pub received: u64,
}

/// Periodic prober measuring round-trip latency to a [`ProbeServer`].
#[derive(Debug)]
pub struct ProbeClient {
    flow: u64,
    path: TxPath,
    request_bytes: u32,
    interval: SimDuration,
    count: u64,
    next_seq: u64,
    stats: Rc<RefCell<ProbeStats>>,
    rtt_series: Option<TimeHistogram>,
}

impl ProbeClient {
    /// A client sending `count` probes of `request_bytes` every `interval`.
    pub fn new(
        flow: u64,
        path: TxPath,
        request_bytes: u32,
        interval: SimDuration,
        count: u64,
    ) -> Self {
        ProbeClient {
            flow,
            path,
            request_bytes,
            interval,
            count,
            next_seq: 0,
            stats: Rc::new(RefCell::new(ProbeStats::default())),
            rtt_series: None,
        }
    }

    /// Also publishes every RTT sample (milliseconds) into `registry` as the
    /// sim-time-bucketed series `transport.probe.{name}.rtt_ms`, builder
    /// style.
    #[must_use]
    pub fn with_rtt_series(mut self, registry: &MetricsRegistry, name: &str) -> Self {
        self.rtt_series =
            Some(registry.time_histogram(&format!("transport.probe.{name}.rtt_ms"), 100_000_000));
        self
    }

    /// Shared handle to the collected samples.
    pub fn stats(&self) -> Rc<RefCell<ProbeStats>> {
        Rc::clone(&self.stats)
    }

    fn fire(&mut self, ctx: &mut SimCtx) {
        if self.next_seq >= self.count {
            return;
        }
        let msg = ProbeMessage { seq: self.next_seq, sent_at: ctx.now(), is_response: false };
        self.next_seq += 1;
        let id = ctx.next_packet_id();
        let pkt = Packet::new(id, self.flow, self.request_bytes, ctx.now()).with_payload(msg);
        self.path.send(ctx, pkt);
        self.stats.borrow_mut().sent += 1;
        ctx.schedule_timer(self.interval, 0);
    }
}

impl Actor for ProbeClient {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start | Event::Timer { .. } => self.fire(ctx),
            other => {
                if let Some(pkt) = unwrap_packet(other) {
                    if pkt.flow != self.flow {
                        return;
                    }
                    if let Some(msg) = pkt.payload.downcast_ref::<ProbeMessage>() {
                        if msg.is_response {
                            let rtt = ctx.now().saturating_since(msg.sent_at);
                            let mut st = self.stats.borrow_mut();
                            st.received += 1;
                            st.rtt_ms.record(rtt.as_millis_f64());
                            if let Some(series) = &self.rtt_series {
                                series.observe(ctx.now().as_nanos(), rtt.as_millis_f64());
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Echo server answering probes, optionally after a service delay (modelling
/// server-side computation, as in the CloudRidAR offload transactions).
#[derive(Debug)]
pub struct ProbeServer {
    flow: u64,
    path: TxPath,
    response_bytes: u32,
    service_delay: SimDuration,
    pending: Vec<ProbeMessage>,
}

impl ProbeServer {
    /// A server replying with `response_bytes` immediately.
    pub fn new(flow: u64, path: TxPath, response_bytes: u32) -> Self {
        ProbeServer {
            flow,
            path,
            response_bytes,
            service_delay: SimDuration::ZERO,
            pending: Vec::new(),
        }
    }

    /// Adds a fixed service delay before each response, builder style.
    #[must_use]
    pub fn with_service_delay(mut self, delay: SimDuration) -> Self {
        self.service_delay = delay;
        self
    }

    fn respond(&mut self, ctx: &mut SimCtx, mut msg: ProbeMessage) {
        msg.is_response = true;
        let id = ctx.next_packet_id();
        let pkt = Packet::new(id, self.flow, self.response_bytes, ctx.now()).with_payload(msg);
        self.path.send(ctx, pkt);
    }
}

impl Actor for ProbeServer {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Timer { .. } => {
                if !self.pending.is_empty() {
                    let msg = self.pending.remove(0);
                    self.respond(ctx, msg);
                }
            }
            other => {
                if let Some(pkt) = unwrap_packet(other) {
                    if pkt.flow != self.flow {
                        return;
                    }
                    if let Some(msg) = pkt.payload.downcast_ref::<ProbeMessage>() {
                        if !msg.is_response {
                            let msg = msg.clone();
                            if self.service_delay == SimDuration::ZERO {
                                self.respond(ctx, msg);
                            } else {
                                self.pending.push(msg);
                                ctx.schedule_timer(self.service_delay, 0);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::engine::Simulator;
    use marnet_sim::link::{Bandwidth, LinkParams};

    fn setup(one_way: SimDuration, service: SimDuration) -> Rc<RefCell<ProbeStats>> {
        let mut sim = Simulator::new(5);
        let c = sim.reserve_actor();
        let s = sim.reserve_actor();
        let fwd = sim.add_link(c, s, LinkParams::new(Bandwidth::from_mbps(100.0), one_way));
        let rev = sim.add_link(s, c, LinkParams::new(Bandwidth::from_mbps(100.0), one_way));
        let client = ProbeClient::new(1, TxPath::Link(fwd), 200, SimDuration::from_millis(50), 50);
        let stats = client.stats();
        sim.install_actor(c, client);
        sim.install_actor(
            s,
            ProbeServer::new(1, TxPath::Link(rev), 200).with_service_delay(service),
        );
        sim.run_until(SimTime::from_secs(10));
        stats
    }

    #[test]
    fn rtt_equals_twice_one_way_plus_serialization() {
        let stats = setup(SimDuration::from_millis(18), SimDuration::ZERO);
        let st = stats.borrow();
        assert_eq!(st.sent, 50);
        assert_eq!(st.received, 50);
        let mut h = st.rtt_ms.clone();
        let median = h.median().unwrap();
        // 2×18 ms propagation + 2×16 µs serialization ≈ 36 ms.
        assert!((median - 36.0).abs() < 0.5, "median RTT {median}");
    }

    #[test]
    fn service_delay_adds_to_rtt() {
        let stats = setup(SimDuration::from_millis(4), SimDuration::from_millis(10));
        let mut h = stats.borrow().rtt_ms.clone();
        let median = h.median().unwrap();
        assert!((median - 18.0).abs() < 0.5, "median RTT {median}");
    }
}
