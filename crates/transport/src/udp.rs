//! Unreliable datagram endpoints: a constant-bit-rate source and a counting
//! sink.
//!
//! MAR sensor streams (§VI-A) and the bulk background uploads of the
//! queueing experiment are modelled as UDP-like constant-rate flows: no
//! retransmission, no congestion response.

use crate::nic::{unwrap_packet, TxPath};
use marnet_sim::engine::{Actor, Event, SimCtx};
use marnet_sim::packet::Packet;
use marnet_sim::stats::{Histogram, RateMeter};
use marnet_sim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Constant-bit-rate datagram source.
#[derive(Debug)]
pub struct UdpSource {
    flow: u64,
    path: TxPath,
    packet_bytes: u32,
    interval: SimDuration,
    start_at: SimTime,
    stop_at: SimTime,
    prio: u8,
    sent: u64,
}

impl UdpSource {
    /// A source emitting `packet_bytes`-sized datagrams every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(flow: u64, path: TxPath, packet_bytes: u32, interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO, "interval must be positive");
        UdpSource {
            flow,
            path,
            packet_bytes,
            interval,
            start_at: SimTime::ZERO,
            stop_at: SimTime::MAX,
            prio: 0,
            sent: 0,
        }
    }

    /// A source with rate expressed in Mb/s instead of an interval.
    pub fn with_rate_mbps(flow: u64, path: TxPath, packet_bytes: u32, mbps: f64) -> Self {
        assert!(mbps > 0.0, "rate must be positive");
        let pps = mbps * 1e6 / (f64::from(packet_bytes) * 8.0);
        let interval = SimDuration::from_secs_f64(1.0 / pps);
        UdpSource::new(flow, path, packet_bytes, interval)
    }

    /// Restricts the active window, builder style.
    #[must_use]
    pub fn active_between(mut self, start: SimTime, stop: SimTime) -> Self {
        self.start_at = start;
        self.stop_at = stop;
        self
    }

    /// Marks emitted packets with a priority band, builder style.
    #[must_use]
    pub fn with_prio(mut self, prio: u8) -> Self {
        self.prio = prio;
        self
    }

    /// Datagrams emitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl Actor for UdpSource {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                let wait = self.start_at.saturating_since(ctx.now());
                ctx.schedule_timer(wait, 0);
            }
            Event::Timer { .. } => {
                if ctx.now() >= self.stop_at {
                    return;
                }
                let id = ctx.next_packet_id();
                let pkt =
                    Packet::new(id, self.flow, self.packet_bytes, ctx.now()).with_prio(self.prio);
                self.path.send(ctx, pkt);
                self.sent += 1;
                ctx.schedule_timer(self.interval, 0);
            }
            _ => {}
        }
    }
}

/// Shared view of what a [`UdpSink`] received.
#[derive(Debug)]
pub struct UdpSinkStats {
    /// Datagrams received.
    pub packets: u64,
    /// Bytes received.
    pub bytes: u64,
    /// One-way latency samples in milliseconds (packet creation → arrival).
    pub latency_ms: Histogram,
    /// Delivery-rate meter (100 ms buckets).
    pub meter: RateMeter,
}

impl Default for UdpSinkStats {
    fn default() -> Self {
        UdpSinkStats {
            packets: 0,
            bytes: 0,
            latency_ms: Histogram::new(),
            meter: RateMeter::new(SimDuration::from_millis(100)),
        }
    }
}

/// Datagram sink counting packets, bytes and one-way latency.
#[derive(Debug)]
pub struct UdpSink {
    flow: Option<u64>,
    stats: Rc<RefCell<UdpSinkStats>>,
}

impl UdpSink {
    /// A sink accepting only datagrams of the given flow.
    pub fn new(flow: u64) -> Self {
        UdpSink { flow: Some(flow), stats: Rc::new(RefCell::new(UdpSinkStats::default())) }
    }

    /// A sink accepting every arriving datagram.
    pub fn any_flow() -> Self {
        UdpSink { flow: None, stats: Rc::new(RefCell::new(UdpSinkStats::default())) }
    }

    /// Shared handle to the sink's statistics.
    pub fn stats(&self) -> Rc<RefCell<UdpSinkStats>> {
        Rc::clone(&self.stats)
    }
}

impl Actor for UdpSink {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if let Some(pkt) = unwrap_packet(ev) {
            if self.flow.is_some_and(|f| f != pkt.flow) {
                return;
            }
            let mut st = self.stats.borrow_mut();
            st.packets += 1;
            st.bytes += u64::from(pkt.size);
            st.latency_ms.record(ctx.now().saturating_since(pkt.created).as_millis_f64());
            st.meter.record(ctx.now(), u64::from(pkt.size));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::engine::Simulator;
    use marnet_sim::link::{Bandwidth, LinkParams};

    #[test]
    fn cbr_source_hits_its_rate() {
        let mut sim = Simulator::new(2);
        let s = sim.reserve_actor();
        let r = sim.reserve_actor();
        let l = sim.add_link(
            s,
            r,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(5)),
        );
        sim.install_actor(s, UdpSource::with_rate_mbps(1, TxPath::Link(l), 1250, 2.0));
        let sink = UdpSink::new(1);
        let stats = sink.stats();
        sim.install_actor(r, sink);
        sim.run_until(SimTime::from_secs(10));
        let st = stats.borrow();
        let mbps = st.bytes as f64 * 8.0 / 10.0 / 1e6;
        assert!((mbps - 2.0).abs() < 0.1, "measured {mbps} Mb/s");
        // Latency = serialization (1 ms) + propagation (5 ms).
        let mut lat = st.latency_ms.clone();
        assert!((lat.median().unwrap() - 6.0).abs() < 0.5);
    }

    #[test]
    fn active_window_limits_emission() {
        let mut sim = Simulator::new(3);
        let s = sim.reserve_actor();
        let r = sim.reserve_actor();
        let l = sim.add_link(s, r, LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::ZERO));
        sim.install_actor(
            s,
            UdpSource::new(1, TxPath::Link(l), 100, SimDuration::from_millis(100))
                .active_between(SimTime::from_secs(1), SimTime::from_secs(2)),
        );
        let sink = UdpSink::new(1);
        let stats = sink.stats();
        sim.install_actor(r, sink);
        sim.run_until(SimTime::from_secs(5));
        let n = stats.borrow().packets;
        assert!((9..=11).contains(&n), "expected ~10 packets in 1s, got {n}");
    }

    #[test]
    fn sink_filters_by_flow() {
        let mut sim = Simulator::new(4);
        let s = sim.reserve_actor();
        let r = sim.reserve_actor();
        let l = sim.add_link(s, r, LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::ZERO));
        sim.install_actor(
            s,
            UdpSource::new(42, TxPath::Link(l), 100, SimDuration::from_millis(10)),
        );
        let sink = UdpSink::new(7); // wrong flow
        let stats = sink.stats();
        sim.install_actor(r, sink);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(stats.borrow().packets, 0);
    }

    #[test]
    #[should_panic]
    fn zero_interval_panics() {
        let mut sim = Simulator::new(4);
        let s = sim.reserve_actor();
        let r = sim.reserve_actor();
        let l = sim.add_link(s, r, LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::ZERO));
        let _ = UdpSource::new(1, TxPath::Link(l), 100, SimDuration::ZERO);
    }
}
