//! Pluggable TCP congestion control: Reno, Cubic and Vegas.
//!
//! Fig. 4 of the paper contrasts TCP's congestion *window* with the AR
//! protocol's graceful degradation; §VI-B cites the Vegas fairness problem
//! as the caveat of delay-based control. Implementing all three here lets
//! the E14 fairness sweep compare loss-based and delay-based behaviour on
//! identical topologies.

use marnet_sim::time::{SimDuration, SimTime};
use std::fmt;

/// A congestion-control algorithm driving a [`super::TcpSender`].
///
/// All quantities are in bytes. The sender calls the `on_*` hooks and reads
/// back [`CongestionControl::cwnd`].
pub trait CongestionControl: fmt::Debug {
    /// New data was cumulatively acknowledged.
    ///
    /// `bytes_acked` is the newly acked byte count, `flight` the bytes still
    /// outstanding after the ACK, `rtt` the latest RTT sample if the ACK
    /// carried a usable timestamp echo.
    fn on_ack(&mut self, bytes_acked: u64, flight: u64, rtt: Option<SimDuration>, now: SimTime);

    /// Loss detected by triple duplicate ACK (fast retransmit).
    fn on_loss(&mut self, now: SimTime);

    /// Retransmission timeout fired.
    fn on_timeout(&mut self, now: SimTime);

    /// Current congestion window in bytes.
    fn cwnd(&self) -> u64;

    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> u64;

    /// Short algorithm name for experiment tables.
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Reno
// ---------------------------------------------------------------------------

/// Classic Reno: slow start, AIMD congestion avoidance, halving on loss,
/// plus a Hystart-style delay-based slow-start exit (without it, slow
/// start overshoots bloated buffers by hundreds of segments and NewReno
/// then spends one RTT per hole refilling them).
#[derive(Debug, Clone)]
pub struct Reno {
    mss: u64,
    cwnd: f64,
    ssthresh: f64,
    min_rtt: Option<SimDuration>,
}

impl Reno {
    /// Reno with a 10-segment initial window.
    pub fn new(mss: u32) -> Self {
        let mss = u64::from(mss);
        Reno { mss, cwnd: (mss * 10) as f64, ssthresh: f64::INFINITY, min_rtt: None }
    }

    /// Reno with an explicit initial window in segments.
    pub fn with_initial_window(mss: u32, iw: u32) -> Self {
        let mss = u64::from(mss);
        Reno { mss, cwnd: (mss * u64::from(iw)) as f64, ssthresh: f64::INFINITY, min_rtt: None }
    }

    fn hystart_exit(min_rtt: &mut Option<SimDuration>, rtt: Option<SimDuration>) -> bool {
        let Some(rtt) = rtt else { return false };
        let min = match *min_rtt {
            Some(m) if m <= rtt => m,
            _ => {
                *min_rtt = Some(rtt);
                rtt
            }
        };
        // Exit slow start once queueing delay reaches ~25% of the base RTT
        // (plus a floor so short paths are not trigger-happy).
        rtt > min + (min / 4).max(SimDuration::from_millis(4))
    }
}

impl CongestionControl for Reno {
    fn on_ack(&mut self, bytes_acked: u64, _flight: u64, rtt: Option<SimDuration>, _now: SimTime) {
        let mss = self.mss as f64;
        if self.cwnd < self.ssthresh {
            if Self::hystart_exit(&mut self.min_rtt, rtt) {
                self.ssthresh = self.cwnd;
                return;
            }
            // Slow start: one MSS per MSS acked.
            self.cwnd += bytes_acked as f64;
        } else {
            // Congestion avoidance: ~one MSS per RTT.
            self.cwnd += mss * mss / self.cwnd * (bytes_acked as f64 / mss);
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max((2 * self.mss) as f64);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max((2 * self.mss) as f64);
        self.cwnd = self.mss as f64;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

// ---------------------------------------------------------------------------
// Cubic
// ---------------------------------------------------------------------------

/// CUBIC (RFC 8312, simplified): cubic window growth anchored at the last
/// loss window, giving faster recovery on long-fat paths than Reno.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u64,
    cwnd: f64,
    ssthresh: f64,
    w_max: f64,
    epoch_start: Option<SimTime>,
    k: f64,
    /// Unit-less CUBIC constant (segments/s³), conventionally 0.4.
    c: f64,
    beta: f64,
    min_rtt: Option<SimDuration>,
}

impl Cubic {
    /// CUBIC with conventional constants (C = 0.4, β = 0.7).
    pub fn new(mss: u32) -> Self {
        let mss = u64::from(mss);
        Cubic {
            mss,
            cwnd: (mss * 10) as f64,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            c: 0.4,
            beta: 0.7,
            min_rtt: None,
        }
    }

    fn segments(&self, bytes: f64) -> f64 {
        bytes / self.mss as f64
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, bytes_acked: u64, _flight: u64, rtt: Option<SimDuration>, now: SimTime) {
        if self.cwnd < self.ssthresh {
            if Reno::hystart_exit(&mut self.min_rtt, rtt) {
                self.ssthresh = self.cwnd;
            } else {
                self.cwnd += bytes_acked as f64;
            }
            return;
        }
        let epoch = match self.epoch_start {
            Some(e) => e,
            None => {
                // New congestion-avoidance epoch.
                let w_max_seg = self.segments(self.w_max.max(self.cwnd));
                let cwnd_seg = self.segments(self.cwnd);
                self.k = ((w_max_seg - cwnd_seg).max(0.0) / self.c).cbrt();
                self.epoch_start = Some(now);
                now
            }
        };
        let rtt_s = rtt.map_or(0.0, |r| r.as_secs_f64());
        let t = now.saturating_since(epoch).as_secs_f64() + rtt_s;
        let w_max_seg = self.segments(self.w_max.max(self.cwnd));
        let target_seg = self.c * (t - self.k).powi(3) + w_max_seg;
        let target = target_seg * self.mss as f64;
        if target > self.cwnd {
            // Approach the cubic target over roughly one RTT of ACKs.
            let step = (target - self.cwnd) * (bytes_acked as f64 / self.cwnd.max(1.0));
            self.cwnd += step.min(self.mss as f64 * (bytes_acked as f64 / self.mss as f64));
        } else {
            // Plateau region: minimal growth to stay responsive.
            self.cwnd += 0.01 * bytes_acked as f64;
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * self.beta).max((2 * self.mss) as f64);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * self.beta).max((2 * self.mss) as f64);
        self.cwnd = self.mss as f64;
        self.epoch_start = None;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

// ---------------------------------------------------------------------------
// Vegas
// ---------------------------------------------------------------------------

/// TCP Vegas: delay-based control that keeps `alpha..beta` *extra* segments
/// queued in the network, backing off as soon as RTT rises.
///
/// The paper (§VI-B, citing Kurata et al.) notes Vegas-style control is
/// exactly what a latency-sensitive MAR flow wants, *but* it loses to
/// loss-based flows that fill queues — the trade-off the E14 fairness
/// experiment quantifies.
#[derive(Debug, Clone)]
pub struct Vegas {
    mss: u64,
    cwnd: f64,
    ssthresh: f64,
    base_rtt: Option<SimDuration>,
    /// Lower target of queued segments.
    alpha: f64,
    /// Upper target of queued segments.
    beta: f64,
    /// Bytes acked since the last window adjustment.
    acked_since_adjust: u64,
}

impl Vegas {
    /// Vegas with the classic `alpha = 2`, `beta = 4` targets.
    pub fn new(mss: u32) -> Self {
        let mss = u64::from(mss);
        Vegas {
            mss,
            cwnd: (mss * 10) as f64,
            ssthresh: f64::INFINITY,
            base_rtt: None,
            alpha: 2.0,
            beta: 4.0,
            acked_since_adjust: 0,
        }
    }

    /// Overrides the alpha/beta segment targets, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `alpha > beta` or either is negative.
    #[must_use]
    pub fn with_targets(mut self, alpha: f64, beta: f64) -> Self {
        assert!(alpha >= 0.0 && alpha <= beta, "need 0 ≤ alpha ≤ beta");
        self.alpha = alpha;
        self.beta = beta;
        self
    }
}

impl CongestionControl for Vegas {
    fn on_ack(&mut self, bytes_acked: u64, _flight: u64, rtt: Option<SimDuration>, _now: SimTime) {
        let Some(rtt) = rtt else {
            return;
        };
        self.base_rtt = Some(match self.base_rtt {
            Some(b) if b <= rtt => b,
            _ => rtt,
        });
        let base = self.base_rtt.expect("set above").as_secs_f64();
        let cur = rtt.as_secs_f64();
        if base <= 0.0 || cur <= 0.0 {
            return;
        }
        // diff = (expected - actual) * base_rtt, in segments.
        let cwnd_seg = self.cwnd / self.mss as f64;
        let diff = cwnd_seg * (cur - base) / cur;

        if self.cwnd < self.ssthresh {
            // Slow start, with the queue check on *every* ACK: exponential
            // growth overshoots catastrophically if the exit test only runs
            // once per window.
            if diff > self.beta {
                self.ssthresh = self.cwnd;
            } else {
                self.cwnd += bytes_acked as f64;
            }
            return;
        }
        // Congestion avoidance: adjust once per window's worth of ACKs
        // (≈ once per RTT).
        self.acked_since_adjust += bytes_acked;
        if (self.acked_since_adjust as f64) < self.cwnd {
            return;
        }
        self.acked_since_adjust = 0;
        if diff < self.alpha {
            self.cwnd += self.mss as f64;
        } else if diff > self.beta {
            self.cwnd = (self.cwnd - self.mss as f64).max((2 * self.mss) as f64);
            // Keep ssthresh at or below the shrinking window, otherwise the
            // next ACK re-enters slow start and undoes the decrease.
            self.ssthresh = self.ssthresh.min(self.cwnd);
        }
    }

    fn on_loss(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd * 0.75).max((2 * self.mss) as f64);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max((2 * self.mss) as f64);
        self.cwnd = self.mss as f64;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    fn ssthresh(&self) -> u64 {
        if self.ssthresh.is_finite() {
            self.ssthresh as u64
        } else {
            u64::MAX
        }
    }

    fn name(&self) -> &'static str {
        "vegas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1000;

    fn ack(cc: &mut dyn CongestionControl, n: u64, rtt_ms: u64) {
        cc.on_ack(n, 0, Some(SimDuration::from_millis(rtt_ms)), SimTime::ZERO);
    }

    #[test]
    fn reno_slow_start_doubles_per_rtt() {
        let mut r = Reno::with_initial_window(MSS, 2);
        assert_eq!(r.cwnd(), 2000);
        // Ack a full window: cwnd doubles.
        ack(&mut r, 2000, 50);
        assert_eq!(r.cwnd(), 4000);
        ack(&mut r, 4000, 50);
        assert_eq!(r.cwnd(), 8000);
    }

    #[test]
    fn reno_congestion_avoidance_is_linear() {
        let mut r = Reno::with_initial_window(MSS, 10);
        r.on_loss(SimTime::ZERO); // ssthresh = cwnd/2 = 5000, cwnd = 5000
        assert_eq!(r.cwnd(), 5000);
        // One full window of ACKs → +1 MSS.
        for _ in 0..5 {
            ack(&mut r, 1000, 50);
        }
        assert!((r.cwnd() as i64 - 6000).abs() < 100, "cwnd {}", r.cwnd());
    }

    #[test]
    fn reno_loss_halves_timeout_resets() {
        let mut r = Reno::with_initial_window(MSS, 20);
        let before = r.cwnd();
        r.on_loss(SimTime::ZERO);
        assert_eq!(r.cwnd(), before / 2);
        r.on_timeout(SimTime::ZERO);
        assert_eq!(r.cwnd(), u64::from(MSS));
        assert!(r.ssthresh() >= 2 * u64::from(MSS));
    }

    #[test]
    fn reno_floors_at_two_mss() {
        let mut r = Reno::with_initial_window(MSS, 2);
        for _ in 0..10 {
            r.on_loss(SimTime::ZERO);
        }
        assert_eq!(r.cwnd(), 2 * u64::from(MSS));
    }

    #[test]
    fn cubic_grows_past_wmax_over_time() {
        let mut c = Cubic::new(MSS);
        // Get into congestion avoidance with a loss at 100 segments.
        c.cwnd = 100_000.0;
        c.on_loss(SimTime::ZERO);
        let after_loss = c.cwnd();
        assert_eq!(after_loss, 70_000);
        // Feed ACKs over simulated seconds; window should reach and exceed
        // the previous maximum (concave then convex growth).
        let mut now = SimTime::ZERO;
        for _ in 0..4000 {
            now += SimDuration::from_millis(10);
            c.on_ack(1000, 0, Some(SimDuration::from_millis(20)), now);
        }
        assert!(c.cwnd() > 100_000, "cubic cwnd {} after recovery period", c.cwnd());
    }

    #[test]
    fn cubic_timeout_collapses_window() {
        let mut c = Cubic::new(MSS);
        c.cwnd = 50_000.0;
        c.on_timeout(SimTime::ZERO);
        assert_eq!(c.cwnd(), u64::from(MSS));
    }

    #[test]
    fn vegas_tracks_base_rtt_and_backs_off() {
        let mut v = Vegas::new(MSS).with_targets(2.0, 4.0);
        v.ssthresh = 10_000.0; // force congestion avoidance
        v.cwnd = 10_000.0;
        // RTT = base: diff = 0 < alpha → additive increase.
        for _ in 0..20 {
            ack(&mut v, 1000, 50);
        }
        let grown = v.cwnd();
        assert!(grown > 10_000, "vegas should grow on an idle path: {grown}");
        // RTT doubles: queued segments ≈ cwnd/2seg >> beta → decrease.
        let before = v.cwnd();
        for _ in 0..40 {
            ack(&mut v, 1000, 100);
        }
        assert!(v.cwnd() < before, "vegas must back off on rising RTT");
    }

    #[test]
    fn vegas_ignores_acks_without_rtt() {
        let mut v = Vegas::new(MSS);
        let before = v.cwnd();
        v.on_ack(1000, 0, None, SimTime::ZERO);
        assert_eq!(v.cwnd(), before);
    }

    #[test]
    fn names() {
        assert_eq!(Reno::new(MSS).name(), "reno");
        assert_eq!(Cubic::new(MSS).name(), "cubic");
        assert_eq!(Vegas::new(MSS).name(), "vegas");
    }
}
