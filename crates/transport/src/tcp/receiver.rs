//! The TCP receiver actor: cumulative ACKs, out-of-order reassembly and
//! optional delayed ACKs.

use super::{SharedReceiverStats, TcpSegment, HEADER_BYTES};
use crate::nic::{unwrap_packet, TxPath};
use marnet_sim::engine::{Actor, Event, SimCtx, TimerHandle};
use marnet_sim::packet::Packet;
use marnet_sim::stats::RateMeter;
use marnet_sim::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

const TAG_DELACK: u64 = 1;

/// Receiver-side statistics, shared with benchmark code.
#[derive(Debug)]
pub struct TcpReceiverStats {
    /// In-order bytes delivered to the application.
    pub goodput_bytes: u64,
    /// Segments that arrived out of order.
    pub out_of_order_segments: u64,
    /// ACKs sent.
    pub acks_sent: u64,
    /// Goodput meter (100 ms buckets) for throughput-vs-time figures.
    pub goodput_meter: RateMeter,
}

impl Default for TcpReceiverStats {
    fn default() -> Self {
        TcpReceiverStats {
            goodput_bytes: 0,
            out_of_order_segments: 0,
            acks_sent: 0,
            goodput_meter: RateMeter::new(SimDuration::from_millis(100)),
        }
    }
}

/// A TCP receiving endpoint.
pub struct TcpReceiver {
    conn: u64,
    path: TxPath,
    rcv_nxt: u64,
    /// Out-of-order segments: start seq → length.
    ooo: BTreeMap<u64, u32>,
    delayed_ack: bool,
    pending_segments: u32,
    delack_timer: Option<TimerHandle>,
    last_ts: Option<SimTime>,
    stats: SharedReceiverStats,
}

impl std::fmt::Debug for TcpReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpReceiver")
            .field("conn", &self.conn)
            .field("rcv_nxt", &self.rcv_nxt)
            .field("ooo", &self.ooo.len())
            .finish()
    }
}

impl TcpReceiver {
    /// Creates a receiver for connection `conn`, sending ACKs via `path`.
    /// Delayed ACKs (one per two segments, 40 ms cap) are on by default.
    pub fn new(conn: u64, path: TxPath) -> Self {
        TcpReceiver {
            conn,
            path,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            delayed_ack: true,
            pending_segments: 0,
            delack_timer: None,
            last_ts: None,
            stats: Rc::new(RefCell::new(TcpReceiverStats::default())),
        }
    }

    /// Disables delayed ACKs (every segment is acknowledged immediately).
    #[must_use]
    pub fn without_delayed_ack(mut self) -> Self {
        self.delayed_ack = false;
        self
    }

    /// Shared handle to receiver statistics.
    pub fn stats(&self) -> SharedReceiverStats {
        Rc::clone(&self.stats)
    }

    fn send_ack(&mut self, ctx: &mut SimCtx) {
        if let Some(h) = self.delack_timer.take() {
            ctx.cancel_timer(h);
        }
        self.pending_segments = 0;
        let seg = TcpSegment {
            conn: self.conn,
            seq: 0,
            len: 0,
            ack: self.rcv_nxt,
            is_ack: true,
            ts: ctx.now(),
            ts_echo: self.last_ts,
        };
        let id = ctx.next_packet_id();
        let pkt = Packet::new(id, self.conn, HEADER_BYTES, ctx.now()).with_payload(seg);
        self.path.send(ctx, pkt);
        self.stats.borrow_mut().acks_sent += 1;
    }

    fn on_data(&mut self, ctx: &mut SimCtx, seg: &TcpSegment) {
        self.last_ts = Some(seg.ts);
        let end = seg.seq + u64::from(seg.len);
        let mut advanced = false;
        if seg.seq <= self.rcv_nxt && end > self.rcv_nxt {
            let newly = end - self.rcv_nxt;
            self.rcv_nxt = end;
            advanced = true;
            let mut st = self.stats.borrow_mut();
            st.goodput_bytes += newly;
            st.goodput_meter.record(ctx.now(), newly);
            drop(st);
            // Drain any contiguous out-of-order segments.
            while let Some((&s, &l)) = self.ooo.first_key_value() {
                let e = s + u64::from(l);
                if s <= self.rcv_nxt {
                    self.ooo.remove(&s);
                    if e > self.rcv_nxt {
                        let newly = e - self.rcv_nxt;
                        self.rcv_nxt = e;
                        let mut st = self.stats.borrow_mut();
                        st.goodput_bytes += newly;
                        st.goodput_meter.record(ctx.now(), newly);
                    }
                } else {
                    break;
                }
            }
        } else if seg.seq > self.rcv_nxt {
            self.ooo.insert(seg.seq, seg.len);
            self.stats.borrow_mut().out_of_order_segments += 1;
        }
        // Ack policy: out-of-order or retransmission → immediate (dup)ACK,
        // in-order → delayed (every 2nd segment or 40 ms).
        if !advanced || !self.delayed_ack || !self.ooo.is_empty() {
            self.send_ack(ctx);
        } else {
            self.pending_segments += 1;
            if self.pending_segments >= 2 {
                self.send_ack(ctx);
            } else if self.delack_timer.is_none() {
                self.delack_timer =
                    Some(ctx.schedule_timer(SimDuration::from_millis(40), TAG_DELACK));
            }
        }
    }
}

impl Actor for TcpReceiver {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Timer { tag: TAG_DELACK } => {
                self.delack_timer = None;
                if self.pending_segments > 0 {
                    self.send_ack(ctx);
                }
            }
            other => {
                if let Some(pkt) = unwrap_packet(other) {
                    if let Some(seg) = pkt.payload.downcast_ref::<TcpSegment>() {
                        if !seg.is_ack && seg.conn == self.conn {
                            let seg = seg.clone();
                            self.on_data(ctx, &seg);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::TxPath;
    use crate::tcp::{Reno, TcpConfig, TcpSender};
    use marnet_sim::engine::Simulator;
    use marnet_sim::link::{Bandwidth, LinkParams, LossModel};
    use marnet_sim::time::SimTime;

    fn duplex(
        sim: &mut Simulator,
        loss_fwd: f64,
    ) -> (
        marnet_sim::engine::ActorId,
        marnet_sim::engine::ActorId,
        marnet_sim::link::LinkId,
        marnet_sim::link::LinkId,
    ) {
        let s = sim.reserve_actor();
        let r = sim.reserve_actor();
        // Large queues so the only loss is the injected random loss.
        let big = marnet_sim::queue::QueueConfig::DropTail { cap_packets: 10_000 };
        let fwd = sim.add_link(
            s,
            r,
            LinkParams::new(Bandwidth::from_mbps(8.0), SimDuration::from_millis(10))
                .with_loss(LossModel::Bernoulli { p: loss_fwd })
                .with_queue(big.clone()),
        );
        let rev = sim.add_link(
            r,
            s,
            LinkParams::new(Bandwidth::from_mbps(8.0), SimDuration::from_millis(10))
                .with_queue(big),
        );
        (s, r, fwd, rev)
    }

    #[test]
    fn in_order_stream_counts_goodput_once() {
        let mut sim = Simulator::new(7);
        let (s, r, fwd, rev) = duplex(&mut sim, 0.0);
        let cfg =
            TcpConfig { data: super::super::DataSource::Finite(500_000), ..Default::default() };
        let sender = TcpSender::new(9, TxPath::Link(fwd), cfg, Box::new(Reno::new(1460)));
        sim.install_actor(s, sender);
        let recv = TcpReceiver::new(9, TxPath::Link(rev));
        let stats = recv.stats();
        sim.install_actor(r, recv);
        sim.run_until(SimTime::from_secs(30));
        let st = stats.borrow();
        assert_eq!(st.goodput_bytes, 500_000);
        assert_eq!(st.out_of_order_segments, 0);
    }

    #[test]
    fn loss_produces_out_of_order_arrivals_then_recovery() {
        let mut sim = Simulator::new(8);
        let (s, r, fwd, rev) = duplex(&mut sim, 0.03);
        let cfg =
            TcpConfig { data: super::super::DataSource::Finite(500_000), ..Default::default() };
        let sender = TcpSender::new(9, TxPath::Link(fwd), cfg, Box::new(Reno::new(1460)));
        let sstats = sender.stats();
        sim.install_actor(s, sender);
        let recv = TcpReceiver::new(9, TxPath::Link(rev));
        let stats = recv.stats();
        sim.install_actor(r, recv);
        sim.run_until(SimTime::from_secs(120));
        let st = stats.borrow();
        assert_eq!(st.goodput_bytes, 500_000, "reassembly must deliver every byte exactly once");
        assert!(st.out_of_order_segments > 0);
        assert!(sstats.borrow().completed_at.is_some());
    }

    #[test]
    fn delayed_ack_halves_ack_count() {
        let mut sim = Simulator::new(9);
        let (s, r, fwd, rev) = duplex(&mut sim, 0.0);
        let cfg =
            TcpConfig { data: super::super::DataSource::Finite(1_000_000), ..Default::default() };
        sim.install_actor(s, TcpSender::new(9, TxPath::Link(fwd), cfg, Box::new(Reno::new(1460))));
        let recv = TcpReceiver::new(9, TxPath::Link(rev));
        let stats = recv.stats();
        sim.install_actor(r, recv);
        sim.run_until(SimTime::from_secs(30));
        let st = stats.borrow();
        let segments = (1_000_000u64).div_ceil(1460);
        assert!(
            st.acks_sent < segments * 3 / 4,
            "delayed ACKs should cut ACK volume: {} acks for {} segments",
            st.acks_sent,
            segments
        );
    }
}
