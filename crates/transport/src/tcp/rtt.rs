//! RFC 6298 round-trip-time estimation and retransmission timeout.

use marnet_sim::time::SimDuration;

/// SRTT/RTTVAR estimator with the RFC 6298 RTO computation.
///
/// ```
/// use marnet_transport::tcp::RttEstimator;
/// use marnet_sim::time::SimDuration;
/// let mut est = RttEstimator::new();
/// est.sample(SimDuration::from_millis(100));
/// assert_eq!(est.srtt().unwrap(), SimDuration::from_millis(100));
/// assert!(est.rto() >= SimDuration::from_millis(200));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: Option<SimDuration>,
    latest: Option<SimDuration>,
}

impl RttEstimator {
    /// Lower RTO clamp. RFC 6298 says 1 s; like most real stacks we use
    /// 200 ms so short-RTT simulations recover promptly.
    pub const MIN_RTO: SimDuration = SimDuration::from_millis(200);
    /// Upper RTO clamp (60 s).
    pub const MAX_RTO: SimDuration = SimDuration::from_secs(60);
    /// RTO used before any sample exists (RFC 6298: 1 s).
    pub const INITIAL_RTO: SimDuration = SimDuration::from_secs(1);

    /// A fresh estimator with no samples.
    pub fn new() -> Self {
        RttEstimator { srtt: None, rttvar: SimDuration::ZERO, min_rtt: None, latest: None }
    }

    /// Feeds one RTT measurement.
    pub fn sample(&mut self, rtt: SimDuration) {
        self.latest = Some(rtt);
        self.min_rtt = Some(match self.min_rtt {
            Some(m) if m <= rtt => m,
            _ => rtt,
        });
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R'| ; SRTT = 7/8 SRTT + 1/8 R'
                let err = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar.mul_f64(0.75) + err.mul_f64(0.25);
                self.srtt = Some(srtt.mul_f64(0.875) + rtt.mul_f64(0.125));
            }
        }
    }

    /// Smoothed RTT, if at least one sample was taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// Smallest RTT observed (a baseline-propagation estimate).
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Most recent raw sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// The retransmission timeout: `SRTT + 4·RTTVAR`, clamped.
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => Self::INITIAL_RTO,
            Some(srtt) => {
                let rto = srtt + self.rttvar * 4;
                rto.max(Self::MIN_RTO).min(Self::MAX_RTO)
            }
        }
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        assert_eq!(RttEstimator::new().rto(), SimDuration::from_secs(1));
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new();
        e.sample(SimDuration::from_millis(80));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(80)));
        assert_eq!(e.rttvar(), SimDuration::from_millis(40));
        // RTO = 80 + 160 = 240 ms.
        assert_eq!(e.rto(), SimDuration::from_millis(240));
        assert_eq!(e.min_rtt(), Some(SimDuration::from_millis(80)));
    }

    #[test]
    fn smoothing_converges_on_stable_rtt() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.sample(SimDuration::from_millis(50));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 50.0).abs() < 0.5);
        // Variance decays toward zero; RTO hits the lower clamp.
        assert_eq!(e.rto(), RttEstimator::MIN_RTO);
    }

    #[test]
    fn variance_grows_with_jittery_samples() {
        let mut e = RttEstimator::new();
        for i in 0..50 {
            let ms = if i % 2 == 0 { 40 } else { 160 };
            e.sample(SimDuration::from_millis(ms));
        }
        assert!(e.rto() > SimDuration::from_millis(250), "rto = {}", e.rto());
    }

    #[test]
    fn min_rtt_tracks_the_floor() {
        let mut e = RttEstimator::new();
        e.sample(SimDuration::from_millis(100));
        e.sample(SimDuration::from_millis(30));
        e.sample(SimDuration::from_millis(300));
        assert_eq!(e.min_rtt(), Some(SimDuration::from_millis(30)));
        assert_eq!(e.latest(), Some(SimDuration::from_millis(300)));
    }

    #[test]
    fn rto_clamps_at_max() {
        let mut e = RttEstimator::new();
        e.sample(SimDuration::from_secs(80));
        assert_eq!(e.rto(), RttEstimator::MAX_RTO);
    }
}
