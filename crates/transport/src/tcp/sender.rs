//! The TCP sender actor.

use super::cc::CongestionControl;
use super::rtt::RttEstimator;
use super::{DataSource, SharedFlowStats, TcpConfig, TcpSegment, HEADER_BYTES};
use crate::nic::{unwrap_packet, TxPath};
use marnet_sim::engine::{Actor, Event, SimCtx, TimerHandle};
use marnet_sim::packet::Packet;
use marnet_sim::stats::TimeSeries;
use marnet_sim::time::SimTime;
use marnet_telemetry::{Gauge, MetricsRegistry, TimeHistogram};
use std::cell::RefCell;
use std::rc::Rc;

/// Sim-time bucket width for exported sender metric series (100 ms).
const METRIC_BUCKET_NANOS: u64 = 100_000_000;

/// Optional registry-backed metric handles, updated alongside the in-crate
/// [`TimeSeries`] samples.
struct SenderMetrics {
    cwnd_bytes: Gauge,
    srtt_ms: TimeHistogram,
}

const TAG_START: u64 = 1;
const TAG_RTO: u64 = 2;

/// Observable sender-side statistics, shared with benchmark code.
#[derive(Debug, Default)]
pub struct TcpFlowStats {
    /// Bytes cumulatively acknowledged.
    pub acked_bytes: u64,
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Fast retransmissions triggered by triple duplicate ACKs.
    pub retransmits: u64,
    /// Retransmission timeouts fired.
    pub timeouts: u64,
    /// When a [`DataSource::Finite`] flow finished, if it did.
    pub completed_at: Option<SimTime>,
    /// Congestion-window samples over time (bytes).
    pub cwnd_series: TimeSeries,
    /// Smoothed-RTT samples over time (milliseconds).
    pub srtt_series: TimeSeries,
}

/// A TCP sending endpoint.
///
/// Pair it with a [`super::TcpReceiver`] for the same connection id; see the
/// module tests for a complete topology.
pub struct TcpSender {
    conn: u64,
    path: TxPath,
    cfg: TcpConfig,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    snd_una: u64,
    next_seq: u64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    rto_timer: Option<TimerHandle>,
    rto_backoff: u32,
    stats: SharedFlowStats,
    metrics: Option<SenderMetrics>,
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("conn", &self.conn)
            .field("snd_una", &self.snd_una)
            .field("next_seq", &self.next_seq)
            .field("cwnd", &self.cc.cwnd())
            .finish()
    }
}

impl TcpSender {
    /// Creates a sender for connection `conn`, transmitting via `path`.
    pub fn new(conn: u64, path: TxPath, cfg: TcpConfig, cc: Box<dyn CongestionControl>) -> Self {
        TcpSender {
            conn,
            path,
            cfg,
            cc,
            rtt: RttEstimator::new(),
            snd_una: 0,
            next_seq: 0,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            rto_timer: None,
            rto_backoff: 1,
            stats: Rc::new(RefCell::new(TcpFlowStats::default())),
            metrics: None,
        }
    }

    /// Also publishes this flow's congestion window (gauge
    /// `transport.tcp.{name}.cwnd_bytes`) and smoothed RTT (100 ms-bucketed
    /// series `transport.tcp.{name}.srtt_ms`) into `registry`, builder style.
    #[must_use]
    pub fn with_metrics(mut self, registry: &MetricsRegistry, name: &str) -> Self {
        self.metrics = Some(SenderMetrics {
            cwnd_bytes: registry.gauge(&format!("transport.tcp.{name}.cwnd_bytes")),
            srtt_ms: registry
                .time_histogram(&format!("transport.tcp.{name}.srtt_ms"), METRIC_BUCKET_NANOS),
        });
        self
    }

    /// Shared handle to this flow's statistics; keep a clone to inspect the
    /// flow after handing the sender to the simulator.
    pub fn stats(&self) -> SharedFlowStats {
        Rc::clone(&self.stats)
    }

    fn total_bytes(&self) -> u64 {
        match self.cfg.data {
            DataSource::Unlimited => u64::MAX,
            DataSource::Finite(n) => n,
        }
    }

    fn record_cwnd(&self, now: SimTime) {
        let mut st = self.stats.borrow_mut();
        st.cwnd_series.push(now, self.cc.cwnd() as f64);
        if let Some(srtt) = self.rtt.srtt() {
            st.srtt_series.push(now, srtt.as_millis_f64());
        }
        if let Some(m) = &self.metrics {
            m.cwnd_bytes.set(self.cc.cwnd() as f64);
            if let Some(srtt) = self.rtt.srtt() {
                m.srtt_ms.observe(now.as_nanos(), srtt.as_millis_f64());
            }
        }
    }

    fn send_segment(&mut self, ctx: &mut SimCtx, seq: u64) {
        let remaining = self.total_bytes().saturating_sub(seq);
        let len = u64::from(self.cfg.mss).min(remaining) as u32;
        if len == 0 {
            return;
        }
        let seg = TcpSegment {
            conn: self.conn,
            seq,
            len,
            ack: 0,
            is_ack: false,
            ts: ctx.now(),
            ts_echo: None,
        };
        let id = ctx.next_packet_id();
        let pkt = Packet::new(id, self.conn, len + HEADER_BYTES, ctx.now())
            .with_prio(self.cfg.prio)
            .with_payload(seg);
        self.path.send(ctx, pkt);
        self.stats.borrow_mut().segments_sent += 1;
    }

    fn window_limit(&self) -> u64 {
        self.snd_una + self.cc.cwnd().min(self.cfg.rwnd)
    }

    fn try_send(&mut self, ctx: &mut SimCtx) {
        let total = self.total_bytes();
        while self.next_seq < self.window_limit() && self.next_seq < total {
            let seq = self.next_seq;
            let len = u64::from(self.cfg.mss).min(total - seq);
            self.send_segment(ctx, seq);
            self.next_seq = seq + len;
        }
        self.arm_rto(ctx);
    }

    fn arm_rto(&mut self, ctx: &mut SimCtx) {
        if let Some(h) = self.rto_timer.take() {
            ctx.cancel_timer(h);
        }
        if self.snd_una < self.next_seq {
            let rto = self.rtt.rto() * u64::from(self.rto_backoff);
            self.rto_timer = Some(ctx.schedule_timer(rto.min(RttEstimator::MAX_RTO), TAG_RTO));
        }
    }

    fn on_ack_segment(&mut self, ctx: &mut SimCtx, seg: &TcpSegment) {
        if seg.ack > self.snd_una {
            let newly = seg.ack - self.snd_una;
            self.snd_una = seg.ack;
            self.dupacks = 0;
            self.rto_backoff = 1;
            self.stats.borrow_mut().acked_bytes = self.snd_una;

            let rtt_sample = seg.ts_echo.map(|ts| ctx.now().saturating_since(ts));
            if let Some(s) = rtt_sample {
                self.rtt.sample(s);
            }

            if self.in_recovery {
                if seg.ack >= self.recover {
                    self.in_recovery = false;
                } else {
                    // NewReno partial ACK: the next hole is lost too.
                    self.send_segment(ctx, self.snd_una);
                    self.stats.borrow_mut().retransmits += 1;
                }
            } else {
                let flight = self.next_seq - self.snd_una;
                self.cc.on_ack(newly, flight, rtt_sample, ctx.now());
            }
            self.record_cwnd(ctx.now());

            if self.snd_una >= self.total_bytes() {
                let mut st = self.stats.borrow_mut();
                if st.completed_at.is_none() {
                    st.completed_at = Some(ctx.now());
                }
                if let Some(h) = self.rto_timer.take() {
                    ctx.cancel_timer(h);
                }
                return;
            }
            self.try_send(ctx);
        } else if seg.ack == self.snd_una && self.next_seq > self.snd_una {
            self.dupacks += 1;
            if self.dupacks == 3 && !self.in_recovery {
                self.in_recovery = true;
                self.recover = self.next_seq;
                self.cc.on_loss(ctx.now());
                self.send_segment(ctx, self.snd_una);
                self.stats.borrow_mut().retransmits += 1;
                self.record_cwnd(ctx.now());
                self.arm_rto(ctx);
            }
        }
    }

    fn on_rto(&mut self, ctx: &mut SimCtx) {
        self.rto_timer = None;
        if self.snd_una >= self.next_seq {
            return; // Everything acked; stale timer.
        }
        self.cc.on_timeout(ctx.now());
        self.in_recovery = false;
        self.dupacks = 0;
        self.rto_backoff = (self.rto_backoff * 2).min(64);
        self.send_segment(ctx, self.snd_una);
        {
            let mut st = self.stats.borrow_mut();
            st.timeouts += 1;
            st.retransmits += 1;
        }
        self.record_cwnd(ctx.now());
        self.arm_rto(ctx);
    }
}

impl Actor for TcpSender {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Start => {
                let delay = self.cfg.start_at.saturating_since(SimTime::ZERO);
                let wait = delay.saturating_sub(ctx.now().saturating_since(SimTime::ZERO));
                ctx.schedule_timer(wait, TAG_START);
            }
            Event::Timer { tag: TAG_START } => {
                self.record_cwnd(ctx.now());
                self.try_send(ctx);
            }
            Event::Timer { tag: TAG_RTO } => self.on_rto(ctx),
            other => {
                if let Some(pkt) = unwrap_packet(other) {
                    if let Some(seg) = pkt.payload.downcast_ref::<TcpSegment>() {
                        if seg.is_ack && seg.conn == self.conn {
                            let seg = seg.clone();
                            self.on_ack_segment(ctx, &seg);
                        }
                    }
                }
            }
        }
    }
}
