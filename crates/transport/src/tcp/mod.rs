//! Packet-level TCP: segments, configuration and the sender/receiver actors.
//!
//! The model is byte-stream TCP with MSS-sized segments, cumulative ACKs,
//! NewReno-style fast retransmit/recovery, RFC 6298 retransmission timeouts
//! and optional delayed ACKs. It is detailed enough to reproduce the
//! dynamics the paper leans on: slow start / AIMD sawtooth (Fig. 4's
//! baseline), ACK starvation on congested asymmetric uplinks (Fig. 3), and
//! loss-vs-delay-based fairness (§VI-B).

mod cc;
mod receiver;
mod rtt;
mod sender;

pub use cc::{CongestionControl, Cubic, Reno, Vegas};
pub use receiver::{TcpReceiver, TcpReceiverStats};
pub use rtt::RttEstimator;
pub use sender::{TcpFlowStats, TcpSender};

use marnet_sim::time::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// TCP/IP header overhead added to every segment, in bytes.
pub const HEADER_BYTES: u32 = 40;

/// A TCP segment carried as a packet payload.
#[derive(Debug, Clone)]
pub struct TcpSegment {
    /// Connection (flow) identifier.
    pub conn: u64,
    /// Sequence number of the first payload byte.
    pub seq: u64,
    /// Payload length in bytes (0 for pure ACKs).
    pub len: u32,
    /// Cumulative acknowledgement: next byte expected by the sender of this
    /// segment.
    pub ack: u64,
    /// `true` if this is a pure ACK (no payload).
    pub is_ack: bool,
    /// Transmission timestamp (TSval).
    pub ts: SimTime,
    /// Echoed timestamp (TSecr) for RTT measurement, if any.
    pub ts_echo: Option<SimTime>,
}

/// How much data a sender has to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// A greedy, never-ending flow (bulk transfer).
    Unlimited,
    /// A flow of exactly this many bytes; completion is recorded in
    /// [`TcpFlowStats::completed_at`].
    Finite(u64),
}

/// Sender configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per packet).
    pub mss: u32,
    /// Initial congestion window in segments (RFC 6928 uses 10; older
    /// stacks used 2-4).
    pub initial_window: u32,
    /// Receive-window clamp in bytes.
    pub rwnd: u64,
    /// Amount of data to send.
    pub data: DataSource,
    /// When the flow starts.
    pub start_at: SimTime,
    /// Priority band stamped on data segments (0 = highest; priority
    /// queues on the path use it for classification).
    pub prio: u8,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            initial_window: 10,
            rwnd: u64::MAX,
            data: DataSource::Unlimited,
            start_at: SimTime::ZERO,
            prio: 0,
        }
    }
}

/// Shared, inspectable handle to a flow's statistics.
///
/// The simulation is single-threaded, so an `Rc<RefCell<..>>` is the
/// idiomatic way for benchmark code to watch an actor it no longer owns.
pub type SharedFlowStats = Rc<RefCell<TcpFlowStats>>;

/// Shared handle to receiver-side statistics.
pub type SharedReceiverStats = Rc<RefCell<TcpReceiverStats>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::TxPath;
    use marnet_sim::engine::Simulator;
    use marnet_sim::link::{Bandwidth, LinkParams, LossModel};
    use marnet_sim::queue::QueueConfig;
    use marnet_sim::time::SimDuration;

    /// End-to-end: a finite transfer over a clean link completes, and the
    /// goodput approaches the bottleneck rate.
    #[test]
    fn bulk_transfer_fills_a_clean_link() {
        let mut sim = Simulator::new(42);
        let s = sim.reserve_actor();
        let r = sim.reserve_actor();
        let big = QueueConfig::DropTail { cap_packets: 10_000 };
        let fwd = sim.add_link(
            s,
            r,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(10))
                .with_queue(big.clone()),
        );
        let rev = sim.add_link(
            r,
            s,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(10))
                .with_queue(big),
        );
        let sender =
            TcpSender::new(1, TxPath::Link(fwd), TcpConfig::default(), Box::new(Reno::new(1460)));
        let stats = sender.stats();
        sim.install_actor(s, sender);
        let receiver = TcpReceiver::new(1, TxPath::Link(rev));
        let rstats = receiver.stats();
        sim.install_actor(r, receiver);
        sim.run_until(SimTime::from_secs(10));
        let delivered = rstats.borrow().goodput_bytes;
        let mbps = delivered as f64 * 8.0 / 10.0 / 1e6;
        assert!(mbps > 8.0, "goodput {mbps} Mb/s on a 10 Mb/s link");
        assert_eq!(stats.borrow().timeouts, 0);
    }

    /// A lossy link still completes a finite transfer (retransmissions work).
    #[test]
    fn finite_transfer_completes_despite_loss() {
        let mut sim = Simulator::new(43);
        let s = sim.reserve_actor();
        let r = sim.reserve_actor();
        let fwd = sim.add_link(
            s,
            r,
            LinkParams::new(Bandwidth::from_mbps(5.0), SimDuration::from_millis(5))
                .with_loss(LossModel::Bernoulli { p: 0.02 }),
        );
        let rev = sim.add_link(
            r,
            s,
            LinkParams::new(Bandwidth::from_mbps(5.0), SimDuration::from_millis(5)),
        );
        let total = 2_000_000u64;
        let cfg = TcpConfig { data: DataSource::Finite(total), ..TcpConfig::default() };
        let sender = TcpSender::new(1, TxPath::Link(fwd), cfg, Box::new(Reno::new(1460)));
        let stats = sender.stats();
        sim.install_actor(s, sender);
        let receiver = TcpReceiver::new(1, TxPath::Link(rev));
        let rstats = receiver.stats();
        sim.install_actor(r, receiver);
        sim.run_until(SimTime::from_secs(60));
        let st = stats.borrow();
        assert!(st.completed_at.is_some(), "transfer did not complete");
        assert!(st.retransmits > 0, "2% loss must cause retransmissions");
        assert_eq!(rstats.borrow().goodput_bytes, total);
    }

    /// Two Reno flows over the same bottleneck share it roughly fairly.
    #[test]
    fn reno_flows_share_a_bottleneck() {
        use crate::nic::Nic;
        let mut sim = Simulator::new(44);
        let nic_a = sim.reserve_actor();
        let nic_b = sim.reserve_actor();
        let bottleneck = LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(10))
            .with_queue(QueueConfig::DropTail { cap_packets: 60 });
        let fwd = sim.add_link(nic_a, nic_b, bottleneck.clone());
        let rev = sim.add_link(nic_b, nic_a, bottleneck);

        let mut receivers = Vec::new();
        let mut senders = Vec::new();
        let mut nic_a_routes = Nic::new(fwd);
        let mut nic_b_routes = Nic::new(rev);
        let mut rstats = Vec::new();
        for conn in 1..=2u64 {
            let s = sim.reserve_actor();
            let r = sim.reserve_actor();
            let sender = TcpSender::new(
                conn,
                TxPath::Nic(nic_a),
                TcpConfig::default(),
                Box::new(Reno::new(1460)),
            );
            sim.install_actor(s, sender);
            let receiver = TcpReceiver::new(conn, TxPath::Nic(nic_b));
            rstats.push(receiver.stats());
            sim.install_actor(r, receiver);
            nic_a_routes.add_route(conn, s);
            nic_b_routes.add_route(conn, r);
            senders.push(s);
            receivers.push(r);
        }
        sim.install_actor(nic_a, nic_a_routes);
        sim.install_actor(nic_b, nic_b_routes);
        sim.run_until(SimTime::from_secs(30));
        let g1 = rstats[0].borrow().goodput_bytes as f64;
        let g2 = rstats[1].borrow().goodput_bytes as f64;
        let total_mbps = (g1 + g2) * 8.0 / 30.0 / 1e6;
        assert!(total_mbps > 8.0, "aggregate {total_mbps}");
        let fairness = marnet_sim::stats::jain_index(&[g1, g2]);
        assert!(fairness > 0.8, "Jain index {fairness} (g1={g1}, g2={g2})");
    }
}
