//! Flow-demultiplexing NIC so several endpoints share one access link.
//!
//! The figure experiments need many transport endpoints behind a single
//! (often asymmetric) access link: in Fig. 3 a download's ACKs compete with
//! several uploads' data inside the same uplink queue. A [`Nic`] actor
//! forwards packets from co-located endpoints onto its WAN link and routes
//! arriving packets back to endpoints by [`Packet::flow`].

use marnet_sim::engine::{Actor, ActorId, Event, SimCtx};
use marnet_sim::hash::FxHashMap;
use marnet_sim::link::LinkId;
use marnet_sim::packet::{Packet, Payload, PayloadPool};
use marnet_sim::region::RateUpdate;
use marnet_telemetry::{ClassUsage, MetricsRegistry};
use std::cell::RefCell;
use std::rc::Rc;

/// Number of priority bands a [`Nic`] accounts separately. Packets with
/// `prio >= NIC_PRIO_BANDS` are clamped into the last band.
pub const NIC_PRIO_BANDS: usize = 4;

/// Metric labels for the NIC priority bands.
pub const NIC_BAND_LABELS: [&str; NIC_PRIO_BANDS] = ["prio0", "prio1", "prio2", "prio3"];

/// Shared handle to a NIC's per-priority-band usage accounting.
pub type SharedNicUsage = Rc<RefCell<ClassUsage<NIC_PRIO_BANDS>>>;

/// Where an endpoint sends its packets: directly onto a link, or via a
/// shared [`Nic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxPath {
    /// Transmit straight onto a link the endpoint owns.
    Link(LinkId),
    /// Hand the packet to a NIC actor that owns the access link.
    Nic(ActorId),
}

impl TxPath {
    /// Sends a packet along this path.
    pub fn send(self, ctx: &mut SimCtx, pkt: Packet) {
        match self {
            TxPath::Link(l) => ctx.transmit(l, pkt),
            TxPath::Nic(n) => ctx.send_message(n, Payload::new(NicForward(pkt))),
        }
    }
}

/// Message wrapper: "transmit this packet on your WAN link".
#[derive(Debug, Clone)]
pub struct NicForward(pub Packet);

/// Message wrapper: "a packet arrived for you".
///
/// Endpoints behind a NIC receive their packets as [`Event::Message`]
/// carrying this wrapper instead of [`Event::Packet`]; use
/// [`unwrap_packet`] to handle both uniformly.
#[derive(Debug, Clone)]
pub struct NicDeliver(pub Packet);

/// Extracts a packet from either a direct link arrival or a NIC delivery.
/// Returns `None` for unrelated events (timers, other messages).
pub fn unwrap_packet(ev: Event) -> Option<Packet> {
    match ev {
        Event::Packet { packet, .. } => Some(packet),
        Event::Message { mut msg, .. } => {
            if msg.is_unique() {
                // Uniquely owned (unpooled) deliveries move the packet out.
                msg.take::<NicDeliver>().map(|d| d.0)
            } else {
                // Pooled deliveries stay shared with the NIC's slot; clone
                // the packet out by reference — an `Rc` bump on the payload,
                // not a deep clone.
                msg.map_ref(|d: &NicDeliver| d.0.clone())
            }
        }
        _ => None,
    }
}

/// A NIC multiplexing endpoints over one WAN link.
#[derive(Debug)]
pub struct Nic {
    wan: LinkId,
    /// Flow id → endpoint. Looked up once per arriving packet; the
    /// deterministic multiply-rotate hasher keeps that probe off the
    /// SipHash setup cost.
    routes: FxHashMap<u64, ActorId>,
    /// Per-priority-band accounting: bytes/packets forwarded onto the WAN
    /// link ("sent") and arrivals discarded for lack of a route ("dropped").
    usage: SharedNicUsage,
    /// Slab pool for [`NicDeliver`] wrappers on the receive hot path.
    deliver_pool: PayloadPool<NicDeliver>,
}

impl Nic {
    /// Creates a NIC transmitting on `wan`.
    pub fn new(wan: LinkId) -> Self {
        Nic {
            wan,
            routes: FxHashMap::default(),
            usage: Rc::new(RefCell::new(ClassUsage::new())),
            deliver_pool: PayloadPool::new(),
        }
    }

    /// Enables or disables delivery-payload pooling (on by default).
    /// Artifacts are byte-identical either way; `false` forces a fresh
    /// allocation per delivered packet.
    pub fn set_pooling(&mut self, enabled: bool) {
        self.deliver_pool.set_enabled(enabled);
    }

    /// Registers `endpoint` to receive packets whose flow id is `flow`,
    /// builder style.
    #[must_use]
    pub fn with_route(mut self, flow: u64, endpoint: ActorId) -> Self {
        self.routes.insert(flow, endpoint);
        self
    }

    /// Registers a route after construction.
    pub fn add_route(&mut self, flow: u64, endpoint: ActorId) {
        self.routes.insert(flow, endpoint);
    }

    /// Shared handle to the per-band usage accounting; keep a clone to
    /// inspect (or [`ClassUsage::publish`]) after handing the NIC to the
    /// simulator.
    pub fn usage(&self) -> SharedNicUsage {
        Rc::clone(&self.usage)
    }

    /// Publishes this NIC's usage counters as `{prefix}.{band}.{metric}`.
    pub fn publish_usage(&self, registry: &MetricsRegistry, prefix: &str) {
        self.usage.borrow().publish(registry, prefix, &NIC_BAND_LABELS);
    }
}

impl Actor for Nic {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        match ev {
            Event::Message { mut msg, .. } => {
                if let Some(NicForward(pkt)) = msg.take::<NicForward>() {
                    self.usage.borrow_mut().record_sent(usize::from(pkt.prio), u64::from(pkt.size));
                    ctx.transmit(self.wan, pkt);
                } else if let Some(update) = msg.map_ref(|u: &RateUpdate| *u) {
                    // Hybrid-fidelity coupling: the fluid tier reports how
                    // much of a boundary link the packet tier may use. Read
                    // by reference — the fluid tier pools these payloads.
                    ctx.set_link_rate(update.link, update.rate);
                }
            }
            Event::Packet { packet, .. } => {
                if let Some(&dst) = self.routes.get(&packet.flow) {
                    // Cloning a packet into the pooled wrapper is a header
                    // memcpy plus an `Rc` bump of its payload.
                    let payload = self
                        .deliver_pool
                        .prepare(|| NicDeliver(packet.clone()), |d| d.0 = packet.clone());
                    ctx.send_message(dst, payload);
                } else {
                    // Unroutable packets are dropped, like a host without a
                    // matching socket — but the discard is accounted.
                    self.usage
                        .borrow_mut()
                        .record_dropped(usize::from(packet.prio), u64::from(packet.size));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marnet_sim::link::{Bandwidth, LinkParams};
    use marnet_sim::time::{SimDuration, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Endpoint {
        got: Rc<RefCell<Vec<u64>>>,
    }
    impl Actor for Endpoint {
        fn on_event(&mut self, _ctx: &mut SimCtx, ev: Event) {
            if let Some(pkt) = unwrap_packet(ev) {
                self.got.borrow_mut().push(pkt.id);
            }
        }
    }

    struct Injector {
        nic: ActorId,
        flow: u64,
    }
    impl Actor for Injector {
        fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
            if matches!(ev, Event::Start) {
                let id = ctx.next_packet_id();
                let pkt = Packet::new(id, self.flow, 500, ctx.now());
                TxPath::Nic(self.nic).send(ctx, pkt);
            }
        }
    }

    #[test]
    fn nic_forwards_and_routes_by_flow() {
        use marnet_sim::engine::Simulator;
        let got1 = Rc::new(RefCell::new(Vec::new()));
        let got2 = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        // Topology: injector -> nicA -(link)-> nicB -> endpoints.
        let nic_a = sim.reserve_actor();
        let nic_b = sim.reserve_actor();
        let e1 = sim.add_actor(Endpoint { got: Rc::clone(&got1) });
        let e2 = sim.add_actor(Endpoint { got: Rc::clone(&got2) });
        let l = sim.add_link(
            nic_a,
            nic_b,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(1)),
        );
        let tx_nic = Nic::new(l);
        let tx_usage = tx_nic.usage();
        sim.install_actor(nic_a, tx_nic);
        // nic_b never transmits in this test; give it the same link id.
        let rx_nic = Nic::new(l).with_route(7, e1).with_route(8, e2);
        let rx_usage = rx_nic.usage();
        sim.install_actor(nic_b, rx_nic);
        sim.add_actor(Injector { nic: nic_a, flow: 7 });
        sim.add_actor(Injector { nic: nic_a, flow: 8 });
        sim.add_actor(Injector { nic: nic_a, flow: 99 }); // unroutable
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(got1.borrow().len(), 1);
        assert_eq!(got2.borrow().len(), 1);
        // All three injected packets crossed the WAN; exactly the unroutable
        // one was discarded at the far side.
        assert_eq!(tx_usage.borrow().total_sent_packets(), 3);
        assert_eq!(tx_usage.borrow().total_sent_bytes(), 1500);
        assert_eq!(rx_usage.borrow().total_dropped_packets(), 1);
        assert_eq!(rx_usage.borrow().total_dropped_bytes(), 500);
    }

    #[test]
    fn unwrap_packet_passes_through_direct_arrivals() {
        let pkt = Packet::new(3, 0, 10, SimTime::ZERO);
        let ev = Event::Packet { link: link_id_for_test(), packet: pkt };
        assert_eq!(unwrap_packet(ev).unwrap().id, 3);
        assert!(unwrap_packet(Event::Timer { tag: 0 }).is_none());
    }

    // LinkId has a crate-private constructor; grab one from a real sim.
    fn link_id_for_test() -> LinkId {
        use marnet_sim::engine::Simulator;
        let mut sim = Simulator::new(0);
        let a = sim.reserve_actor();
        let b = sim.reserve_actor();
        sim.add_link(a, b, LinkParams::new(Bandwidth::from_mbps(1.0), SimDuration::ZERO))
    }
}
