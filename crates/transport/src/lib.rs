//! # marnet-transport — baseline transport protocols over the simulator
//!
//! §V of the paper surveys existing transport protocols and concludes none
//! fits MAR offloading; §IV-D and Fig. 3 show how loss-based TCP interacts
//! pathologically with asymmetric access links. To reproduce those dynamics
//! (and to give the AR protocol of `marnet-core` baselines to compete with),
//! this crate implements:
//!
//! * [`tcp`] — a packet-level TCP with slow start, congestion avoidance,
//!   fast retransmit/recovery (NewReno-style), RFC 6298 RTO, delayed ACKs,
//!   and pluggable congestion control: Reno, Cubic and Vegas (the
//!   delay-based scheme whose fairness §VI-B worries about);
//! * [`nic`] — a simple flow-demultiplexing NIC actor so many endpoints can
//!   share one access link (needed for the antiparallel-TCP experiments);
//! * [`udp`] — constant-bit-rate datagram source and counting sink;
//! * [`probe`] — request/response RTT probes used to regenerate Table II.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod nic;
pub mod probe;
pub mod tcp;
pub mod udp;

pub use nic::{Nic, TxPath};
pub use tcp::{TcpConfig, TcpFlowStats, TcpReceiver, TcpSender};
