//! End-to-end runs of every congestion-control algorithm as a real sender,
//! plus the §VI-B headline comparison: Vegas (delay-based) versus Reno
//! (loss-based) on a shared bottleneck.

use marnet_sim::engine::Simulator;
use marnet_sim::link::{Bandwidth, LinkParams};
use marnet_sim::queue::QueueConfig;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::{Nic, TxPath};
use marnet_transport::tcp::{
    CongestionControl, Cubic, Reno, TcpConfig, TcpReceiver, TcpSender, Vegas,
};

fn run_solo(cc: Box<dyn CongestionControl>, secs: u64) -> (f64, f64) {
    let mut sim = Simulator::new(3);
    let s = sim.reserve_actor();
    let r = sim.reserve_actor();
    let params = LinkParams::new(Bandwidth::from_mbps(12.0), SimDuration::from_millis(15))
        .with_queue(QueueConfig::DropTail { cap_packets: 120 });
    let fwd = sim.add_link(s, r, params.clone());
    let rev = sim.add_link(r, s, params);
    let sender = TcpSender::new(1, TxPath::Link(fwd), TcpConfig::default(), cc);
    let sstats = sender.stats();
    sim.install_actor(s, sender);
    let receiver = TcpReceiver::new(1, TxPath::Link(rev));
    let rstats = receiver.stats();
    sim.install_actor(r, receiver);
    sim.run_until(SimTime::from_secs(secs));
    let goodput = rstats.borrow().goodput_bytes as f64 * 8.0 / secs as f64 / 1e6;
    let srtt = sstats.borrow().srtt_series.points().last().map(|p| p.1).unwrap_or(f64::NAN);
    (goodput, srtt)
}

#[test]
fn every_cc_fills_a_solo_link() {
    for (name, cc) in [
        ("reno", Box::new(Reno::new(1460)) as Box<dyn CongestionControl>),
        ("cubic", Box::new(Cubic::new(1460))),
        ("vegas", Box::new(Vegas::new(1460))),
    ] {
        let (goodput, _) = run_solo(cc, 20);
        assert!(goodput > 9.5, "{name}: {goodput} Mb/s on a 12 Mb/s link");
    }
}

#[test]
fn vegas_runs_at_lower_rtt_than_reno() {
    // Delay-based control's entire point: same goodput, empty queue.
    let (reno_goodput, reno_srtt) = run_solo(Box::new(Reno::new(1460)), 20);
    let (vegas_goodput, vegas_srtt) = run_solo(Box::new(Vegas::new(1460)), 20);
    assert!(vegas_goodput > reno_goodput * 0.85);
    assert!(
        vegas_srtt < reno_srtt * 0.7,
        "vegas srtt {vegas_srtt} ms must beat reno's {reno_srtt} ms standing queue"
    );
    // Reno fills the 120-packet buffer (~120 ms at 12 Mb/s); Vegas keeps a
    // few segments queued (~30 ms base + small epsilon).
    assert!(vegas_srtt < 60.0, "vegas srtt {vegas_srtt}");
}

#[test]
fn vegas_is_starved_by_reno_on_a_shared_bottleneck() {
    // §VI-B's cited fairness problem, at the TCP level this time.
    let mut sim = Simulator::new(5);
    let left = sim.reserve_actor();
    let right = sim.reserve_actor();
    let params = LinkParams::new(Bandwidth::from_mbps(12.0), SimDuration::from_millis(15))
        .with_queue(QueueConfig::DropTail { cap_packets: 120 });
    let fwd = sim.add_link(left, right, params.clone());
    let rev = sim.add_link(right, left, params);
    let mut left_nic = Nic::new(fwd);
    let mut right_nic = Nic::new(rev);

    let mut stats = Vec::new();
    for (conn, cc) in [
        (1u64, Box::new(Reno::new(1460)) as Box<dyn CongestionControl>),
        (2u64, Box::new(Vegas::new(1460))),
    ] {
        let s = sim.reserve_actor();
        let r = sim.reserve_actor();
        let sender = TcpSender::new(conn, TxPath::Nic(left), TcpConfig::default(), cc);
        sim.install_actor(s, sender);
        let receiver = TcpReceiver::new(conn, TxPath::Nic(right));
        stats.push(receiver.stats());
        sim.install_actor(r, receiver);
        left_nic.add_route(conn, s);
        right_nic.add_route(conn, r);
    }
    sim.install_actor(left, left_nic);
    sim.install_actor(right, right_nic);
    sim.run_until(SimTime::from_secs(30));

    let reno = stats[0].borrow().goodput_bytes as f64;
    let vegas = stats[1].borrow().goodput_bytes as f64;
    let vegas_share = vegas / (reno + vegas);
    assert!(vegas_share < 0.35, "Reno's queue filling must squeeze Vegas: share {vegas_share}");
    assert!(vegas > 0.0, "Vegas must not fully starve");
}
