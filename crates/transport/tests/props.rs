//! Property-based tests for the transport substrate: RTT estimation
//! invariants, congestion-control safety bounds, and TCP delivery
//! correctness under arbitrary loss.

use marnet_sim::engine::Simulator;
use marnet_sim::link::{Bandwidth, LinkParams, LossModel};
use marnet_sim::queue::QueueConfig;
use marnet_sim::time::{SimDuration, SimTime};
use marnet_transport::nic::TxPath;
use marnet_transport::tcp::{
    CongestionControl, Cubic, DataSource, Reno, RttEstimator, TcpConfig, TcpReceiver, TcpSender,
    Vegas,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn rto_is_always_clamped_and_above_srtt(samples in prop::collection::vec(1u64..10_000, 1..100)) {
        let mut e = RttEstimator::new();
        for ms in samples {
            e.sample(SimDuration::from_millis(ms));
            let rto = e.rto();
            prop_assert!(rto >= RttEstimator::MIN_RTO);
            prop_assert!(rto <= RttEstimator::MAX_RTO);
            // RTO must never fall below the smoothed RTT (clamped at max).
            let srtt = e.srtt().unwrap();
            prop_assert!(rto >= srtt.min(RttEstimator::MAX_RTO));
        }
    }

    #[test]
    fn min_rtt_is_really_the_minimum(samples in prop::collection::vec(1u64..10_000, 1..100)) {
        let mut e = RttEstimator::new();
        let mut true_min = u64::MAX;
        for ms in samples {
            true_min = true_min.min(ms);
            e.sample(SimDuration::from_millis(ms));
        }
        prop_assert_eq!(e.min_rtt().unwrap(), SimDuration::from_millis(true_min));
    }

    /// All congestion controllers keep cwnd within sane bounds under an
    /// arbitrary interleaving of acks, losses and timeouts.
    #[test]
    fn cwnd_stays_positive_under_any_event_sequence(
        events in prop::collection::vec(0u8..3, 1..300),
        mss in 500u32..2000,
    ) {
        let mut ccs: Vec<Box<dyn CongestionControl>> = vec![
            Box::new(Reno::new(mss)),
            Box::new(Cubic::new(mss)),
            Box::new(Vegas::new(mss)),
        ];
        let mut now = SimTime::ZERO;
        for (i, ev) in events.iter().enumerate() {
            now += SimDuration::from_millis(10);
            for cc in &mut ccs {
                match ev {
                    0 => cc.on_ack(
                        u64::from(mss),
                        u64::from(mss) * 4,
                        Some(SimDuration::from_millis(20 + (i as u64 % 50))),
                        now,
                    ),
                    1 => cc.on_loss(now),
                    _ => cc.on_timeout(now),
                }
                prop_assert!(cc.cwnd() >= u64::from(mss), "{} cwnd {}", cc.name(), cc.cwnd());
                prop_assert!(cc.cwnd() < 1 << 40, "{} cwnd blew up", cc.name());
            }
        }
    }

    /// End-to-end TCP correctness: a finite transfer completes and the
    /// receiver counts exactly the sent bytes, for arbitrary loss rates and
    /// transfer sizes.
    #[test]
    fn tcp_delivers_exactly_once_under_loss(
        loss in 0.0f64..0.12,
        kilobytes in 10u64..300,
        seed in 0u64..50,
    ) {
        let total = kilobytes * 1000;
        let mut sim = Simulator::new(seed);
        let s = sim.reserve_actor();
        let r = sim.reserve_actor();
        let big = QueueConfig::DropTail { cap_packets: 10_000 };
        let fwd = sim.add_link(
            s,
            r,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(5))
                .with_loss(LossModel::Bernoulli { p: loss })
                .with_queue(big.clone()),
        );
        let rev = sim.add_link(
            r,
            s,
            LinkParams::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(5))
                .with_loss(LossModel::Bernoulli { p: loss / 2.0 })
                .with_queue(big),
        );
        let cfg = TcpConfig { data: DataSource::Finite(total), ..Default::default() };
        let sender = TcpSender::new(1, TxPath::Link(fwd), cfg, Box::new(Reno::new(1460)));
        let sstats = sender.stats();
        sim.install_actor(s, sender);
        let receiver = TcpReceiver::new(1, TxPath::Link(rev));
        let rstats = receiver.stats();
        sim.install_actor(r, receiver);
        sim.run_until(SimTime::from_secs(600));
        prop_assert!(
            sstats.borrow().completed_at.is_some(),
            "transfer of {total} B stalled at loss {loss}"
        );
        prop_assert_eq!(rstats.borrow().goodput_bytes, total);
    }
}
