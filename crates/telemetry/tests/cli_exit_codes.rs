//! `marnet-trace` exit codes: the workspace CLI convention is 0 ok,
//! 1 findings (trace divergence), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::Command;

use marnet_telemetry::{component, file, TraceEvent};

fn trace_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_marnet-trace"))
}

fn write_trace(name: &str, events: &[TraceEvent]) -> PathBuf {
    let path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    file::write_file(&path, events).expect("write trace");
    path
}

fn events(flow: u64) -> Vec<TraceEvent> {
    vec![
        TraceEvent::packet_enqueue(10, component::link(0), 1, flow, 1200, 0),
        TraceEvent::packet_deliver(20, component::link(0), 1, flow, 1200),
    ]
}

#[test]
fn identical_traces_diff_to_zero() {
    let a = write_trace("ec_a.trace", &events(7));
    let b = write_trace("ec_b.trace", &events(7));
    let st = trace_bin().args(["diff"]).arg(&a).arg(&b).status().expect("run");
    assert_eq!(st.code(), Some(0));
}

#[test]
fn divergent_traces_exit_one() {
    let a = write_trace("ec_c.trace", &events(7));
    let b = write_trace("ec_d.trace", &events(8));
    let st = trace_bin().args(["diff"]).arg(&a).arg(&b).status().expect("run");
    assert_eq!(st.code(), Some(1));
}

#[test]
fn usage_and_io_errors_exit_two() {
    // No arguments at all: usage error.
    let st = trace_bin().status().expect("run");
    assert_eq!(st.code(), Some(2));
    // Unknown subcommand.
    let st = trace_bin().args(["frobnicate"]).status().expect("run");
    assert_eq!(st.code(), Some(2));
    // Missing trace file: I/O error.
    let st = trace_bin().args(["dump", "/nonexistent/trace.bin"]).status().expect("run");
    assert_eq!(st.code(), Some(2));
}
