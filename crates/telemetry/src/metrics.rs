//! Metrics registry: named counters, gauges and sim-time-bucketed
//! histograms.
//!
//! The registry is shared as `Rc<MetricsRegistry>`; registering a metric
//! hands back a cheap handle ([`Counter`], [`Gauge`], [`TimeHistogram`])
//! that instrumented code updates directly — no name lookup on the hot
//! path, just a `Cell` store (counters/gauges) or a `RefCell` borrow
//! (histograms). A [`MetricsSnapshot`] freezes everything into sorted maps
//! for serialization into `marnet-lab` artifacts.
//!
//! Registration is get-or-create by name, so two components naming the same
//! metric share one cell. Names use dotted paths (`"sim.link.0.drops"`).

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

/// A monotonically increasing `u64` counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A last-value-wins `f64` gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<f64>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.set(v);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

#[derive(Debug, Default)]
struct HistogramInner {
    /// bucket index (start = index * width) -> accumulator
    buckets: BTreeMap<u64, BucketAcc>,
}

#[derive(Debug, Clone, Copy)]
struct BucketAcc {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A sim-time-bucketed histogram handle: observations are grouped into
/// fixed-width time buckets, each keeping count/sum/min/max. This is the
/// "metric over sim time" primitive — cwnd evolution, RTT samples, queue
/// delay — at bounded memory regardless of sample rate.
#[derive(Debug, Clone)]
pub struct TimeHistogram {
    inner: Rc<RefCell<HistogramInner>>,
    bucket_nanos: u64,
}

impl TimeHistogram {
    /// Records `value` at sim time `t_nanos`.
    pub fn observe(&self, t_nanos: u64, value: f64) {
        let idx = t_nanos / self.bucket_nanos;
        let mut inner = self.inner.borrow_mut();
        match inner.buckets.get_mut(&idx) {
            Some(acc) => {
                acc.count += 1;
                acc.sum += value;
                if value < acc.min {
                    acc.min = value;
                }
                if value > acc.max {
                    acc.max = value;
                }
            }
            None => {
                inner
                    .buckets
                    .insert(idx, BucketAcc { count: 1, sum: value, min: value, max: value });
            }
        }
    }

    /// The configured bucket width in nanoseconds.
    pub fn bucket_nanos(&self) -> u64 {
        self.bucket_nanos
    }

    fn to_buckets(&self) -> Vec<TimeBucket> {
        self.inner
            .borrow()
            .buckets
            .iter()
            .map(|(idx, acc)| TimeBucket {
                start_nanos: idx * self.bucket_nanos,
                count: acc.count,
                sum: acc.sum,
                min: acc.min,
                max: acc.max,
            })
            .collect()
    }
}

/// One frozen time bucket of a [`TimeHistogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeBucket {
    /// Bucket start, in sim nanoseconds.
    pub start_nanos: u64,
    /// Observations that fell in this bucket.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl TimeBucket {
    /// Mean of the observations in this bucket.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A registry of named metrics, shared as `Rc<MetricsRegistry>`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RefCell<BTreeMap<String, Counter>>,
    gauges: RefCell<BTreeMap<String, Gauge>>,
    series: RefCell<BTreeMap<String, TimeHistogram>>,
}

impl MetricsRegistry {
    /// A fresh shared registry.
    pub fn new() -> Rc<MetricsRegistry> {
        Rc::new(MetricsRegistry::default())
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters.borrow_mut().entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges.borrow_mut().entry(name.to_string()).or_default().clone()
    }

    /// Gets or creates the time histogram named `name` with the given
    /// bucket width (min 1 ns). The width of the first registration wins.
    pub fn time_histogram(&self, name: &str, bucket_nanos: u64) -> TimeHistogram {
        self.series
            .borrow_mut()
            .entry(name.to_string())
            .or_insert_with(|| TimeHistogram {
                inner: Rc::new(RefCell::new(HistogramInner::default())),
                bucket_nanos: bucket_nanos.max(1),
            })
            .clone()
    }

    /// Freezes every registered metric into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.borrow().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.borrow().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            series: self.series.borrow().iter().map(|(k, v)| (k.clone(), v.to_buckets())).collect(),
        }
    }
}

/// A frozen, serializable view of a [`MetricsRegistry`]. Maps are sorted by
/// name, so snapshots of identical runs are byte-identical on disk.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Time-series buckets by name.
    pub series: BTreeMap<String, Vec<TimeBucket>>,
}

impl MetricsSnapshot {
    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.series.is_empty()
    }

    /// Merges `other` into `self`: counters add, gauges take the later
    /// value, series concatenate bucket lists (used by `marnet-lab` when a
    /// run has several trials; per-trial series keep their own buckets).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.series {
            self.series.entry(k.clone()).or_default().extend(v.iter().cloned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_share_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.count");
        let b = reg.counter("x.count");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = reg.gauge("x.level");
        g.set(1.5);
        assert_eq!(reg.gauge("x.level").get(), 1.5);
    }

    #[test]
    fn histogram_buckets_by_time() {
        let reg = MetricsRegistry::new();
        let h = reg.time_histogram("rtt", 1_000);
        h.observe(0, 10.0);
        h.observe(999, 30.0);
        h.observe(1_000, 5.0);
        let snap = reg.snapshot();
        let buckets = &snap.series["rtt"];
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].start_nanos, 0);
        assert_eq!(buckets[0].count, 2);
        assert_eq!(buckets[0].mean(), 20.0);
        assert_eq!(buckets[0].min, 10.0);
        assert_eq!(buckets[0].max, 30.0);
        assert_eq!(buckets[1].start_nanos, 1_000);
        assert_eq!(buckets[1].count, 1);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(7);
        reg.gauge("b").set(2.25);
        reg.time_histogram("c", 500).observe(1_250, 3.0);
        let snap = reg.snapshot();
        let value = snap.serialize_value();
        let back = MetricsSnapshot::deserialize_value(&value).expect("round trip");
        assert_eq!(snap, back);
    }

    #[test]
    fn merge_adds_counters_and_concatenates_series() {
        let reg_a = MetricsRegistry::new();
        reg_a.counter("n").add(1);
        reg_a.time_histogram("s", 100).observe(0, 1.0);
        let reg_b = MetricsRegistry::new();
        reg_b.counter("n").add(2);
        reg_b.time_histogram("s", 100).observe(50, 2.0);
        let mut merged = reg_a.snapshot();
        merged.merge(&reg_b.snapshot());
        assert_eq!(merged.counters["n"], 3);
        assert_eq!(merged.series["s"].len(), 2);
    }

    #[test]
    fn zero_bucket_width_is_clamped() {
        let reg = MetricsRegistry::new();
        let h = reg.time_histogram("z", 0);
        h.observe(3, 1.0); // must not divide by zero
        assert_eq!(h.bucket_nanos(), 1);
    }
}
