//! The compact binary trace event.
//!
//! Every recorded event is exactly [`TraceEvent::ENCODED_LEN`] bytes on
//! disk: time (8) · component (4) · kind (1) · aux (1) · reserved (2) ·
//! two 64-bit operands whose meaning depends on the kind. Fixed-size
//! records keep recording allocation-free and make the file format
//! seekable; packing packet `flow` and `size` into one operand keeps the
//! record at 32 bytes (flows above 2³²−1 are truncated — simulation flows
//! are small integers).

use std::fmt;

/// Component-id encoding: links and actors share one `u32` namespace.
///
/// Bit 31 distinguishes the two: `0x8000_0000 | index` is a link,
/// a bare index is an actor. This matches `marnet-sim`'s `LinkId` /
/// `ActorId` index spaces without depending on that crate.
pub mod component {
    /// Flag bit marking a link component.
    pub const LINK_BIT: u32 = 0x8000_0000;

    /// The component id of link `index`.
    pub fn link(index: usize) -> u32 {
        LINK_BIT | (index as u32)
    }

    /// The component id of actor `index`.
    pub fn actor(index: usize) -> u32 {
        index as u32 & !LINK_BIT
    }

    /// `true` if `comp` names a link.
    pub fn is_link(comp: u32) -> bool {
        comp & LINK_BIT != 0
    }

    /// The raw link or actor index of `comp`.
    pub fn index(comp: u32) -> usize {
        (comp & !LINK_BIT) as usize
    }

    /// Human-readable component label (`link#3` / `actor#7`).
    pub fn label(comp: u32) -> String {
        if is_link(comp) {
            format!("link#{}", index(comp))
        } else {
            format!("actor#{}", index(comp))
        }
    }
}

/// What happened. The discriminants are the on-disk encoding; never reuse
/// or renumber a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// A packet entered a link's transmit queue. `a` = packet id,
    /// `b` = `flow << 32 | size`, aux = priority band.
    PacketEnqueue = 0,
    /// A packet was dropped. `a` = packet id, `b` = `flow << 32 | size`,
    /// aux = [`DropReason`].
    PacketDrop = 1,
    /// A packet left a link's queue for serialization. `a` = packet id,
    /// `b` = queueing delay in nanoseconds (the bufferbloat signal).
    PacketDequeue = 2,
    /// A packet arrived at the far end of a link. `a` = packet id,
    /// `b` = `flow << 32 | size`.
    PacketDeliver = 3,
    /// A link transitioned idle → transmitting. `a` = queued packets,
    /// `b` = queued bytes (after the dequeue).
    LinkBusy = 4,
    /// A link transitioned transmitting → idle. `a`/`b` as [`TraceKind::LinkBusy`].
    LinkIdle = 5,
    /// A traffic class admitted a message for transmission.
    /// aux = class index, `a` = message id, `b` = bytes.
    ClassAdmit = 6,
    /// The degradation scheduler shed traffic. aux = severity level,
    /// `a` = messages shed, `b` = bytes shed.
    ClassDegrade = 7,
    /// FEC reconstructed a lost fragment. `a` = message id, `b` = fragment.
    FecRepair = 8,
    /// The multipath scheduler moved a class to another path.
    /// aux = class index, `a` = old path, `b` = new path.
    PathSwitch = 9,
    /// A frame/job was dispatched to a remote executor. aux = stream class,
    /// `a` = job id, `b` = payload bytes.
    OffloadDispatch = 10,
    /// A fault was injected into the simulation. aux = fault-kind code,
    /// `a` = target component id, `b` = kind-specific parameter.
    FaultInject = 11,
    /// A previously injected fault cleared. aux = fault-kind code,
    /// `a` = target component id, `b` = fault duration in nanoseconds.
    FaultClear = 12,
    /// An endpoint watchdog declared the peer unreachable.
    /// `a` = feedback silence in nanoseconds, `b` = paths still up.
    OutageDetect = 13,
    /// An endpoint heard from its peer again after an outage.
    /// `a` = outage duration in nanoseconds, `b` = probes sent meanwhile.
    OutageResolve = 14,
    /// An edge server crashed. `a` = session epoch at crash,
    /// `b` = 1 if session state was lost, 0 if it survived.
    EdgeCrash = 15,
    /// An edge server came back up. `a` = new session epoch,
    /// `b` = downtime in nanoseconds.
    EdgeRestart = 16,
    /// A sender re-established its session after an edge restart.
    /// `a` = old epoch, `b` = new epoch.
    SessionResync = 17,
    /// A recovery probe was sent during an outage. `a` = probe attempt
    /// number, `b` = current backoff delay in nanoseconds.
    RecoveryProbe = 18,
    /// A flow entered the fluid tier. aux = flow-class index,
    /// `a` = flow id, `b` = flow size in bytes.
    FlowStart = 19,
    /// A fluid flow completed. aux = flow-class index, `a` = flow id,
    /// `b` = flow duration in nanoseconds.
    FlowFinish = 20,
    /// A flow class's max-min fair rate changed after a recompute.
    /// aux = flow-class index, `a` = active flows in the class,
    /// `b` = new per-flow rate in bits per second.
    FlowRate = 21,
}

impl TraceKind {
    /// All kinds, in discriminant order.
    pub const ALL: [TraceKind; 22] = [
        TraceKind::PacketEnqueue,
        TraceKind::PacketDrop,
        TraceKind::PacketDequeue,
        TraceKind::PacketDeliver,
        TraceKind::LinkBusy,
        TraceKind::LinkIdle,
        TraceKind::ClassAdmit,
        TraceKind::ClassDegrade,
        TraceKind::FecRepair,
        TraceKind::PathSwitch,
        TraceKind::OffloadDispatch,
        TraceKind::FaultInject,
        TraceKind::FaultClear,
        TraceKind::OutageDetect,
        TraceKind::OutageResolve,
        TraceKind::EdgeCrash,
        TraceKind::EdgeRestart,
        TraceKind::SessionResync,
        TraceKind::RecoveryProbe,
        TraceKind::FlowStart,
        TraceKind::FlowFinish,
        TraceKind::FlowRate,
    ];

    /// Decodes a discriminant byte.
    pub fn from_u8(v: u8) -> Option<TraceKind> {
        TraceKind::ALL.get(v as usize).copied()
    }

    /// The stable lowercase name used by `marnet-trace --kind`.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::PacketEnqueue => "enqueue",
            TraceKind::PacketDrop => "drop",
            TraceKind::PacketDequeue => "dequeue",
            TraceKind::PacketDeliver => "deliver",
            TraceKind::LinkBusy => "busy",
            TraceKind::LinkIdle => "idle",
            TraceKind::ClassAdmit => "admit",
            TraceKind::ClassDegrade => "degrade",
            TraceKind::FecRepair => "fec-repair",
            TraceKind::PathSwitch => "path-switch",
            TraceKind::OffloadDispatch => "offload",
            TraceKind::FaultInject => "fault-inject",
            TraceKind::FaultClear => "fault-clear",
            TraceKind::OutageDetect => "outage-detect",
            TraceKind::OutageResolve => "outage-resolve",
            TraceKind::EdgeCrash => "edge-crash",
            TraceKind::EdgeRestart => "edge-restart",
            TraceKind::SessionResync => "session-resync",
            TraceKind::RecoveryProbe => "recovery-probe",
            TraceKind::FlowStart => "flow-start",
            TraceKind::FlowFinish => "flow-finish",
            TraceKind::FlowRate => "flow-rate",
        }
    }

    /// Parses a [`TraceKind::name`].
    pub fn from_name(name: &str) -> Option<TraceKind> {
        TraceKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a packet was dropped (the `aux` byte of [`TraceKind::PacketDrop`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DropReason {
    /// Transmit queue was full (tail drop, or FQ-CoDel fattest-flow drop).
    QueueFull = 0,
    /// Active queue management (CoDel control law) dropped at dequeue.
    Aqm = 1,
    /// The link's loss model lost the packet in flight.
    Loss = 2,
    /// The link was administratively down.
    LinkDown = 3,
    /// The sender shed the packet before the network (degradation/stale).
    Shed = 4,
}

impl DropReason {
    /// Decodes an `aux` byte.
    pub fn from_u8(v: u8) -> Option<DropReason> {
        [
            DropReason::QueueFull,
            DropReason::Aqm,
            DropReason::Loss,
            DropReason::LinkDown,
            DropReason::Shed,
        ]
        .get(v as usize)
        .copied()
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::QueueFull => "queue-full",
            DropReason::Aqm => "aqm",
            DropReason::Loss => "loss",
            DropReason::LinkDown => "link-down",
            DropReason::Shed => "shed",
        }
    }
}

/// One recorded event: 32 bytes, fixed layout, little-endian on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time in nanoseconds.
    pub t: u64,
    /// Component id (see [`component`]).
    pub comp: u32,
    /// What happened.
    pub kind: TraceKind,
    /// Kind-specific small operand (drop reason, class index, severity).
    pub aux: u8,
    /// First 64-bit operand (usually a packet/message id).
    pub a: u64,
    /// Second 64-bit operand (packed flow/size, delay, bytes, ...).
    pub b: u64,
}

/// Packs a packet's flow and size into one operand.
fn pack_flow_size(flow: u64, size: u32) -> u64 {
    (flow << 32) | u64::from(size)
}

impl TraceEvent {
    /// Encoded size of one record in bytes.
    pub const ENCODED_LEN: usize = 32;

    /// A packet-enqueue event on a link.
    pub fn packet_enqueue(t: u64, comp: u32, id: u64, flow: u64, size: u32, prio: u8) -> Self {
        TraceEvent {
            t,
            comp,
            kind: TraceKind::PacketEnqueue,
            aux: prio,
            a: id,
            b: pack_flow_size(flow, size),
        }
    }

    /// A packet-drop event.
    pub fn packet_drop(
        t: u64,
        comp: u32,
        reason: DropReason,
        id: u64,
        flow: u64,
        size: u32,
    ) -> Self {
        TraceEvent {
            t,
            comp,
            kind: TraceKind::PacketDrop,
            aux: reason as u8,
            a: id,
            b: pack_flow_size(flow, size),
        }
    }

    /// A packet-dequeue event carrying the queueing delay in nanoseconds.
    pub fn packet_dequeue(t: u64, comp: u32, id: u64, delay_nanos: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::PacketDequeue, aux: 0, a: id, b: delay_nanos }
    }

    /// A packet-delivery event at the far end of a link.
    pub fn packet_deliver(t: u64, comp: u32, id: u64, flow: u64, size: u32) -> Self {
        TraceEvent {
            t,
            comp,
            kind: TraceKind::PacketDeliver,
            aux: 0,
            a: id,
            b: pack_flow_size(flow, size),
        }
    }

    /// A link busy/idle transition with the remaining queue occupancy.
    pub fn link_state(t: u64, comp: u32, busy: bool, q_packets: u64, q_bytes: u64) -> Self {
        TraceEvent {
            t,
            comp,
            kind: if busy { TraceKind::LinkBusy } else { TraceKind::LinkIdle },
            aux: 0,
            a: q_packets,
            b: q_bytes,
        }
    }

    /// A class-admit event at a protocol endpoint.
    pub fn class_admit(t: u64, comp: u32, class: u8, msg_id: u64, bytes: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::ClassAdmit, aux: class, a: msg_id, b: bytes }
    }

    /// A degradation-shed event at a protocol endpoint.
    pub fn class_degrade(t: u64, comp: u32, severity: u8, shed_msgs: u64, shed_bytes: u64) -> Self {
        TraceEvent {
            t,
            comp,
            kind: TraceKind::ClassDegrade,
            aux: severity,
            a: shed_msgs,
            b: shed_bytes,
        }
    }

    /// A FEC-repair event.
    pub fn fec_repair(t: u64, comp: u32, msg_id: u64, fragment: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::FecRepair, aux: 0, a: msg_id, b: fragment }
    }

    /// A path-switch event.
    pub fn path_switch(t: u64, comp: u32, class: u8, old_path: u64, new_path: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::PathSwitch, aux: class, a: old_path, b: new_path }
    }

    /// An offload-dispatch event: a client handed `bytes` of work for
    /// message `job` (stream class `class`) to the transport for remote
    /// execution.
    pub fn offload_dispatch(t: u64, comp: u32, class: u8, job: u64, bytes: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::OffloadDispatch, aux: class, a: job, b: bytes }
    }

    /// A fault-injection event: fault kind `fault` hit component `target`
    /// with a kind-specific parameter (loss permille, delay nanos, ...).
    pub fn fault_inject(t: u64, comp: u32, fault: u8, target: u64, param: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::FaultInject, aux: fault, a: target, b: param }
    }

    /// A fault-clear event: fault kind `fault` on component `target`
    /// cleared after `duration_nanos`.
    pub fn fault_clear(t: u64, comp: u32, fault: u8, target: u64, duration_nanos: u64) -> Self {
        TraceEvent {
            t,
            comp,
            kind: TraceKind::FaultClear,
            aux: fault,
            a: target,
            b: duration_nanos,
        }
    }

    /// An outage-detection event at an endpoint watchdog.
    pub fn outage_detect(t: u64, comp: u32, silence_nanos: u64, paths_up: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::OutageDetect, aux: 0, a: silence_nanos, b: paths_up }
    }

    /// An outage-resolution event at an endpoint watchdog.
    pub fn outage_resolve(t: u64, comp: u32, outage_nanos: u64, probes: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::OutageResolve, aux: 0, a: outage_nanos, b: probes }
    }

    /// An edge-server crash event.
    pub fn edge_crash(t: u64, comp: u32, epoch: u64, state_lost: bool) -> Self {
        TraceEvent {
            t,
            comp,
            kind: TraceKind::EdgeCrash,
            aux: 0,
            a: epoch,
            b: u64::from(state_lost),
        }
    }

    /// An edge-server restart event.
    pub fn edge_restart(t: u64, comp: u32, epoch: u64, downtime_nanos: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::EdgeRestart, aux: 0, a: epoch, b: downtime_nanos }
    }

    /// A session re-establishment event at a sender.
    pub fn session_resync(t: u64, comp: u32, old_epoch: u64, new_epoch: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::SessionResync, aux: 0, a: old_epoch, b: new_epoch }
    }

    /// A recovery-probe event during an outage.
    pub fn recovery_probe(t: u64, comp: u32, attempt: u64, backoff_nanos: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::RecoveryProbe, aux: 0, a: attempt, b: backoff_nanos }
    }

    /// A flow-start event in the fluid tier.
    pub fn flow_start(t: u64, comp: u32, class: u8, flow: u64, bytes: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::FlowStart, aux: class, a: flow, b: bytes }
    }

    /// A flow-finish event in the fluid tier.
    pub fn flow_finish(t: u64, comp: u32, class: u8, flow: u64, duration_nanos: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::FlowFinish, aux: class, a: flow, b: duration_nanos }
    }

    /// A flow-class rate-change event after a max-min recompute.
    pub fn flow_rate(t: u64, comp: u32, class: u8, active: u64, rate_bps: u64) -> Self {
        TraceEvent { t, comp, kind: TraceKind::FlowRate, aux: class, a: active, b: rate_bps }
    }

    /// The packet flow id, for kinds whose `b` packs flow and size.
    pub fn flow(&self) -> u64 {
        self.b >> 32
    }

    /// The packet wire size, for kinds whose `b` packs flow and size.
    pub fn size(&self) -> u32 {
        self.b as u32
    }

    /// Encodes the record into its fixed 32-byte little-endian form.
    pub fn encode(&self) -> [u8; TraceEvent::ENCODED_LEN] {
        let mut out = [0u8; TraceEvent::ENCODED_LEN];
        out[0..8].copy_from_slice(&self.t.to_le_bytes());
        out[8..12].copy_from_slice(&self.comp.to_le_bytes());
        out[12] = self.kind as u8;
        out[13] = self.aux;
        // out[14..16] reserved, zero.
        out[16..24].copy_from_slice(&self.a.to_le_bytes());
        out[24..32].copy_from_slice(&self.b.to_le_bytes());
        out
    }

    /// Decodes a record, or `None` for a short buffer / unknown kind.
    pub fn decode(bytes: &[u8]) -> Option<TraceEvent> {
        if bytes.len() < TraceEvent::ENCODED_LEN {
            return None;
        }
        let kind = TraceKind::from_u8(bytes[12])?;
        Some(TraceEvent {
            t: u64::from_le_bytes(bytes[0..8].try_into().ok()?),
            comp: u32::from_le_bytes(bytes[8..12].try_into().ok()?),
            kind,
            aux: bytes[13],
            a: u64::from_le_bytes(bytes[16..24].try_into().ok()?),
            b: u64::from_le_bytes(bytes[24..32].try_into().ok()?),
        })
    }
}

impl fmt::Display for TraceEvent {
    /// One human-readable line, used by `marnet-trace dump`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t_ms = self.t as f64 / 1e6;
        let comp = component::label(self.comp);
        match self.kind {
            TraceKind::PacketEnqueue => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} enqueue      pkt {} flow {} size {} prio {}",
                self.a,
                self.flow(),
                self.size(),
                self.aux
            ),
            TraceKind::PacketDrop => {
                let reason = DropReason::from_u8(self.aux).map_or("?", DropReason::name);
                write!(
                    f,
                    "{t_ms:>12.6} ms  {comp:<10} drop         pkt {} flow {} size {} ({reason})",
                    self.a,
                    self.flow(),
                    self.size()
                )
            }
            TraceKind::PacketDequeue => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} dequeue      pkt {} qdelay {:.6} ms",
                self.a,
                self.b as f64 / 1e6
            ),
            TraceKind::PacketDeliver => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} deliver      pkt {} flow {} size {}",
                self.a,
                self.flow(),
                self.size()
            ),
            TraceKind::LinkBusy | TraceKind::LinkIdle => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} {:<12} queued {} pkts / {} bytes",
                self.kind.name(),
                self.a,
                self.b
            ),
            TraceKind::ClassAdmit => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} admit        class {} msg {} bytes {}",
                self.aux, self.a, self.b
            ),
            TraceKind::ClassDegrade => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} degrade      severity {} shed {} msgs / {} bytes",
                self.aux, self.a, self.b
            ),
            TraceKind::FecRepair => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} fec-repair   msg {} fragment {}",
                self.a, self.b
            ),
            TraceKind::PathSwitch => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} path-switch  class {} path {} -> {}",
                self.aux, self.a, self.b
            ),
            TraceKind::OffloadDispatch => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} offload      class {} job {} bytes {}",
                self.aux, self.a, self.b
            ),
            TraceKind::FaultInject => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} fault-inject kind {} target {} param {}",
                self.aux, self.a, self.b
            ),
            TraceKind::FaultClear => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} fault-clear  kind {} target {} after {:.6} ms",
                self.aux,
                self.a,
                self.b as f64 / 1e6
            ),
            TraceKind::OutageDetect => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} outage-detect silence {:.6} ms paths-up {}",
                self.a as f64 / 1e6,
                self.b
            ),
            TraceKind::OutageResolve => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} outage-resolve after {:.6} ms probes {}",
                self.a as f64 / 1e6,
                self.b
            ),
            TraceKind::EdgeCrash => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} edge-crash   epoch {} state-lost {}",
                self.a, self.b
            ),
            TraceKind::EdgeRestart => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} edge-restart epoch {} down {:.6} ms",
                self.a,
                self.b as f64 / 1e6
            ),
            TraceKind::SessionResync => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} session-resync epoch {} -> {}",
                self.a, self.b
            ),
            TraceKind::RecoveryProbe => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} recovery-probe attempt {} backoff {:.6} ms",
                self.a,
                self.b as f64 / 1e6
            ),
            TraceKind::FlowStart => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} flow-start   class {} flow {} bytes {}",
                self.aux, self.a, self.b
            ),
            TraceKind::FlowFinish => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} flow-finish  class {} flow {} after {:.6} ms",
                self.aux,
                self.a,
                self.b as f64 / 1e6
            ),
            TraceKind::FlowRate => write!(
                f,
                "{t_ms:>12.6} ms  {comp:<10} flow-rate    class {} active {} rate {:.3} Mbps",
                self.aux,
                self.a,
                self.b as f64 / 1e6
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_encoding_round_trips() {
        let l = component::link(5);
        let a = component::actor(5);
        assert_ne!(l, a);
        assert!(component::is_link(l));
        assert!(!component::is_link(a));
        assert_eq!(component::index(l), 5);
        assert_eq!(component::index(a), 5);
        assert_eq!(component::label(l), "link#5");
        assert_eq!(component::label(a), "actor#5");
    }

    #[test]
    fn encode_decode_round_trips_every_kind() {
        for (i, kind) in TraceKind::ALL.into_iter().enumerate() {
            let ev = TraceEvent {
                t: 123_456_789 + i as u64,
                comp: component::link(i),
                kind,
                aux: i as u8,
                a: 0xdead_beef + i as u64,
                b: u64::MAX - i as u64,
            };
            let bytes = ev.encode();
            assert_eq!(bytes.len(), TraceEvent::ENCODED_LEN);
            assert_eq!(TraceEvent::decode(&bytes), Some(ev));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(TraceEvent::decode(&[0u8; 4]), None);
        let mut bytes = [0u8; 32];
        bytes[12] = 250; // unknown kind
        assert_eq!(TraceEvent::decode(&bytes), None);
    }

    #[test]
    fn flow_size_packing() {
        let ev = TraceEvent::packet_enqueue(1, component::link(0), 9, 77, 1500, 2);
        assert_eq!(ev.flow(), 77);
        assert_eq!(ev.size(), 1500);
        assert_eq!(ev.aux, 2);
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TraceKind::ALL {
            assert_eq!(TraceKind::from_name(kind.name()), Some(kind));
            assert_eq!(TraceKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(TraceKind::from_name("nope"), None);
    }
}
