//! Shared per-class byte/packet accounting.
//!
//! [`ClassUsage`] replaces the ad-hoc `*_by_kind` / `dropped_bytes`
//! bookkeeping that used to be duplicated between the core endpoint (per
//! stream kind) and the transport NIC (per priority band). Indexing is by
//! plain `usize` class index, so the same type serves both: the endpoint
//! uses `ClassUsage<6>` indexed by `StreamKind as usize`, the NIC
//! `ClassUsage<4>` indexed by priority band.
//!
//! The arrays are plain `u64`s updated through `&mut self` — recording
//! costs two adds, no interior mutability, no allocation — and
//! [`ClassUsage::publish`] copies the totals into a [`MetricsRegistry`]
//! after a run when metrics are requested.

use crate::metrics::MetricsRegistry;

/// Per-class sent/dropped packet and byte totals for `N` classes.
///
/// Out-of-range class indices are clamped to the last class so accounting
/// totals stay exact even for unexpected inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassUsage<const N: usize> {
    /// Packets sent per class.
    pub sent_packets: [u64; N],
    /// Bytes sent per class.
    pub sent_bytes: [u64; N],
    /// Packets dropped (or shed) per class.
    pub dropped_packets: [u64; N],
    /// Bytes dropped (or shed) per class.
    pub dropped_bytes: [u64; N],
}

impl<const N: usize> Default for ClassUsage<N> {
    fn default() -> Self {
        ClassUsage {
            sent_packets: [0; N],
            sent_bytes: [0; N],
            dropped_packets: [0; N],
            dropped_bytes: [0; N],
        }
    }
}

impl<const N: usize> ClassUsage<N> {
    /// An all-zero usage table.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn idx(class: usize) -> usize {
        class.min(N - 1)
    }

    /// Records one sent packet of `bytes` in `class`.
    #[inline]
    pub fn record_sent(&mut self, class: usize, bytes: u64) {
        let i = Self::idx(class);
        self.sent_packets[i] += 1;
        self.sent_bytes[i] += bytes;
    }

    /// Records one dropped (or shed) packet of `bytes` in `class`.
    #[inline]
    pub fn record_dropped(&mut self, class: usize, bytes: u64) {
        let i = Self::idx(class);
        self.dropped_packets[i] += 1;
        self.dropped_bytes[i] += bytes;
    }

    /// Bytes sent in `class` (clamped like the recording methods).
    #[inline]
    pub fn sent_bytes_for(&self, class: usize) -> u64 {
        self.sent_bytes[Self::idx(class)]
    }

    /// Packets sent in `class` (clamped like the recording methods).
    #[inline]
    pub fn sent_packets_for(&self, class: usize) -> u64 {
        self.sent_packets[Self::idx(class)]
    }

    /// Packets dropped in `class` (clamped like the recording methods).
    #[inline]
    pub fn dropped_packets_for(&self, class: usize) -> u64 {
        self.dropped_packets[Self::idx(class)]
    }

    /// Bytes dropped in `class` (clamped like the recording methods).
    #[inline]
    pub fn dropped_bytes_for(&self, class: usize) -> u64 {
        self.dropped_bytes[Self::idx(class)]
    }

    /// Total bytes sent across all classes.
    pub fn total_sent_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Total packets sent across all classes.
    pub fn total_sent_packets(&self) -> u64 {
        self.sent_packets.iter().sum()
    }

    /// Total bytes dropped across all classes.
    pub fn total_dropped_bytes(&self) -> u64 {
        self.dropped_bytes.iter().sum()
    }

    /// Total packets dropped across all classes.
    pub fn total_dropped_packets(&self) -> u64 {
        self.dropped_packets.iter().sum()
    }

    /// Copies the totals into `registry` as counters named
    /// `{prefix}.{label}.{sent,dropped}_{packets,bytes}`, using
    /// `labels[i]` for class `i` (falling back to the class index when
    /// `labels` is short).
    pub fn publish(&self, registry: &MetricsRegistry, prefix: &str, labels: &[&str]) {
        for i in 0..N {
            let label = labels.get(i).map_or_else(|| i.to_string(), |l| (*l).to_string());
            let add = |metric: &str, v: u64| {
                if v > 0 {
                    registry.counter(&format!("{prefix}.{label}.{metric}")).add(v);
                }
            };
            add("sent_packets", self.sent_packets[i]);
            add("sent_bytes", self.sent_bytes[i]);
            add("dropped_packets", self.dropped_packets[i]);
            add("dropped_bytes", self.dropped_bytes[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut u = ClassUsage::<4>::new();
        u.record_sent(0, 100);
        u.record_sent(0, 50);
        u.record_sent(3, 10);
        u.record_dropped(1, 7);
        assert_eq!(u.sent_packets, [2, 0, 0, 1]);
        assert_eq!(u.sent_bytes, [150, 0, 0, 10]);
        assert_eq!(u.total_sent_bytes(), 160);
        assert_eq!(u.total_sent_packets(), 3);
        assert_eq!(u.total_dropped_bytes(), 7);
        assert_eq!(u.total_dropped_packets(), 1);
    }

    #[test]
    fn out_of_range_class_clamps_to_last() {
        let mut u = ClassUsage::<2>::new();
        u.record_sent(99, 5);
        assert_eq!(u.sent_bytes, [0, 5]);
    }

    #[test]
    fn publish_writes_named_counters_skipping_zeroes() {
        let mut u = ClassUsage::<2>::new();
        u.record_sent(0, 100);
        u.record_dropped(1, 30);
        let reg = MetricsRegistry::new();
        u.publish(&reg, "core.class", &["meta", "bulk"]);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["core.class.meta.sent_bytes"], 100);
        assert_eq!(snap.counters["core.class.meta.sent_packets"], 1);
        assert_eq!(snap.counters["core.class.bulk.dropped_bytes"], 30);
        assert!(!snap.counters.contains_key("core.class.bulk.sent_bytes"));
    }

    #[test]
    fn publish_falls_back_to_index_labels() {
        let mut u = ClassUsage::<2>::new();
        u.record_sent(1, 1);
        let reg = MetricsRegistry::new();
        u.publish(&reg, "nic.band", &[]);
        assert_eq!(reg.snapshot().counters["nic.band.1.sent_bytes"], 1);
    }
}
