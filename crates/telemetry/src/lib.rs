//! # marnet-telemetry — deterministic observability for the marnet suite
//!
//! The simulator is deterministic, so its observability layer can be too:
//! every trace is a pure function of the experiment seed, which turns
//! determinism from a test assertion into a debugging tool (`marnet-trace
//! diff` localizes the first divergent event between two runs).
//!
//! Three pieces, all zero-overhead when disabled:
//!
//! * **Flight recorder** ([`FlightRecorder`], [`TraceSink`]) — a
//!   fixed-capacity ring buffer of compact 32-byte binary [`TraceEvent`]s
//!   (packet enqueue/drop/dequeue, link busy/idle, class admit/degrade, FEC
//!   repair, path switch, offload dispatch) stamped with sim time and a
//!   component id. The [`Recorder`] trait's disabled implementation
//!   ([`NullRecorder`]) is a monomorphized no-op; the engine-facing
//!   [`TraceSink`] compiles the disabled case down to one predictable
//!   branch per hook.
//! * **Metrics registry** ([`MetricsRegistry`]) — named counters, gauges
//!   and sim-time-bucketed histograms with cheap `Cell`-based handles,
//!   snapshot into a serializable [`MetricsSnapshot`] that `marnet-lab`
//!   flushes into schema-v2 artifacts.
//! * **Trace files** ([`file`]) — a small binary container
//!   (`MARTRC01` magic + fixed-size records) read by the `marnet-trace`
//!   CLI, which dumps/filters traces, reconstructs per-flow timelines,
//!   computes queue-delay distributions (the bufferbloat view) and diffs
//!   two traces.
//!
//! This crate sits below `marnet-sim`: times are raw nanoseconds and
//! components are raw `u32` ids (see [`event::component`]), so every layer
//! of the stack can record without a dependency cycle.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diff;
pub mod event;
pub mod file;
pub mod metrics;
pub mod recorder;
pub mod usage;

pub use diff::{first_divergence, TraceDiff};
pub use event::{component, DropReason, TraceEvent, TraceKind};
pub use metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot, TimeBucket, TimeHistogram};
pub use recorder::{ChunkedRecorder, FlightRecorder, NullRecorder, Recorder, TraceSink};
pub use usage::ClassUsage;

/// Default flight-recorder ring capacity used by CLI `--trace` flags:
/// 2^20 events = 32 MiB, enough to hold every event of the stock
/// experiment binaries without wrapping.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// What a scenario should capture, threaded from CLI flags down to the
/// simulator. Both knobs default to off so instrumented code paths are
/// byte-identical to the uninstrumented ones unless explicitly asked.
#[derive(Debug, Clone, Default)]
pub struct TelemetryOptions {
    /// Flight-recorder ring capacity in events; `None` disables tracing.
    pub trace_capacity: Option<usize>,
    /// Whether to register and snapshot metrics.
    pub metrics: bool,
}

impl TelemetryOptions {
    /// Everything off — the default for existing callers.
    pub fn disabled() -> Self {
        TelemetryOptions::default()
    }

    /// Tracing on with the given ring capacity, metrics on.
    pub fn full(trace_capacity: usize) -> Self {
        TelemetryOptions { trace_capacity: Some(trace_capacity), metrics: true }
    }

    /// `true` if any capture is requested.
    pub fn any(&self) -> bool {
        self.trace_capacity.is_some() || self.metrics
    }
}

/// What an instrumented scenario run captured.
#[derive(Debug, Clone, Default)]
pub struct TelemetryCapture {
    /// Recorded trace events in chronological order (empty when disabled).
    pub events: Vec<TraceEvent>,
    /// Metrics snapshot, when metrics were requested.
    pub metrics: Option<MetricsSnapshot>,
}
