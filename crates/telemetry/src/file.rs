//! Binary trace-file container.
//!
//! Layout: an 8-byte magic (`MARTRC01`) followed by fixed-size 32-byte
//! little-endian [`TraceEvent`] records (see [`TraceEvent::encode`]). The
//! format has no timestamps, hostnames or other ambient state, so two
//! deterministic runs of the same seed produce byte-identical files —
//! which is what makes `marnet-trace diff` meaningful.
//!
//! Writes go through a `.tmp` file renamed into place, the same atomic
//! pattern `marnet-lab` uses for artifacts: readers never observe a
//! half-written trace.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

use crate::event::TraceEvent;

/// File magic: "MARTRC" + 2-digit format version.
pub const MAGIC: &[u8; 8] = b"MARTRC01";

/// Encodes `events` into the trace-file byte format (magic + records).
pub fn encode(events: &[TraceEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + events.len() * TraceEvent::ENCODED_LEN);
    out.extend_from_slice(MAGIC);
    for ev in events {
        out.extend_from_slice(&ev.encode());
    }
    out
}

/// Decodes a trace file's bytes. Rejects a missing/wrong magic, a body
/// that is not a whole number of records, and records with unknown kinds.
pub fn decode(bytes: &[u8]) -> io::Result<Vec<TraceEvent>> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let body = bytes
        .strip_prefix(MAGIC.as_slice())
        .ok_or_else(|| invalid("not a marnet trace file (bad magic; expected MARTRC01)"))?;
    if body.len() % TraceEvent::ENCODED_LEN != 0 {
        return Err(invalid("truncated trace file (body is not a whole number of records)"));
    }
    let mut events = Vec::with_capacity(body.len() / TraceEvent::ENCODED_LEN);
    for chunk in body.chunks_exact(TraceEvent::ENCODED_LEN) {
        events.push(
            TraceEvent::decode(chunk).ok_or_else(|| invalid("unknown event kind in trace file"))?,
        );
    }
    Ok(events)
}

/// Writes `events` to `path` atomically (temp file + rename).
pub fn write_file(path: &Path, events: &[TraceEvent]) -> io::Result<()> {
    let bytes = encode(events);
    let tmp = path.with_extension("tmp");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Reads and decodes the trace file at `path`.
pub fn read_file(path: &Path) -> io::Result<Vec<TraceEvent>> {
    decode(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{component, DropReason};

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::packet_enqueue(10, component::link(0), 1, 7, 1200, 2),
            TraceEvent::packet_drop(20, component::link(0), DropReason::QueueFull, 2, 7, 600),
            TraceEvent::packet_dequeue(30, component::link(0), 1, 20),
            TraceEvent::packet_deliver(40, component::actor(3), 1, 7, 1200),
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        let events = sample();
        let bytes = encode(&events);
        assert_eq!(bytes.len(), 8 + 4 * TraceEvent::ENCODED_LEN);
        assert_eq!(decode(&bytes).unwrap(), events);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = encode(&[]);
        assert_eq!(bytes, MAGIC);
        assert!(decode(&bytes).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(decode(b"NOTATRACE").is_err());
        assert!(decode(b"").is_err());
        let mut bytes = encode(&sample());
        bytes.pop();
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn file_round_trip_is_byte_identical() {
        let dir = std::env::temp_dir().join("marnet-telemetry-file-test");
        let path = dir.join("a.trc");
        let events = sample();
        write_file(&path, &events).unwrap();
        write_file(&dir.join("b.trc"), &events).unwrap();
        assert_eq!(read_file(&path).unwrap(), events);
        assert_eq!(fs::read(&path).unwrap(), fs::read(dir.join("b.trc")).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }
}
