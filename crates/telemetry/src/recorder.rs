//! Recorders: where trace events go.
//!
//! The [`Recorder`] trait is the generic interface — code that is generic
//! over `R: Recorder` monomorphizes [`NullRecorder`] into literally nothing
//! (its `record` is an empty inline function). Object-safe callers that
//! cannot be generic (the simulator engine stores `Box<dyn Actor>`s and
//! cannot grow a type parameter) use [`TraceSink`], a two-state enum whose
//! disabled arm costs one predictable branch per hook.

use crate::event::TraceEvent;

/// A sink for trace events.
pub trait Recorder {
    /// Records one event.
    fn record(&mut self, ev: TraceEvent);

    /// `false` if recording is a no-op — callers may skip building events.
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The disabled recorder: a zero-sized, monomorphized no-op.
///
/// Generic code instantiated with `NullRecorder` compiles to exactly the
/// uninstrumented code — the `engine_events_per_sec` benchmark is the
/// regression gate for this property.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}

    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// A fixed-capacity ring buffer of trace events: the flight recorder.
///
/// Once full, the newest event overwrites the oldest — a crash or a
/// surprising result always leaves the *last* `capacity` events, which is
/// what post-mortem debugging wants. Recording never allocates after the
/// ring is full.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    cap: usize,
    next: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder { buf: Vec::with_capacity(cap.min(4096)), cap, next: 0, total: 0 }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The held events in chronological (recording) order.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            // `next` points at the oldest surviving event.
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

impl Recorder for FlightRecorder {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next += 1;
        if self.next == self.cap {
            self.next = 0;
        }
    }
}

/// The engine-facing sink: off, or recording into a [`FlightRecorder`].
///
/// The simulator cannot be generic over a `Recorder` (its actors are trait
/// objects), so it holds this enum instead. Every hook goes through
/// [`TraceSink::emit_with`], which takes a closure so the disabled case
/// skips event construction entirely — the cost is one load and one
/// predictable branch.
#[derive(Debug, Default)]
pub enum TraceSink {
    /// Recording disabled (the default).
    #[default]
    Off,
    /// Recording into a ring buffer.
    Ring(FlightRecorder),
}

impl TraceSink {
    /// A sink recording into a fresh ring of `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        TraceSink::Ring(FlightRecorder::new(capacity))
    }

    /// `true` while events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, TraceSink::Ring(_))
    }

    /// Records the event built by `f`, or does nothing when off.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let TraceSink::Ring(r) = self {
            r.record(f());
        }
    }

    /// Takes the recorded events in chronological order, resetting the sink
    /// to a fresh ring of the same capacity. Returns an empty vec when off.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match self {
            TraceSink::Off => Vec::new(),
            TraceSink::Ring(r) => {
                let events = r.events();
                *r = FlightRecorder::new(r.capacity());
                events
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::component;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::packet_deliver(i, component::link(0), i, 0, 100)
    }

    /// A generic driver, as instrumented library code would be written.
    fn drive<R: Recorder>(r: &mut R, n: u64) {
        for i in 0..n {
            if r.is_enabled() {
                r.record(ev(i));
            }
        }
    }

    #[test]
    fn null_recorder_is_disabled_noop() {
        let mut r = NullRecorder;
        drive(&mut r, 10); // compiles to nothing; just must not panic
        assert!(!r.is_enabled());
    }

    #[test]
    fn ring_keeps_the_newest_events_in_order() {
        let mut r = FlightRecorder::new(4);
        drive(&mut r, 10);
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_recorded(), 10);
        let times: Vec<u64> = r.events().iter().map(|e| e.t).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut r = FlightRecorder::new(100);
        drive(&mut r, 5);
        let times: Vec<u64> = r.events().iter().map(|e| e.t).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = FlightRecorder::new(0);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].t, 2);
    }

    #[test]
    fn sink_off_records_nothing_and_takes_empty() {
        let mut s = TraceSink::Off;
        let mut built = 0;
        s.emit_with(|| {
            built += 1;
            ev(1)
        });
        assert_eq!(built, 0, "disabled sink must not build events");
        assert!(s.take_events().is_empty());
        assert!(!s.is_enabled());
    }

    #[test]
    fn sink_ring_records_and_resets_on_take() {
        let mut s = TraceSink::ring(8);
        assert!(s.is_enabled());
        s.emit_with(|| ev(1));
        s.emit_with(|| ev(2));
        let events = s.take_events();
        assert_eq!(events.len(), 2);
        assert!(s.take_events().is_empty(), "take resets the ring");
        assert!(s.is_enabled(), "sink stays enabled after take");
    }
}
