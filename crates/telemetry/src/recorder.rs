//! Recorders: where trace events go.
//!
//! The [`Recorder`] trait is the generic interface — code that is generic
//! over `R: Recorder` monomorphizes [`NullRecorder`] into literally nothing
//! (its `record` is an empty inline function). Object-safe callers that
//! cannot be generic (the simulator engine stores `Box<dyn Actor>`s and
//! cannot grow a type parameter) use [`TraceSink`], a two-state enum whose
//! disabled arm costs one predictable branch per hook.

use crate::event::TraceEvent;

/// A sink for trace events.
pub trait Recorder {
    /// Records one event.
    fn record(&mut self, ev: TraceEvent);

    /// `false` if recording is a no-op — callers may skip building events.
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The disabled recorder: a zero-sized, monomorphized no-op.
///
/// Generic code instantiated with `NullRecorder` compiles to exactly the
/// uninstrumented code — the `engine_events_per_sec` benchmark is the
/// regression gate for this property.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}

    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// A fixed-capacity ring buffer of trace events: the flight recorder.
///
/// Once full, the newest event overwrites the oldest — a crash or a
/// surprising result always leaves the *last* `capacity` events, which is
/// what post-mortem debugging wants. Recording never allocates after the
/// ring is full.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<TraceEvent>,
    cap: usize,
    next: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (min 1).
    ///
    /// The full ring is reserved up front: on demand-paged systems the
    /// reservation is address space until written, and pre-sizing keeps
    /// doubling-growth memcpys out of recorded (timed) runs.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        FlightRecorder { buf: Vec::with_capacity(cap), cap, next: 0, total: 0 }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The held events in chronological (recording) order.
    pub fn events(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            // `next` points at the oldest surviving event.
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }

    /// Takes the held events in chronological (recording) order, leaving
    /// the recorder empty. Unlike [`FlightRecorder::events`] this moves
    /// the buffer out instead of cloning it — the capture path uses it so
    /// ending a traced run costs at most one in-place rotation, not a
    /// ring-sized copy.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        let mut out = std::mem::take(&mut self.buf);
        if out.len() == self.cap {
            // `next` points at the oldest surviving event once wrapped.
            out.rotate_left(self.next);
        }
        self.next = 0;
        self.total = 0;
        out
    }

    /// Records a batch of events with bulk slice copies. The resulting
    /// recorder state (`buf`, `next`, `total`) is *identical* to calling
    /// [`Recorder::record`] once per event — the batch-equivalence unit
    /// test pins this — so chunked recording cannot change artifacts.
    pub fn record_batch(&mut self, events: &[TraceEvent]) {
        self.total += events.len() as u64;
        let mut src = events;
        if self.buf.len() < self.cap {
            // Fill phase: `next == buf.len()` here (the ring has never
            // wrapped while the buffer is below capacity).
            let take = src.len().min(self.cap - self.buf.len());
            self.buf.extend_from_slice(&src[..take]);
            self.next = (self.next + take) % self.cap;
            src = &src[take..];
            if src.is_empty() {
                return;
            }
        }
        // Wrap phase: the buffer is at capacity. A batch longer than the
        // ring leaves only its last `cap` events, with `next` advanced by
        // the full batch length modulo `cap` — exactly what per-event
        // recording would do.
        let skip = src.len().saturating_sub(self.cap);
        let start = (self.next + skip) % self.cap;
        let src = &src[skip..];
        let first = (self.cap - start).min(src.len());
        self.buf[start..start + first].copy_from_slice(&src[..first]);
        self.buf[..src.len() - first].copy_from_slice(&src[first..]);
        self.next = (start + src.len()) % self.cap;
    }
}

impl Recorder for FlightRecorder {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next += 1;
        if self.next == self.cap {
            self.next = 0;
        }
    }
}

/// Events per chunk of a [`ChunkedRecorder`]: 2048 × 32-byte events =
/// 64 KiB, the top of the 4–64 KiB window that stays resident in L1/L2
/// while amortizing the flush into the (potentially tens-of-MiB) ring.
pub const CHUNK_EVENTS: usize = 2048;

/// A double-buffered flight recorder: the record() fast path is a bump
/// write into a small cache-hot chunk; full chunks are flushed into the
/// backing [`FlightRecorder`] ring with bulk copies
/// ([`FlightRecorder::record_batch`]).
///
/// Per event this removes the ring's total-counter update, wrap branch
/// and cold-cache ring write; artifacts are unchanged because the flush
/// is state-equivalent to per-event recording.
#[derive(Debug, Clone)]
pub struct ChunkedRecorder {
    ring: FlightRecorder,
    chunk: Vec<TraceEvent>,
}

impl ChunkedRecorder {
    /// A recorder whose backing ring holds at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let chunk = Vec::with_capacity(CHUNK_EVENTS.min(capacity.max(1)));
        ChunkedRecorder { ring: FlightRecorder::new(capacity), chunk }
    }

    /// The backing ring's capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn total_recorded(&self) -> u64 {
        self.ring.total_recorded() + self.chunk.len() as u64
    }

    /// Flushes the active chunk into the backing ring.
    pub fn flush(&mut self) {
        self.ring.record_batch(&self.chunk);
        self.chunk.clear();
    }

    /// The held events in chronological order (flushes first).
    pub fn events(&mut self) -> Vec<TraceEvent> {
        self.flush();
        self.ring.events()
    }

    /// Takes the held events in chronological order (flushes first),
    /// leaving the recorder empty without copying the ring.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.flush();
        self.ring.take_events()
    }
}

impl Recorder for ChunkedRecorder {
    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        // The chunk was created with its full capacity, so the push below
        // never reallocates: `record` is a bounds check and a bump write.
        if self.chunk.len() == self.chunk.capacity() {
            self.flush();
        }
        self.chunk.push(ev);
    }
}

/// The engine-facing sink: off, or recording into a [`FlightRecorder`]
/// (plain ring) or [`ChunkedRecorder`] (chunk-flushed ring, the default
/// for live tracing).
///
/// The simulator cannot be generic over a `Recorder` (its actors are trait
/// objects), so it holds this enum instead. Every hook goes through
/// [`TraceSink::emit_with`], which takes a closure so the disabled case
/// skips event construction entirely — the cost is one load and one
/// predictable branch.
#[derive(Debug, Default)]
pub enum TraceSink {
    /// Recording disabled (the default).
    #[default]
    Off,
    /// Recording straight into a ring buffer (kept as the un-chunked
    /// reference path; see the `recorder_record_hot` benchmark).
    Ring(FlightRecorder),
    /// Recording through a chunk-flushed ring.
    Chunked(ChunkedRecorder),
}

impl TraceSink {
    /// A sink recording into a fresh plain ring of `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        TraceSink::Ring(FlightRecorder::new(capacity))
    }

    /// A sink recording through a fresh chunk-flushed ring of `capacity`
    /// events — what the engine enables for live tracing.
    pub fn chunked(capacity: usize) -> Self {
        TraceSink::Chunked(ChunkedRecorder::new(capacity))
    }

    /// `true` while events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !matches!(self, TraceSink::Off)
    }

    /// Records the event built by `f`, or does nothing when off.
    #[inline]
    pub fn emit_with(&mut self, f: impl FnOnce() -> TraceEvent) {
        match self {
            TraceSink::Off => {}
            TraceSink::Ring(r) => r.record(f()),
            TraceSink::Chunked(r) => r.record(f()),
        }
    }

    /// Takes the recorded events in chronological order, resetting the sink
    /// to a fresh ring of the same capacity. Returns an empty vec when off.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        match self {
            TraceSink::Off => Vec::new(),
            TraceSink::Ring(r) => {
                let events = r.take_events();
                *r = FlightRecorder::new(r.capacity());
                events
            }
            TraceSink::Chunked(r) => {
                let events = r.take_events();
                *r = ChunkedRecorder::new(r.capacity());
                events
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::component;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::packet_deliver(i, component::link(0), i, 0, 100)
    }

    /// A generic driver, as instrumented library code would be written.
    fn drive<R: Recorder>(r: &mut R, n: u64) {
        for i in 0..n {
            if r.is_enabled() {
                r.record(ev(i));
            }
        }
    }

    #[test]
    fn null_recorder_is_disabled_noop() {
        let mut r = NullRecorder;
        drive(&mut r, 10); // compiles to nothing; just must not panic
        assert!(!r.is_enabled());
    }

    #[test]
    fn ring_keeps_the_newest_events_in_order() {
        let mut r = FlightRecorder::new(4);
        drive(&mut r, 10);
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_recorded(), 10);
        let times: Vec<u64> = r.events().iter().map(|e| e.t).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut r = FlightRecorder::new(100);
        drive(&mut r, 5);
        let times: Vec<u64> = r.events().iter().map(|e| e.t).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = FlightRecorder::new(0);
        r.record(ev(1));
        r.record(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].t, 2);
    }

    #[test]
    fn record_batch_state_matches_per_event_recording() {
        // Sweep capacities and adversarial batch shapes (empty, tiny,
        // exactly-capacity, longer-than-capacity) and require the full
        // recorder state to match per-event recording.
        let batches: Vec<usize> = vec![0, 1, 3, 4, 5, 7, 8, 16, 31];
        for cap in [1usize, 3, 4, 8, 16] {
            let mut batched = FlightRecorder::new(cap);
            let mut reference = FlightRecorder::new(cap);
            let mut i = 0u64;
            for &n in &batches {
                let chunk: Vec<TraceEvent> = (0..n as u64).map(|j| ev(i + j)).collect();
                i += n as u64;
                batched.record_batch(&chunk);
                for &e in &chunk {
                    reference.record(e);
                }
                assert_eq!(batched.events(), reference.events(), "cap {cap} after {i} events");
                assert_eq!(batched.total_recorded(), reference.total_recorded());
                assert_eq!(batched.len(), reference.len());
                assert_eq!(batched.next, reference.next, "internal cursor must match too");
            }
        }
    }

    #[test]
    fn chunked_recorder_matches_plain_ring() {
        for total in [0u64, 5, CHUNK_EVENTS as u64, CHUNK_EVENTS as u64 * 3 + 17] {
            let mut chunked = ChunkedRecorder::new(64);
            let mut plain = FlightRecorder::new(64);
            for i in 0..total {
                chunked.record(ev(i));
                plain.record(ev(i));
            }
            assert_eq!(chunked.total_recorded(), total);
            assert_eq!(chunked.events(), plain.events(), "after {total} events");
        }
    }

    #[test]
    fn take_events_matches_events_before_and_after_wrap() {
        for n in [3u64, 4, 10] {
            let mut a = FlightRecorder::new(4);
            let mut b = FlightRecorder::new(4);
            drive(&mut a, n);
            drive(&mut b, n);
            assert_eq!(a.take_events(), b.events(), "n={n}");
            assert!(a.is_empty(), "take leaves the ring empty");
        }
    }

    #[test]
    fn chunked_sink_take_matches_ring_sink() {
        let mut a = TraceSink::chunked(16);
        let mut b = TraceSink::ring(16);
        assert!(a.is_enabled());
        for i in 0..100 {
            a.emit_with(|| ev(i));
            b.emit_with(|| ev(i));
        }
        assert_eq!(a.take_events(), b.take_events());
        assert!(a.take_events().is_empty(), "take resets the chunked sink");
        assert!(a.is_enabled(), "sink stays enabled after take");
    }

    #[test]
    fn sink_off_records_nothing_and_takes_empty() {
        let mut s = TraceSink::Off;
        let mut built = 0;
        s.emit_with(|| {
            built += 1;
            ev(1)
        });
        assert_eq!(built, 0, "disabled sink must not build events");
        assert!(s.take_events().is_empty());
        assert!(!s.is_enabled());
    }

    #[test]
    fn sink_ring_records_and_resets_on_take() {
        let mut s = TraceSink::ring(8);
        assert!(s.is_enabled());
        s.emit_with(|| ev(1));
        s.emit_with(|| ev(2));
        let events = s.take_events();
        assert_eq!(events.len(), 2);
        assert!(s.take_events().is_empty(), "take resets the ring");
        assert!(s.is_enabled(), "sink stays enabled after take");
    }
}
