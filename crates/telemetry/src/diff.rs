//! First-divergence comparison of two event traces.
//!
//! On a deterministic simulator the first divergent event *is* the bug's
//! location, so localizing it precisely is the whole game. This module is
//! the shared implementation behind `marnet-trace diff` (comparing trace
//! files) and `marnet-lab racecheck` (comparing in-memory traces captured
//! under different event-queue tie-break policies): compute the position of
//! the first mismatching event, carry a few events of shared prefix as
//! context, and render the result as the stable text both CLIs print.

use std::fmt;

use crate::event::TraceEvent;

/// How many shared-prefix events [`TraceDiff::Divergence`] carries as
/// context around the first mismatch.
pub const CONTEXT_EVENTS: usize = 3;

/// The outcome of comparing two traces event-by-event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceDiff {
    /// Same length, every event equal.
    Identical {
        /// Total number of (identical) events in either trace.
        events: usize,
    },
    /// One trace is a strict prefix of the other.
    LengthMismatch {
        /// Length of the shared (matching) prefix — the shorter trace.
        common: usize,
        /// Length of trace `a`.
        a_len: usize,
        /// Length of trace `b`.
        b_len: usize,
        /// The longer trace's first event past the shared prefix.
        first_extra: TraceEvent,
    },
    /// The traces disagree at `index`.
    Divergence {
        /// Position of the first mismatching event.
        index: usize,
        /// Length of trace `a`.
        a_len: usize,
        /// Length of trace `b`.
        b_len: usize,
        /// Trace `a`'s event at `index`.
        a: TraceEvent,
        /// Trace `b`'s event at `index`.
        b: TraceEvent,
        /// Up to [`CONTEXT_EVENTS`] shared-prefix events before `index`.
        context: Vec<TraceEvent>,
    },
}

impl TraceDiff {
    /// `true` when the traces matched byte-for-byte.
    pub fn is_identical(&self) -> bool {
        matches!(self, TraceDiff::Identical { .. })
    }

    /// Renders the diff as the stable multi-line report both CLIs print.
    /// `a_name`/`b_name` label the two traces (file paths for
    /// `marnet-trace diff`, policy labels for `marnet-lab racecheck`).
    pub fn render(&self, a_name: &str, b_name: &str) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        match self {
            TraceDiff::Identical { events } => {
                let _ = writeln!(out, "identical: {events} events");
            }
            TraceDiff::LengthMismatch { common, a_len, b_len, first_extra } => {
                let (name, extra) =
                    if a_len > b_len { (a_name, a_len - b_len) } else { (b_name, b_len - a_len) };
                let _ = writeln!(
                    out,
                    "common prefix of {common} events matches; {name} has {extra} extra, \
                     first extra:"
                );
                let _ = writeln!(out, "  {first_extra}");
            }
            TraceDiff::Divergence { index, a_len, b_len, a, b, context } => {
                let _ = writeln!(out, "first divergence at event {index} (of {a_len} / {b_len}):");
                let _ = writeln!(out, "  {a_name}: {a}");
                let _ = writeln!(out, "  {b_name}: {b}");
                if !context.is_empty() {
                    let _ = writeln!(out, "context (shared prefix):");
                    for ev in context {
                        let _ = writeln!(out, "  {ev}");
                    }
                }
            }
        }
        out
    }
}

/// Compares two traces and localizes the first divergent event.
pub fn first_divergence(a: &[TraceEvent], b: &[TraceEvent]) -> TraceDiff {
    match a.iter().zip(b).position(|(x, y)| x != y) {
        None if a.len() == b.len() => TraceDiff::Identical { events: a.len() },
        None => {
            let common = a.len().min(b.len());
            let longer = if a.len() > b.len() { a } else { b };
            TraceDiff::LengthMismatch {
                common,
                a_len: a.len(),
                b_len: b.len(),
                first_extra: longer[common],
            }
        }
        Some(i) => TraceDiff::Divergence {
            index: i,
            a_len: a.len(),
            b_len: b.len(),
            a: a[i],
            b: b[i],
            context: a[i.saturating_sub(CONTEXT_EVENTS)..i].to_vec(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::packet_enqueue(t, 1, 0, 0, 100, 0)
    }

    #[test]
    fn identical_traces() {
        let a = [ev(1), ev(2)];
        let d = first_divergence(&a, &a);
        assert!(d.is_identical());
        assert_eq!(d, TraceDiff::Identical { events: 2 });
        assert!(d.render("a", "b").starts_with("identical: 2 events"));
    }

    #[test]
    fn strict_prefix_reports_first_extra() {
        let a = [ev(1), ev(2), ev(3)];
        let b = [ev(1), ev(2)];
        let d = first_divergence(&a, &b);
        assert_eq!(
            d,
            TraceDiff::LengthMismatch { common: 2, a_len: 3, b_len: 2, first_extra: ev(3) }
        );
        let text = d.render("left", "right");
        assert!(text.contains("common prefix of 2 events matches"), "{text}");
        assert!(text.contains("left has 1 extra"), "{text}");
        // Symmetric: the longer side is named whichever way round.
        let text = first_divergence(&b, &a).render("left", "right");
        assert!(text.contains("right has 1 extra"), "{text}");
    }

    #[test]
    fn divergence_carries_bounded_context() {
        let a = [ev(1), ev(2), ev(3), ev(4), ev(5), ev(10)];
        let b = [ev(1), ev(2), ev(3), ev(4), ev(5), ev(11)];
        let d = first_divergence(&a, &b);
        let TraceDiff::Divergence { index, context, .. } = &d else {
            panic!("expected divergence, got {d:?}");
        };
        assert_eq!(*index, 5);
        assert_eq!(context.as_slice(), &[ev(3), ev(4), ev(5)]);
        let text = d.render("fifo", "lifo");
        assert!(text.contains("first divergence at event 5 (of 6 / 6):"), "{text}");
        assert!(text.contains("fifo: "), "{text}");
    }

    #[test]
    fn divergence_at_start_has_no_context() {
        let d = first_divergence(&[ev(1)], &[ev(2)]);
        let TraceDiff::Divergence { context, .. } = &d else { panic!() };
        assert!(context.is_empty());
        assert!(!d.render("a", "b").contains("context"));
    }
}
