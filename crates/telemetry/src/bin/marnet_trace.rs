//! `marnet-trace` — inspect and compare marnet flight-recorder traces.
//!
//! ```text
//! marnet-trace dump  <trace> [--kind K] [--comp C] [--flow F] [--limit N]
//! marnet-trace flows <trace> [--flow F]
//! marnet-trace queues <trace>
//! marnet-trace diff  <a> <b>
//! ```
//!
//! `dump` prints events one per line with optional filters; `flows`
//! reconstructs per-flow timelines; `queues` computes per-link queue-delay
//! distributions (the bufferbloat view); `diff` compares two traces and
//! localizes the first divergent event — on a deterministic simulator the
//! first divergence *is* the bug's location. `diff` exits 0 when the
//! traces are identical and 1 when they diverge.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use marnet_telemetry::{component, file, DropReason, TraceEvent, TraceKind};

const USAGE: &str = "usage:
  marnet-trace dump  <trace> [--kind K] [--comp C] [--flow F] [--limit N]
  marnet-trace flows <trace> [--flow F]
  marnet-trace queues <trace>
  marnet-trace diff  <a> <b>

  --kind K   keep only events of kind K (enqueue, drop, dequeue, deliver,
             busy, idle, admit, degrade, fec-repair, path-switch, offload,
             fault-inject, fault-clear, outage-detect, outage-resolve,
             edge-crash, edge-restart, session-resync, recovery-probe)
  --comp C   keep only component C (link#3, actor#7, or a raw id)
  --flow F   keep only packet events of flow F
  --limit N  print at most N events";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("marnet-trace: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(format!("missing subcommand\n{USAGE}"));
    };
    match cmd.as_str() {
        "dump" => cmd_dump(&args[1..]),
        "flows" => cmd_flows(&args[1..]),
        "queues" => cmd_queues(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    }
}

/// Filters shared by `dump` and `flows`.
#[derive(Default)]
struct Filter {
    kind: Option<TraceKind>,
    comp: Option<u32>,
    flow: Option<u64>,
    limit: Option<usize>,
}

impl Filter {
    fn keeps(&self, ev: &TraceEvent) -> bool {
        if let Some(kind) = self.kind {
            if ev.kind != kind {
                return false;
            }
        }
        if let Some(comp) = self.comp {
            if ev.comp != comp {
                return false;
            }
        }
        if let Some(flow) = self.flow {
            if !is_packet_kind(ev.kind) || ev.flow() != flow {
                return false;
            }
        }
        true
    }
}

/// Kinds whose `b` operand packs flow and size.
fn is_packet_kind(kind: TraceKind) -> bool {
    matches!(kind, TraceKind::PacketEnqueue | TraceKind::PacketDrop | TraceKind::PacketDeliver)
}

fn parse_comp(s: &str) -> Result<u32, String> {
    if let Some(idx) = s.strip_prefix("link#") {
        let idx: usize = idx.parse().map_err(|_| format!("bad link index in `{s}`"))?;
        return Ok(component::link(idx));
    }
    if let Some(idx) = s.strip_prefix("actor#") {
        let idx: usize = idx.parse().map_err(|_| format!("bad actor index in `{s}`"))?;
        return Ok(component::actor(idx));
    }
    s.parse().map_err(|_| format!("bad component `{s}` (want link#N, actor#N, or a raw id)"))
}

/// Parses trailing `--flag value` options into a [`Filter`], returning the
/// positional arguments.
fn parse_filter(args: &[String]) -> Result<(Vec<&String>, Filter), String> {
    let mut filter = Filter::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().ok_or_else(|| format!("{name} needs a value\n{USAGE}"));
        match arg.as_str() {
            "--kind" => {
                let v = value("--kind")?;
                filter.kind =
                    Some(TraceKind::from_name(v).ok_or_else(|| format!("unknown kind `{v}`"))?);
            }
            "--comp" => filter.comp = Some(parse_comp(value("--comp")?)?),
            "--flow" => {
                let v = value("--flow")?;
                filter.flow = Some(v.parse().map_err(|_| format!("bad flow `{v}`"))?);
            }
            "--limit" => {
                let v = value("--limit")?;
                filter.limit = Some(v.parse().map_err(|_| format!("bad limit `{v}`"))?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            _ => positional.push(arg),
        }
    }
    Ok((positional, filter))
}

fn load(path: &Path) -> Result<Vec<TraceEvent>, String> {
    file::read_file(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn one_trace_arg<'a>(positional: &[&'a String], cmd: &str) -> Result<&'a String, String> {
    match positional {
        [p] => Ok(p),
        _ => Err(format!("{cmd} takes exactly one trace file\n{USAGE}")),
    }
}

fn cmd_dump(args: &[String]) -> Result<ExitCode, String> {
    let (positional, filter) = parse_filter(args)?;
    let events = load(Path::new(one_trace_arg(&positional, "dump")?))?;
    let limit = filter.limit.unwrap_or(usize::MAX);
    let mut shown = 0usize;
    let mut matched = 0usize;
    for ev in &events {
        if !filter.keeps(ev) {
            continue;
        }
        matched += 1;
        if shown < limit {
            println!("{ev}");
            shown += 1;
        }
    }
    if shown < matched {
        println!("... {} more (raise --limit)", matched - shown);
    }
    eprintln!("{matched} of {} events matched", events.len());
    Ok(ExitCode::SUCCESS)
}

/// Per-flow accumulator for `flows`.
#[derive(Default)]
struct FlowStats {
    enqueued: u64,
    delivered: u64,
    delivered_bytes: u64,
    dropped: u64,
    dropped_bytes: u64,
    first_t: u64,
    last_t: u64,
}

fn cmd_flows(args: &[String]) -> Result<ExitCode, String> {
    let (positional, filter) = parse_filter(args)?;
    let events = load(Path::new(one_trace_arg(&positional, "flows")?))?;

    if let Some(flow) = filter.flow {
        // Full timeline for one flow.
        let mut shown = 0usize;
        for ev in events.iter().filter(|ev| is_packet_kind(ev.kind) && ev.flow() == flow) {
            println!("{ev}");
            shown += 1;
        }
        eprintln!("flow {flow}: {shown} events");
        return Ok(ExitCode::SUCCESS);
    }

    let mut flows: BTreeMap<u64, FlowStats> = BTreeMap::new();
    for ev in &events {
        if !is_packet_kind(ev.kind) {
            continue;
        }
        let st = flows
            .entry(ev.flow())
            .or_insert_with(|| FlowStats { first_t: ev.t, ..FlowStats::default() });
        st.last_t = ev.t;
        match ev.kind {
            TraceKind::PacketEnqueue => st.enqueued += 1,
            TraceKind::PacketDeliver => {
                st.delivered += 1;
                st.delivered_bytes += u64::from(ev.size());
            }
            TraceKind::PacketDrop => {
                st.dropped += 1;
                st.dropped_bytes += u64::from(ev.size());
            }
            _ => {}
        }
    }
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>12} {:>12} {:>12}",
        "flow", "enqueued", "delivered", "dropped", "deliv bytes", "first ms", "last ms"
    );
    for (flow, st) in &flows {
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>12} {:>12.3} {:>12.3}",
            flow,
            st.enqueued,
            st.delivered,
            st.dropped,
            st.delivered_bytes,
            st.first_t as f64 / 1e6,
            st.last_t as f64 / 1e6
        );
    }
    eprintln!("{} flows", flows.len());
    Ok(ExitCode::SUCCESS)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn cmd_queues(args: &[String]) -> Result<ExitCode, String> {
    let (positional, _) = parse_filter(args)?;
    let events = load(Path::new(one_trace_arg(&positional, "queues")?))?;

    // Queue delay per component, from the dequeue events' delay operand.
    let mut delays: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    let mut drops: BTreeMap<u32, BTreeMap<&'static str, u64>> = BTreeMap::new();
    for ev in &events {
        match ev.kind {
            TraceKind::PacketDequeue => delays.entry(ev.comp).or_default().push(ev.b),
            TraceKind::PacketDrop => {
                let reason = DropReason::from_u8(ev.aux).map_or("?", DropReason::name);
                *drops.entry(ev.comp).or_default().entry(reason).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    if delays.is_empty() && drops.is_empty() {
        println!("no queue activity in trace");
        return Ok(ExitCode::SUCCESS);
    }
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "component", "pkts", "mean ms", "p50 ms", "p90 ms", "p99 ms", "max ms"
    );
    for (comp, list) in &mut delays {
        list.sort_unstable();
        let ms = |v: u64| v as f64 / 1e6;
        let mean = list.iter().sum::<u64>() as f64 / list.len() as f64 / 1e6;
        println!(
            "{:<10} {:>8} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            component::label(*comp),
            list.len(),
            mean,
            ms(percentile(list, 0.50)),
            ms(percentile(list, 0.90)),
            ms(percentile(list, 0.99)),
            ms(*list.last().unwrap()),
        );
    }
    for (comp, by_reason) in &drops {
        let total: u64 = by_reason.values().sum();
        let detail: Vec<String> =
            by_reason.iter().map(|(reason, n)| format!("{reason} {n}")).collect();
        println!("{:<10} {total} drops ({})", component::label(*comp), detail.join(", "));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let (positional, _) = parse_filter(args)?;
    let [path_a, path_b] = positional[..] else {
        return Err(format!("diff takes exactly two trace files\n{USAGE}"));
    };
    let (path_a, path_b) = (PathBuf::from(path_a), PathBuf::from(path_b));
    let a = load(&path_a)?;
    let b = load(&path_b)?;

    // The comparison and report live in `marnet_telemetry::diff` so that
    // `marnet-lab racecheck` localizes divergences with the same logic.
    let diff = marnet_telemetry::first_divergence(&a, &b);
    let (a_name, b_name) = match &diff {
        // The divergence report labels the two columns tersely; the length
        // report names the longer file inline, so pass the paths through.
        marnet_telemetry::TraceDiff::LengthMismatch { .. } => {
            (path_a.display().to_string(), path_b.display().to_string())
        }
        _ => ("a".to_owned(), "b".to_owned()),
    };
    print!("{}", diff.render(&a_name, &b_name));
    Ok(if diff.is_identical() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comp_parsing() {
        assert_eq!(parse_comp("link#3").unwrap(), component::link(3));
        assert_eq!(parse_comp("actor#7").unwrap(), component::actor(7));
        assert_eq!(parse_comp("42").unwrap(), 42);
        assert!(parse_comp("widget#1").is_err());
    }

    #[test]
    fn filter_matches_kind_comp_flow() {
        let ev = TraceEvent::packet_enqueue(5, component::link(1), 9, 3, 100, 0);
        let mut f = Filter::default();
        assert!(f.keeps(&ev));
        f.kind = Some(TraceKind::PacketEnqueue);
        f.comp = Some(component::link(1));
        f.flow = Some(3);
        assert!(f.keeps(&ev));
        f.flow = Some(4);
        assert!(!f.keeps(&ev));
    }

    #[test]
    fn flow_filter_excludes_non_packet_kinds() {
        let busy = TraceEvent::link_state(5, component::link(1), true, 1, 100);
        let f = Filter { flow: Some(0), ..Filter::default() };
        assert!(!f.keeps(&busy));
    }

    #[test]
    fn percentile_picks_expected_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 51);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
