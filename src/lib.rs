//! Umbrella crate re-exporting the whole marnet suite.
//!
//! `marnet` reproduces the system argued for in *"Future Networking
//! Challenges: The Case of Mobile Augmented Reality"* (ICDCS 2017): an
//! AR-oriented transport protocol together with the simulated network,
//! wireless, application, and edge substrates needed to evaluate it.
#![forbid(unsafe_code)]

pub use marnet_app as app;
pub use marnet_core as arcore;
pub use marnet_edge as edge;
pub use marnet_faults as faults;
pub use marnet_flow as flow;
pub use marnet_lab as lab;
pub use marnet_privacy as privacy;
pub use marnet_radio as radio;
pub use marnet_sim as sim;
pub use marnet_trainer as trainer;
pub use marnet_transport as transport;
