//! Cross-crate integration tests: the whole stack — simulator, radio
//! models, TCP baselines, the AR protocol and the MAR application — wired
//! together the way the experiments use it.

use marnet::app::compute::{ComputeModel, FrameWork};
use marnet::app::device::DeviceClass;
use marnet::app::pipeline::{MarClient, MarServer};
use marnet::app::strategy::OffloadStrategy;
use marnet::app::video::{FrameSource, VideoConfig};
use marnet::arcore::config::ArConfig;
use marnet::arcore::endpoint::{ArReceiver, ArSender, SenderPathConfig};
use marnet::arcore::multipath::PathRole;
use marnet::sim::engine::Simulator;
use marnet::sim::link::{Bandwidth, LinkParams};
use marnet::sim::rng::derive_rng;
use marnet::sim::time::{SimDuration, SimTime};
use marnet::transport::nic::TxPath;

fn run_pipeline(seed: u64, strategy: OffloadStrategy, up_mbps: f64, one_way_ms: u64) -> (u64, f64) {
    let mut sim = Simulator::new(seed);
    let c_snd = sim.reserve_actor();
    let s_rcv = sim.reserve_actor();
    let s_snd = sim.reserve_actor();
    let c_rcv = sim.reserve_actor();
    let client = sim.reserve_actor();
    let server = sim.reserve_actor();
    let one_way = SimDuration::from_millis(one_way_ms);
    let up = sim.add_link(c_snd, s_rcv, LinkParams::new(Bandwidth::from_mbps(up_mbps), one_way));
    let up_fb = sim.add_link(s_rcv, c_snd, LinkParams::new(Bandwidth::from_mbps(20.0), one_way));
    let down = sim.add_link(s_snd, c_rcv, LinkParams::new(Bandwidth::from_mbps(20.0), one_way));
    let down_fb =
        sim.add_link(c_rcv, s_snd, LinkParams::new(Bandwidth::from_mbps(up_mbps), one_way));
    let cfg = ArConfig::default();
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up), link: Some(up) }],
    )
    .with_qos_target(client);
    sim.install_actor(c_snd, sender);
    sim.install_actor(
        s_rcv,
        ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(up_fb)])
            .with_delivery_target(server),
    );
    sim.install_actor(
        s_snd,
        ArSender::new(
            2,
            cfg.clone(),
            vec![SenderPathConfig {
                role: PathRole::Wifi,
                tx: TxPath::Link(down),
                link: Some(down),
            }],
        ),
    );
    sim.install_actor(
        c_rcv,
        ArReceiver::new(2, cfg.feedback_interval, vec![TxPath::Link(down_fb)])
            .with_delivery_target(client),
    );
    let model = ComputeModel::new(30.0, FrameWork::vision_pipeline())
        .with_deadline(SimDuration::from_millis(75));
    let video = FrameSource::new(VideoConfig::ar_minimal(), 0.05, derive_rng(seed, "e2e.video"));
    let mar = MarClient::new(c_snd, DeviceClass::Smartphone.spec(), model.clone(), strategy, video);
    let qoe = mar.qoe();
    sim.install_actor(client, mar);
    sim.install_actor(
        server,
        MarServer::new(s_snd, DeviceClass::Cloud.spec(), model.work, strategy),
    );
    sim.run_until(SimTime::from_secs(8));
    let report = qoe.borrow_mut().report();
    (report.frames, report.within_budget)
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = run_pipeline(5, OffloadStrategy::cloudridar(), 20.0, 8);
    let b = run_pipeline(5, OffloadStrategy::cloudridar(), 20.0, 8);
    assert_eq!(a, b, "same seed must reproduce bit-identical QoE");
    let c = run_pipeline(6, OffloadStrategy::cloudridar(), 20.0, 8);
    // Different seeds jitter frame sizes, so exact equality is unexpected.
    assert!(c.0 > 0);
}

#[test]
fn network_quality_orders_qoe() {
    // Table II's ordering must survive the full stack: better networks
    // yield better budget compliance.
    // CloudRidAR's local extraction costs ~27 ms on a phone, so of the
    // 75 ms budget only ~48 ms remain for the network: the 36 ms-RTT cloud
    // scenario is *marginal* end to end (the analytic model puts it at
    // ~70 ms; pacing/feedback overheads push the simulated loop over).
    // We therefore compare at 8/24/120 ms RTT.
    let (_, local) = run_pipeline(9, OffloadStrategy::cloudridar(), 25.0, 4);
    let (_, nearby) = run_pipeline(9, OffloadStrategy::cloudridar(), 20.0, 12);
    let (_, lte) = run_pipeline(9, OffloadStrategy::cloudridar(), 6.0, 60);
    assert!(local >= nearby, "local {local} vs nearby {nearby}");
    assert!(nearby > lte, "nearby {nearby} vs lte {lte}");
    assert!(nearby > 0.7, "24 ms RTT edge must mostly fit: {nearby}");
    assert!(lte < 0.05, "120 ms RTT cannot meet a 75 ms budget");
}

#[test]
fn glimpse_dominates_on_bad_networks() {
    let (_, full) = run_pipeline(11, OffloadStrategy::FullOffload { frame_bytes: 0 }, 6.0, 60);
    let (frames, glimpse) = run_pipeline(11, OffloadStrategy::glimpse(), 6.0, 60);
    assert!(glimpse > 0.8, "glimpse compliance {glimpse}");
    assert!(glimpse > full + 0.5, "glimpse {glimpse} vs full {full}");
    assert!(frames > 200);
}
