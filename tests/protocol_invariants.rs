//! Cross-crate invariant tests on the AR protocol under hostile network
//! conditions: critical data survives everything, duplication never
//! double-delivers, and the paper's headline effects hold end to end.

use marnet::arcore::class::StreamKind;
use marnet::arcore::config::ArConfig;
use marnet::arcore::endpoint::{ArReceiver, ArSender, SenderPathConfig, Submit};
use marnet::arcore::message::ArMessage;
use marnet::arcore::multipath::{MultipathPolicy, PathRole};
use marnet::sim::engine::{Actor, ActorId, Event, SimCtx, Simulator};
use marnet::sim::link::{Bandwidth, LinkParams, LossModel};
use marnet::sim::packet::Payload;
use marnet::sim::time::{SimDuration, SimTime};
use marnet::transport::nic::TxPath;
use marnet_bench::scenarios::{run_fig3, run_queueing};
use marnet_sim::queue::QueueConfig;

struct App {
    sender: ActorId,
    next_id: u64,
}

impl Actor for App {
    fn on_event(&mut self, ctx: &mut SimCtx, ev: Event) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            let now = ctx.now();
            let frame = ArMessage::new(self.next_id, StreamKind::VideoInter, 10_000, now)
                .with_deadline(now + SimDuration::from_millis(100));
            let refm = ArMessage::new(self.next_id + 1, StreamKind::VideoReference, 4_000, now)
                .with_deadline(now + SimDuration::from_millis(100));
            let meta = ArMessage::new(self.next_id + 2, StreamKind::Metadata, 120, now);
            self.next_id += 3;
            for m in [frame, refm, meta] {
                ctx.send_message(self.sender, Payload::new(Submit(m)));
            }
            ctx.schedule_timer(SimDuration::from_millis(33), 0);
        }
    }
}

fn run_hostile(
    mbps: f64,
    loss: f64,
    duplicate: bool,
    secs: u64,
) -> (
    std::rc::Rc<std::cell::RefCell<marnet::arcore::endpoint::ArSenderStats>>,
    std::rc::Rc<std::cell::RefCell<marnet::arcore::endpoint::ArReceiverStats>>,
) {
    let mut sim = Simulator::new(17);
    let snd = sim.reserve_actor();
    let rcv = sim.reserve_actor();
    let mk = |sim: &mut Simulator, a, b| {
        sim.add_link(
            a,
            b,
            LinkParams::new(Bandwidth::from_mbps(mbps), SimDuration::from_millis(10))
                .with_loss(LossModel::Bernoulli { p: loss }),
        )
    };
    let up1 = mk(&mut sim, snd, rcv);
    let up2 = mk(&mut sim, snd, rcv);
    let down = sim.add_link(
        rcv,
        snd,
        LinkParams::new(Bandwidth::from_mbps(mbps), SimDuration::from_millis(10)),
    );
    let cfg = ArConfig {
        policy: MultipathPolicy::Aggregate,
        duplicate_recovery: duplicate,
        ..ArConfig::default()
    };
    let sender = ArSender::new(
        1,
        cfg.clone(),
        vec![
            SenderPathConfig { role: PathRole::Wifi, tx: TxPath::Link(up1), link: Some(up1) },
            SenderPathConfig { role: PathRole::Cellular, tx: TxPath::Link(up2), link: Some(up2) },
        ],
    );
    let sstats = sender.stats();
    sim.install_actor(snd, sender);
    let receiver =
        ArReceiver::new(1, cfg.feedback_interval, vec![TxPath::Link(down), TxPath::Link(down)]);
    let rstats = receiver.stats();
    sim.install_actor(rcv, receiver);
    let app = App { sender: snd, next_id: 0 };
    sim.add_actor(app);
    sim.run_until(SimTime::from_secs(secs));
    (sstats, rstats)
}

#[test]
fn critical_metadata_survives_loss_and_congestion() {
    // 8% loss AND an undersized link: metadata must still arrive at full
    // cadence (critical class: unconditional retransmission, never shed).
    let (sstats, rstats) = run_hostile(1.5, 0.08, false, 20);
    let r = rstats.borrow();
    let meta = &r.by_kind[&StreamKind::Metadata];
    let offered = 20 * 30;
    assert!(
        meta.delivered as f64 > offered as f64 * 0.95,
        "metadata delivered {}/{offered}",
        meta.delivered
    );
    let s = sstats.borrow();
    assert_eq!(s.dropped_msgs(StreamKind::Metadata), 0, "metadata must never be shed");
}

#[test]
fn duplication_never_double_delivers() {
    let (_, rstats) = run_hostile(20.0, 0.05, true, 15);
    let r = rstats.borrow();
    // Duplicates arrive (that's the mechanism) but each message completes
    // exactly once: delivered counts cannot exceed the offered counts.
    assert!(r.duplicates > 0, "duplication must actually duplicate");
    // The app ticks every 33 ms, so ~455 messages per kind in 15 s.
    let offered = 15_000 / 33 + 2;
    for (kind, ks) in &r.by_kind {
        assert!(
            ks.delivered <= offered,
            "{kind}: delivered {} exceeds offered {offered}",
            ks.delivered
        );
    }
    let refs = &r.by_kind[&StreamKind::VideoReference];
    assert!(refs.delivered as f64 > offered as f64 * 0.95, "refs {}", refs.delivered);
}

#[test]
fn fig3_effect_holds_with_the_paper_buffer_sizes() {
    // The paper's Fig. 3 claim end to end: a single upload through a
    // 1000-packet uplink buffer destroys a concurrent download.
    let out = run_fig3(10.0, 1.0, 1000, 1, 50, 3);
    let dl = out.download.borrow();
    let before = dl.goodput_meter.mean_mbps(2.0, out.upload_starts[0]);
    let after = dl.goodput_meter.mean_mbps(out.upload_starts[0] + 5.0, 50.0);
    assert!(before > 7.0);
    assert!(after < 2.0, "download must collapse: {before} → {after}");
}

#[test]
fn aqm_rescues_what_bufferbloat_destroys() {
    // §VI-H end to end: same MAR stream + same bulk upload; only the queue
    // discipline changes.
    let bloat = run_queueing(2.0, QueueConfig::bloated_uplink(), 0, 1, 1, 20, 5);
    let codel = run_queueing(2.0, QueueConfig::codel_default(), 0, 1, 1, 20, 5);
    let bloat_p95 = bloat.mar[0].borrow().latency_ms.clone().p95().unwrap();
    let codel_p95 = codel.mar[0].borrow().latency_ms.clone().p95().unwrap();
    assert!(
        codel_p95 < bloat_p95 / 5.0,
        "CoDel must cut MAR p95 latency: {bloat_p95} → {codel_p95} ms"
    );
}
